#!/usr/bin/env python3
"""Online adaptation over an application sequence (the Figure-3/4 scenario).

Both the imitation-learning policy and the table-based RL baseline are trained
offline on Mi-Bench.  A sequence of CortexSuite and PARSEC applications —
unknown at design time — is then executed while both policies adapt online.
The script prints the accuracy-vs-time trajectory (Figure 3) and the
per-application energy normalised to the Oracle (Figure 4).

Run with:  python examples/online_adaptation_sequence.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentScale, run_online_adaptation_study
from repro.experiments.figure3 import format_figure3, run_figure3
from repro.experiments.figure4 import format_figure4, run_figure4

SCALE = ExperimentScale(
    name="example",
    train_snippet_factor=0.4,
    eval_snippet_factor=0.4,
    sequence_snippet_factor=1.5,
    offline_epochs=100,
    buffer_capacity=20,
    update_epochs=80,
    rl_offline_episodes=2,
    gpu_frames=200,
    nmpc_surface_samples=200,
)


def ascii_curve(time_s: np.ndarray, values: np.ndarray, label: str,
                width: int = 60) -> str:
    """Render a coarse ASCII sparkline of an accuracy curve."""
    indices = np.linspace(0, len(values) - 1, width).astype(int)
    levels = " .:-=+*#%@"
    chars = [levels[min(len(levels) - 1, int(values[i] / 100 * (len(levels) - 1)))]
             for i in indices]
    return f"{label:>10s} |{''.join(chars)}| {values[-1]:5.1f}% final"


def main() -> None:
    print("Running the online adaptation study (this takes a minute)...")
    study = run_online_adaptation_study(SCALE, seed=0)

    figure3 = run_figure3(SCALE, study=study)
    print()
    print(format_figure3(figure3))
    print()
    print("Accuracy over time (0-100%), one column per time bucket:")
    print(ascii_curve(figure3.time_axis_s, figure3.online_il_near_optimal, "online-IL"))
    print(ascii_curve(figure3.time_axis_s, figure3.rl_near_optimal, "RL"))
    print()

    figure4 = run_figure4(SCALE, study=study)
    print(format_figure4(figure4))
    print()
    print(f"Online-IL stays within {100 * (figure4.mean('il') - 1):.1f}% of the "
          f"Oracle on average; RL is {100 * (figure4.mean('rl') - 1):.1f}% above "
          f"(worst case {figure4.worst('rl'):.2f}x).")


if __name__ == "__main__":
    main()
