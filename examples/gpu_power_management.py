#!/usr/bin/env python3
"""GPU power management: baseline governor vs NMPC vs explicit NMPC (multi-rate).

Reproduces a slice of the paper's Figure-5 experiment interactively: for a few
graphics benchmarks, render the frame trace under

* the reactive baseline governor (all slices on, worst-case frequency margin),
* the exact NMPC controller (exhaustive minimisation each frame), and
* the multi-rate explicit-NMPC controller (regression approximation of the
  NMPC surface, slow slice control + fast DVFS),

and report energy, achieved FPS and deadline misses.

Run with:  python examples/gpu_power_management.py
"""

from __future__ import annotations

from repro.control.multirate import MultiRateGPUController
from repro.control.nmpc import NMPCGpuController
from repro.gpu.baseline_governor import BaselineGPUGovernor
from repro.gpu.gpu import default_integrated_gpu
from repro.gpu.simulator import GPUSimulator
from repro.ml.metrics import energy_savings_percent
from repro.utils.tables import format_table
from repro.workloads.graphics import get_graphics_workload

BENCHMARKS = ["angrybirds", "epiccitadel", "sharkdash", "gfxbench-trex"]
N_FRAMES = 400


def main() -> None:
    gpu = default_integrated_gpu()
    simulator = GPUSimulator(gpu, noise_scale=0.01, seed=0)
    rows = []
    for name in BENCHMARKS:
        trace = get_graphics_workload(name, gpu=gpu, n_frames=N_FRAMES, seed=0)
        controllers = {
            "baseline": BaselineGPUGovernor(gpu, trace.target_fps),
            "nmpc": NMPCGpuController(gpu, trace.target_fps),
            "explicit-nmpc": MultiRateGPUController(gpu, trace.target_fps),
        }
        runs = {label: simulator.run(trace, controller)
                for label, controller in controllers.items()}
        baseline_energy = runs["baseline"].gpu_energy_j
        for label, run in runs.items():
            rows.append(
                (
                    name,
                    label,
                    run.gpu_energy_j,
                    0.0 if label == "baseline" else energy_savings_percent(
                        baseline_energy, run.gpu_energy_j),
                    run.achieved_fps,
                    100.0 * run.deadline_miss_rate,
                )
            )
    print(format_table(
        ["benchmark", "controller", "GPU energy (J)", "savings vs baseline (%)",
         "achieved FPS", "deadline misses (%)"],
        rows, precision=2,
        title="GPU power management: baseline vs NMPC vs explicit NMPC"))


if __name__ == "__main__":
    main()
