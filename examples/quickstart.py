#!/usr/bin/env python3
"""Quickstart: train an offline IL policy, adapt it online, compare to the Oracle.

This example walks through the core workflow of the library on a small scale:

1. build the Odroid-XU3-like platform and its configuration space;
2. construct the Oracle and train the offline imitation-learning policy on the
   Mi-Bench applications (the design-time workloads);
3. evaluate the offline policy on a workload it has never seen (k-means from
   CortexSuite) and observe the generalisation gap;
4. build the model-guided online-IL policy and watch it close that gap.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.framework import OnlineLearningFramework
from repro.utils.tables import format_table
from repro.workloads.suites import get_workload, training_workloads


def main() -> None:
    framework = OnlineLearningFramework(seed=0)
    print(f"Platform: {framework.platform.name}  "
          f"({len(framework.space)} configurations)")

    # ------------------------------------------------------------------ #
    # Design-time (offline) phase: Oracle construction + IL policy training.
    # ------------------------------------------------------------------ #
    design_time_workloads = [w.scaled(0.5) for w in training_workloads()]
    print(f"Training the offline IL policy on {len(design_time_workloads)} "
          "Mi-Bench applications...")
    framework.train_offline(design_time_workloads, epochs=120)
    accuracy = framework.offline_policy.accuracy_on(framework.offline_dataset)
    print(f"Offline policy accuracy on its own training data: {accuracy:.2%}\n")

    # ------------------------------------------------------------------ #
    # Runtime phase: a workload unknown at design time.
    # ------------------------------------------------------------------ #
    unseen = get_workload("kmeans").scaled(1.0)
    offline_run = framework.evaluate_policy(framework.offline_policy, unseen)

    online_policy = framework.build_online_il_policy(buffer_capacity=25,
                                                     update_epochs=80)
    online_run = framework.evaluate_policy(online_policy, unseen)

    rows = [
        ("Oracle (ground truth)", 1.0),
        ("Offline IL (trained on Mi-Bench)", offline_run.normalized_energy),
        ("Online IL (model-guided adaptation)", online_run.normalized_energy),
    ]
    print(format_table(["policy", "energy vs Oracle"], rows, precision=3,
                       title=f"Unseen workload: {unseen.name}"))
    print()
    diagnostics = online_policy.diagnostics()
    print(f"Online-IL policy updates: {diagnostics['policy_updates']:.0f}, "
          f"buffer storage: {diagnostics['buffer_storage_bytes'] / 1024:.1f} KiB, "
          f"policy parameters: {diagnostics['policy_parameters']:.0f}")


if __name__ == "__main__":
    main()
