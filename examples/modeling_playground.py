#!/usr/bin/env python3
"""Analytical-modelling playground: thermal analysis, skin temperature and NoC models.

This example exercises the Section-III modelling blocks that support the DRM
policies:

* power-temperature fixed points, stability and the sustainable power budget
  of a two-node (junction + skin) mobile thermal model;
* online skin-temperature estimation from internal sensors with greedy sensor
  selection;
* NoC latency estimation: cycle-level simulation vs the queuing-theory
  analytical model vs the SVR-based learned model.

Run with:  python examples/modeling_playground.py
"""

from __future__ import annotations

import numpy as np

from repro.models.sensor_selection import greedy_sensor_selection
from repro.models.skin_temperature import SkinTemperatureEstimator
from repro.models.thermal import ThermalFixedPointAnalysis, two_node_mobile_thermal_model
from repro.noc.analytical import AnalyticalNoCModel
from repro.noc.simulator import NoCSimulator
from repro.noc.svr_model import SVRNoCLatencyModel, build_noc_training_set
from repro.noc.topology import MeshTopology
from repro.noc.traffic import UniformRandomTraffic
from repro.utils.tables import format_table


def thermal_demo() -> None:
    model = two_node_mobile_thermal_model()
    analysis = ThermalFixedPointAnalysis(model)
    rows = []
    for power in (1.0, 2.0, 4.0, 6.0):
        fixed = analysis.fixed_point(np.array([power]))
        rows.append((power, fixed.temperatures[0], fixed.temperatures[1],
                     "stable" if fixed.stable else "unstable"))
    print(format_table(
        ["CPU power (W)", "junction temp (C)", "skin temp (C)", "stability"],
        rows, precision=1, title="Thermal fixed points (Sec. III-A)"))
    budget = analysis.power_budget(temperature_limit_c=45.0)
    print(f"Sustainable power budget before the skin/junction limit of 45 C: "
          f"{budget:.2f} W\n")


def skin_temperature_demo() -> None:
    rng = np.random.default_rng(0)
    estimator = SkinTemperatureEstimator(n_sensors=3)
    true_weights = np.array([0.25, 0.15, 0.10])
    for _ in range(400):
        sensors = rng.uniform(35, 75, size=3)
        skin = float(sensors @ true_weights + 8.0 + rng.normal(scale=0.3))
        estimator.update(sensors, skin)
    sensors = np.array([60.0, 55.0, 48.0])
    estimate = estimator.estimate(sensors)
    truth = float(sensors @ true_weights + 8.0)
    print(f"Skin-temperature observer: estimate {estimate:.2f} C vs true "
          f"{truth:.2f} C (error {abs(estimate - truth):.2f} C)")

    selection = greedy_sensor_selection(
        transition=np.diag([0.9, 0.8]),
        observation_pool=np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]]),
        process_noise=np.eye(2) * 0.1,
        measurement_noise_pool=np.diag([0.05, 1.0, 0.2]),
        k=2,
    )
    print(f"Greedy sensor selection picked sensors {selection.selected} "
          f"(steady-state error trace {selection.error_trace:.3f})\n")


def noc_demo() -> None:
    mesh = MeshTopology(4, 4)
    simulator = NoCSimulator(mesh)
    analytical = AnalyticalNoCModel(mesh)
    train = build_noc_training_set(
        mesh, injection_rates=(0.02, 0.04, 0.06, 0.08, 0.10, 0.12), n_cycles=300,
        seed=0)
    svr = SVRNoCLatencyModel().fit(train)
    rows = []
    for rate in (0.03, 0.07, 0.11):
        traffic = UniformRandomTraffic(mesh, injection_rate=rate, seed=42)
        simulated = simulator.run(traffic, n_cycles=300).average_latency_cycles
        estimate = analytical.estimate(traffic.rate_matrix())
        test_samples = build_noc_training_set(mesh, injection_rates=(rate,),
                                              n_cycles=300, seed=7)
        svr_prediction = float(svr.predict(test_samples)[0])
        rows.append((rate, simulated, estimate.average_latency_cycles, svr_prediction))
    print(format_table(
        ["injection rate", "simulator (cycles)", "analytical (cycles)", "SVR (cycles)"],
        rows, precision=1, title="NoC average packet latency (Sec. III-C)"))


def main() -> None:
    thermal_demo()
    skin_temperature_demo()
    noc_demo()


if __name__ == "__main__":
    main()
