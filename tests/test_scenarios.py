"""Tests for the dynamic scenario engine.

Covers the scenario registry and serialization, the determinism and purity
contracts of every registered transform, space restriction and its
interaction with the :class:`~repro.core.oracle.OracleCache` (a throttled
window must never reuse a stale full-space Oracle entry), throttle
enforcement in the shared policy-evaluation loop, the robustness driver,
and the ``--jobs`` invariance of the scenario sweep.
"""

import dataclasses

import numpy as np
import pytest

from repro.control.policy import GovernorPolicy, StaticPolicy
from repro.core.objectives import ENERGY
from repro.core.oracle import OracleCache, build_oracle
from repro.experiments.robustness import (
    ROBUSTNESS_POLICIES,
    format_robustness,
    run_robustness,
)
from repro.experiments.runner import ExperimentRunner, get_experiment, main
from repro.experiments.scales import TINY, ExperimentScale
from repro.scenarios import (
    BurstyIdle,
    CharacteristicDrift,
    CompositeScenario,
    PhaseChurn,
    ScenarioTrace,
    ThermalThrottle,
    ThrottleEvent,
    available_scenarios,
    build_scenario_oracle,
    get_scenario,
    register_scenario,
    run_policy_on_scenario,
    scenario_from_dict,
)
from repro.scenarios import base as scenario_base
from repro.scenarios.base import ScenarioSpec
from repro.scenarios.runtime import make_space_schedule, restricted_spaces
from repro.soc.configuration import ConfigurationSpace
from repro.soc.governors import PowersaveGovernor
from repro.workloads.sequences import build_online_sequence
from repro.workloads.suites import unseen_workloads

REQUIRED_SCENARIOS = {
    "phase_churn", "bursty_idle", "concurrent_mix", "thermal_throttle",
    "characteristic_drift", "stress_combo",
}


@pytest.fixture(scope="module")
def base_trace():
    return build_online_sequence(
        specs=unseen_workloads(), snippet_factor=0.3, seed=0
    ).snippets


def snapshot(snippets):
    """Content snapshot of a trace (for purity checks)."""
    return [
        (s.application, s.index, s.n_instructions, s.characteristics.as_dict())
        for s in snippets
    ]


class TestRegistry:
    def test_required_scenarios_registered(self):
        names = set(available_scenarios())
        assert REQUIRED_SCENARIOS <= names
        assert len(names) >= 5

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_scenario("heat-death")

    def test_duplicate_registration_rejected(self):
        spec = PhaseChurn(name="test-duplicate")
        register_scenario(spec)
        try:
            with pytest.raises(ValueError):
                register_scenario(PhaseChurn(name="test-duplicate"))
            register_scenario(PhaseChurn(name="test-duplicate", block=4),
                              overwrite=True)
            assert get_scenario("test-duplicate").block == 4
        finally:
            scenario_base._SCENARIO_REGISTRY.pop("test-duplicate", None)


class TestSerialization:
    @pytest.mark.parametrize("name", sorted(REQUIRED_SCENARIOS))
    def test_round_trip(self, name):
        spec = get_scenario(name)
        payload = spec.to_dict()
        assert payload["type"] == type(spec).__name__
        restored = scenario_from_dict(payload)
        assert restored == spec

    def test_composite_round_trip_preserves_children(self):
        combo = get_scenario("stress_combo")
        restored = scenario_from_dict(combo.to_dict())
        assert isinstance(restored, CompositeScenario)
        assert restored.children == combo.children

    def test_malformed_payloads_rejected(self):
        with pytest.raises(ValueError):
            scenario_from_dict("not-a-dict")
        with pytest.raises(KeyError):
            scenario_from_dict({"type": "NoSuchSpec", "params": {}})


@pytest.mark.parametrize("name", sorted(REQUIRED_SCENARIOS))
class TestScenarioContracts:
    def test_same_seed_same_trace(self, name, base_trace):
        spec = get_scenario(name)
        first = spec.apply(base_trace, 7)
        second = spec.apply(base_trace, 7)
        assert snapshot(first.snippets) == snapshot(second.snippets)
        assert first.throttle_events == second.throttle_events
        assert first.scenario_name == name

    def test_input_trace_is_not_mutated(self, name, base_trace):
        before = snapshot(base_trace)
        get_scenario(name).apply(base_trace, 3)
        assert snapshot(base_trace) == before

    def test_output_names_unique_and_indexable(self, name, base_trace):
        trace = get_scenario(name).apply(base_trace, 11)
        names = [s.name for s in trace.snippets]
        assert len(set(names)) == len(names)
        for event in trace.throttle_events:
            assert 0 <= event.start < len(trace)

    def test_empty_input_rejected(self, name):
        with pytest.raises(ValueError):
            get_scenario(name).apply([], 0)


class TestTransformSemantics:
    def test_phase_churn_is_permutation_preserving_app_order(self, base_trace):
        trace = PhaseChurn(block=5).apply(base_trace, 2)
        assert sorted(s.name for s in trace.snippets) == sorted(
            s.name for s in base_trace
        )
        per_app = {}
        for s in trace.snippets:
            per_app.setdefault(s.application, []).append(s.index)
        for indices in per_app.values():
            assert indices == sorted(indices)

    def test_concurrent_mix_interleaves_more_than_phase_churn(self, base_trace):
        def switches(snippets):
            return sum(
                1 for a, b in zip(snippets, snippets[1:])
                if a.application != b.application
            )
        churn = get_scenario("phase_churn").apply(base_trace, 5)
        mix = get_scenario("concurrent_mix").apply(base_trace, 5)
        assert switches(mix.snippets) > switches(churn.snippets)
        assert switches(churn.snippets) >= switches(base_trace)

    def test_bursty_idle_inserts_idle_snippets(self, base_trace):
        spec = BurstyIdle(burst=8, idle_gap=2)
        trace = spec.apply(base_trace, 4)
        idle = [s for s in trace.snippets if s.application == "idle"]
        real = [s for s in trace.snippets if s.application != "idle"]
        assert snapshot(real) == snapshot(base_trace)
        expected_gaps = (len(base_trace) - 1) // spec.burst
        assert len(idle) == expected_gaps * spec.idle_gap
        assert all(s.n_instructions < base_trace[0].n_instructions
                   for s in idle)
        assert all(s.characteristics.big_fraction <= 0.2 for s in idle)

    def test_thermal_throttle_leaves_snippets_untouched(self, base_trace):
        trace = get_scenario("thermal_throttle").apply(base_trace, 9)
        assert all(a is b for a, b in zip(trace.snippets, base_trace))
        assert trace.throttle_events
        assert 0 < trace.throttled_steps() < len(trace)

    def test_characteristic_drift_ramps_memory_intensity(self, base_trace):
        spec = CharacteristicDrift(memory_intensity_scale=3.0, ilp_scale=0.7)
        trace = spec.apply(base_trace, 0)
        assert [s.name for s in trace.snippets] == [s.name for s in base_trace]
        first_ratio = (trace.snippets[0].characteristics.memory_intensity
                       / base_trace[0].characteristics.memory_intensity)
        last_ratio = (trace.snippets[-1].characteristics.memory_intensity
                      / base_trace[-1].characteristics.memory_intensity)
        assert first_ratio == pytest.approx(1.0)
        assert last_ratio == pytest.approx(3.0)
        for s in trace.snippets:
            assert 0.05 <= s.characteristics.ilp_factor <= 1.0

    def test_stress_combo_composes_reorder_drift_throttle(self, base_trace):
        trace = get_scenario("stress_combo").apply(base_trace, 6)
        assert len(trace) == len(base_trace)
        assert trace.throttle_events
        assert sorted(s.name for s in trace.snippets) == sorted(
            s.name for s in base_trace
        )

    def test_composite_requires_children(self, base_trace):
        with pytest.raises(ValueError):
            CompositeScenario(name="empty").apply(base_trace, 0)

    def test_composite_rejects_trace_changes_after_throttling(self, base_trace):
        """Throttle-event indices refer to the final trace; a child that
        reorders or inserts after a throttling child would silently throttle
        the wrong steps, so the composition must raise instead."""
        bad_reorder = CompositeScenario(
            name="bad-reorder", children=(ThermalThrottle(), PhaseChurn())
        )
        with pytest.raises(ValueError, match="throttle"):
            bad_reorder.apply(base_trace, 0)
        bad_insert = CompositeScenario(
            name="bad-insert", children=(ThermalThrottle(), BurstyIdle())
        )
        with pytest.raises(ValueError, match="throttle"):
            bad_insert.apply(base_trace, 0)
        # Throttling twice is fine — the trace is untouched in between.
        double = CompositeScenario(
            name="double-throttle",
            children=(ThermalThrottle(period=20),
                      ThermalThrottle(period=14, max_opp_index=0)),
        )
        trace = double.apply(base_trace, 0)
        assert len(trace.throttle_events) > 1


class TestScenarioTrace:
    def test_cap_at_takes_tightest_active_event(self):
        trace = ScenarioTrace(
            snippets=[],
            throttle_events=(
                ThrottleEvent(start=0, stop=10, max_opp_index=3),
                ThrottleEvent(start=5, stop=8, max_opp_index=1),
            ),
        )
        assert trace.cap_at(0) == 3
        assert trace.cap_at(6) == 1
        assert trace.cap_at(9) == 3
        assert trace.cap_at(10) is None

    def test_throttle_event_validation(self):
        with pytest.raises(ValueError):
            ThrottleEvent(start=-1, stop=2, max_opp_index=0)
        with pytest.raises(ValueError):
            ThrottleEvent(start=3, stop=3, max_opp_index=0)
        with pytest.raises(ValueError):
            ThrottleEvent(start=0, stop=2, max_opp_index=-1)

    def test_duplicate_snippet_names_rejected(self, base_trace):
        @dataclasses.dataclass(frozen=True)
        class Duplicator(ScenarioSpec):
            name: str = "test-duplicator"

            def _transform(self, snippets, rng):
                return ScenarioTrace([snippets[0], snippets[0]])

        with pytest.raises(ValueError):
            Duplicator().apply(base_trace, 0)
        scenario_base._SPEC_TYPES.pop("Duplicator", None)


class TestSpaceRestriction:
    def test_restrict_shrinks_and_composes(self, space):
        restricted = space.restrict(max_opp_index=2)
        assert 0 < len(restricted) < len(space)
        assert all(space.contains(cfg) for cfg in restricted)
        tighter = restricted.restrict(max_opp_index=1)
        assert len(tighter) < len(restricted)
        # Restricting with a looser cap keeps the tighter bound.
        still = tighter.restrict(max_opp_index=5)
        assert len(still) == len(tighter)
        assert restricted.contains(restricted.default_configuration())

    def test_clamp_projects_into_restricted_space(self, space):
        restricted = space.restrict(max_opp_index=1)
        for config in space:
            clamped = restricted.clamp(config)
            assert restricted.contains(clamped)
            for cluster in space.cluster_order:
                assert clamped.opp_index(cluster) <= 1
                if config.opp_index(cluster) <= 1:
                    assert clamped.opp_index(cluster) == config.opp_index(cluster)

    def test_restricted_cache_key_differs(self, space):
        restricted = space.restrict(max_opp_index=1)
        assert restricted.cache_key() != space.cache_key()
        # A non-binding restriction is the same space and shares the key.
        assert space.restrict(max_opp_index=10**6).cache_key() == space.cache_key()

    def test_oracle_cache_never_reuses_full_space_entries(
            self, simulator, space, compute_snippet):
        """Satellite regression: throttled sweeps must miss the cache."""
        cache = OracleCache()
        build_oracle(simulator, space, [compute_snippet], ENERGY, cache=cache)
        assert cache.misses == 1
        restricted = space.restrict(max_opp_index=0)
        table = build_oracle(simulator, restricted, [compute_snippet], ENERGY,
                             cache=cache)
        assert cache.hits == 0 and cache.misses == 2
        assert restricted.contains(
            table.entry(compute_snippet).best_configuration
        )
        # Same restriction again: now it hits its own entry.
        build_oracle(simulator, space.restrict(max_opp_index=0),
                     [compute_snippet], ENERGY, cache=cache)
        assert cache.hits == 1


class TestScenarioRuntime:
    @pytest.fixture()
    def throttle_trace(self, base_trace):
        spec = ThermalThrottle(period=10, duty=0.5, max_opp_index=0)
        return spec.apply(base_trace[:20], 1)

    def test_restricted_spaces_one_per_cap(self, space, throttle_trace):
        spaces = restricted_spaces(space, throttle_trace)
        assert set(spaces) == {0}
        assert len(spaces[0]) < len(space)

    def test_schedule_none_without_events(self, space, base_trace):
        trace = CharacteristicDrift().apply(base_trace[:5], 0)
        assert make_space_schedule(space, trace) is None

    def test_throttle_windows_enforced_on_static_policy(
            self, simulator, space, throttle_trace):
        top = space[len(space) - 1]
        run = run_policy_on_scenario(
            simulator, space, StaticPolicy(space, top), throttle_trace
        )
        throttled = run.log.column("throttled")
        big_opp = run.log.column("big_opp")
        assert throttled.sum() == throttle_trace.throttled_steps()
        for step in range(len(throttle_trace)):
            if throttle_trace.cap_at(step) is not None:
                assert big_opp[step] == 0.0
            else:
                assert big_opp[step] == float(top.opp_index("big"))

    def test_scenario_oracle_respects_restrictions(
            self, simulator, space, throttle_trace):
        cache = OracleCache()
        table = build_scenario_oracle(simulator, space, throttle_trace,
                                      ENERGY, cache=cache)
        assert len(table) == len(throttle_trace)
        restricted = space.restrict(max_opp_index=0)
        for step, snippet in enumerate(throttle_trace.snippets):
            best = table.entry(snippet).best_configuration
            if throttle_trace.cap_at(step) is not None:
                assert restricted.contains(best)
            assert space.contains(best)

    def test_framework_scenario_evaluation(self, trained_framework, base_trace):
        trace = ThermalThrottle(period=8, duty=0.5, max_opp_index=1).apply(
            base_trace[:16], 5
        )
        policy = GovernorPolicy(PowersaveGovernor(trained_framework.space))
        run = trained_framework.evaluate_policy_on_scenario(policy, trace)
        assert run.oracle_energy_j > 0.0
        assert run.normalized_energy >= 0.95
        assert len(run.results) == len(trace)

    def test_isolated_online_policy_leaves_framework_untouched(
            self, trained_framework, base_trace):
        framework = trained_framework
        weights_before = [w.copy() for w in
                          framework.offline_policy.classifier._core.weights]
        policy = framework.build_online_il_policy(
            buffer_capacity=5, update_epochs=5, isolated=True
        )
        trace = get_scenario("phase_churn").apply(base_trace[:15], 3)
        framework.evaluate_policy_on_scenario(policy, trace)
        weights_after = framework.offline_policy.classifier._core.weights
        for before, after in zip(weights_before, weights_after):
            np.testing.assert_array_equal(before, after)
        # The run must actually have adapted the isolated copy — otherwise
        # the no-mutation assertions above would be vacuous.
        assert policy.n_policy_updates > 0
        assert any(
            not np.array_equal(before, after)
            for before, after in zip(weights_before,
                                     policy.classifier._core.weights)
        )
        # The non-isolated build shares the classifier object.
        shared = framework.build_online_il_policy(buffer_capacity=5,
                                                  update_epochs=5)
        assert shared.classifier is framework.offline_policy.classifier
        assert policy.classifier is not framework.offline_policy.classifier


class TestRobustnessDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_robustness(TINY, seed=0,
                              scenarios=("phase_churn", "thermal_throttle"))

    def test_sweep_shape(self, result):
        assert result.scenarios() == ["phase_churn", "thermal_throttle"]
        assert result.policies() == list(ROBUSTNESS_POLICIES)
        assert len(result.rows) == 2 * len(ROBUSTNESS_POLICIES)
        for row in result.rows:
            assert row.normalized_energy >= 0.95
            assert 0.0 <= row.final_accuracy_percent <= 100.0
            assert row.n_snippets > 0
        throttle_rows = [r for r in result.rows
                         if r.scenario == "thermal_throttle"]
        assert all(r.throttled_steps > 0 for r in throttle_rows)

    def test_online_il_beats_offline_il(self, result):
        for scenario in result.scenarios():
            assert result.online_advantage(scenario) > 0.0

    def test_formatter_mentions_everything(self, result):
        text = format_robustness(result)
        for scenario in result.scenarios():
            assert scenario in text
        for policy in ROBUSTNESS_POLICIES:
            assert policy in text

    def test_unknown_inputs_rejected(self):
        with pytest.raises(KeyError):
            run_robustness(TINY, seed=0, scenarios=("no-such-scenario",))
        with pytest.raises(KeyError):
            run_robustness(TINY, seed=0, policies=("no-such-policy",))
        # An empty filter must not silently expand to the full sweep.
        with pytest.raises(ValueError):
            run_robustness(TINY, seed=0, scenarios=())


class TestJobsDeterminism:
    """Satellite: identical scenario-sweep results for any job count."""

    SCALE = ExperimentScale(
        name="scenario-determinism",
        train_snippet_factor=0.1,
        eval_snippet_factor=0.1,
        sequence_snippet_factor=0.3,
        offline_epochs=20,
        buffer_capacity=8,
        update_epochs=20,
        rl_offline_episodes=1,
        gpu_frames=40,
        nmpc_surface_samples=40,
    )

    def test_robustness_identical_across_job_counts(self):
        filter_ = ("phase_churn", "thermal_throttle")
        seeds = (0, 1, 2, 3)
        with ExperimentRunner(scale=self.SCALE, seeds=seeds, jobs=1,
                              scenario_filter=filter_) as sequential:
            seq = sequential.run("robustness")
        with ExperimentRunner(scale=self.SCALE, seeds=seeds, jobs=4,
                              scenario_filter=filter_) as parallel:
            par = parallel.run("robustness")
        assert [r.seed for r in seq.seed_runs] == [r.seed for r in par.seed_runs]
        assert [r.result for r in seq.seed_runs] == [r.result for r in par.seed_runs]

    def test_repeated_sequential_runs_identical(self):
        first = run_robustness(self.SCALE, seed=0, scenarios=("stress_combo",))
        second = run_robustness(self.SCALE, seed=0, scenarios=("stress_combo",))
        assert first == second


class TestCLI:
    def test_robustness_with_scenario_flag(self, capsys):
        assert main(["robustness", "--scenario", "phase_churn",
                     "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "phase_churn" in out
        assert "online-il" in out
        assert "thermal_throttle" not in out

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["robustness", "--scenario", "heat-death",
                     "--scale", "tiny"]) == 2
        assert "unknown scenarios" in capsys.readouterr().err

    def test_scenario_flag_on_non_scenario_experiment_rejected(self, capsys):
        assert main(["figure2", "--scenario", "phase_churn",
                     "--scale", "tiny"]) == 2
        assert "--scenario has no effect" in capsys.readouterr().err

    def test_list_includes_scenarios(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "robustness" in out
        for name in sorted(REQUIRED_SCENARIOS):
            assert name in out

    def test_registry_spec_round_trip(self):
        spec = get_experiment("robustness")
        assert "scenario" in spec.tags
        assert callable(spec.runner)
