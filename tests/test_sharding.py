"""Tests for the process-sharded fleet engine and identity-key hygiene.

The acceptance bar mirrors the fleet engine's own: a
:class:`~repro.fleet.sharding.ShardedFleetEngine` run is **bitwise
identical** to the single-process :class:`~repro.fleet.engine.FleetEngine`
and **invariant to the shard count** — for governor fleets, online-IL
learning fleets, throttled-scenario devices and ragged trace lengths.
Alongside sit the guards that make cross-process grouping sound at all:
no ``id()``-derived value in any fleet grouping key or map (process-local
addresses do not survive pickling and can alias after GC), object-held
adoption membership, and NaN-aware fleet aggregation.
"""

from __future__ import annotations

import gc
import io
import tokenize
import weakref
from pathlib import Path

import numpy as np
import pytest

from repro.control.policy import GovernorPolicy
from repro.core.online_il import OnlineILPolicy
from repro.experiments.fleet import FleetDeviceReport, _fleet_aggregates
from repro.fleet import (
    DeviceSpec,
    ShardedFleetEngine,
    build_fleet,
)
from repro.scenarios import get_scenario
from repro.soc.governors import (
    InteractiveGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.soc.simulator import SoCSimulator
from repro.workloads.generator import SnippetTraceGenerator
from repro.workloads.suites import training_workloads

LOG_KEYS = ("energy_j", "time_s", "power_w", "big_opp", "little_opp")

GOVERNORS = (OndemandGovernor, PerformanceGovernor, PowersaveGovernor,
             InteractiveGovernor)


def make_trace(i, factor=0.3, extra=0):
    generator = SnippetTraceGenerator(seed=100 + i)
    workloads = training_workloads()
    trace = generator.generate(workloads[i % len(workloads)].scaled(factor))
    for j in range(extra):
        trace.extend(generator.generate(
            workloads[(i + j + 1) % len(workloads)].scaled(factor)
        ))
    return trace


def assert_logs_bitwise_equal(runs, summaries, keys=None):
    """Single-process PolicyRunResults == sharded log-mode summaries.

    ``keys=None`` compares *every* column the reference log materialised
    (and requires the sharded log to have exactly the same columns —
    e.g. ``throttled`` appears only for devices with a throttle
    schedule, on both paths alike).
    """
    assert len(runs) == len(summaries)
    for run, summary in zip(runs, summaries):
        reference = run.log.to_dict()
        assert len(run.log) == summary.steps
        if keys is None:
            assert set(reference) == set(summary.log), summary.name
        for key in (keys if keys is not None else reference):
            np.testing.assert_array_equal(
                np.asarray(reference[key]), np.asarray(summary.log[key]),
                err_msg=f"{summary.name}:{key}",
            )
        assert run.total_energy_j == summary.total_energy_j
        assert run.total_time_s == summary.total_time_s


class TestShardCountInvariance:
    """Sharded logs == single-process logs, for 1, 2 and 4 shards."""

    def _compare(self, platform, space, devices_factory, n_devices,
                 shard_counts=(1, 2, 4), keys=None):
        simulator = SoCSimulator(platform, noise_scale=0.02, seed=0)
        reference = build_fleet(devices_factory(), simulator, space).run()
        for n_shards in shard_counts:
            engine = ShardedFleetEngine(
                devices_factory(),
                SoCSimulator(platform, noise_scale=0.02, seed=0),
                space, n_shards=n_shards, collect="logs",
            )
            summaries = engine.run()
            assert [s.name for s in summaries] == [
                f"dev-{i}" for i in range(n_devices)
            ]
            assert_logs_bitwise_equal(reference, summaries, keys=keys)

    def test_governor_fleet(self, platform, space):
        def devices():
            return [DeviceSpec(
                name=f"dev-{i}",
                policy=GovernorPolicy(GOVERNORS[i % len(GOVERNORS)](space)),
                snippets=make_trace(i), seed=50 + i,
            ) for i in range(5)]
        self._compare(platform, space, devices, 5)

    def test_ragged_trace_lengths(self, platform, space):
        def devices():
            return [DeviceSpec(
                name=f"dev-{i}",
                policy=GovernorPolicy(OndemandGovernor(space)),
                snippets=make_trace(i, extra=i % 3), seed=70 + i,
            ) for i in range(4)]
        self._compare(platform, space, devices, 4)

    def test_scenario_throttled_devices(self, platform, space):
        def devices():
            out = []
            for i in range(3):
                scenario = get_scenario("thermal_throttle").apply(
                    make_trace(i), 300 + i
                )
                out.append(DeviceSpec(
                    name=f"dev-{i}",
                    policy=GovernorPolicy(OndemandGovernor(space)),
                    scenario=scenario, seed=90 + i,
                ))
            return out
        self._compare(platform, space, devices, 3)

    def test_online_il_fleet(self, trained_framework):
        framework = trained_framework
        space = framework.space
        platform = framework.simulator.platform

        def devices():
            out = []
            for i in range(3):
                trace = make_trace(i, factor=0.2)
                out.append(DeviceSpec(
                    name=f"dev-{i}",
                    policy=framework.build_online_il_policy(isolated=True),
                    snippets=trace, seed=40 + i,
                    oracle_table=framework.build_oracle_for(trace),
                ))
            return out
        self._compare(platform, space, devices, 3, shard_counts=(1, 2))


class TestStreamedSummaries:
    """collect='summaries' streams O(devices) aggregates, bitwise."""

    def _devices(self, space):
        out = []
        for i in range(5):
            trace = make_trace(i, extra=i % 2)
            out.append(DeviceSpec(
                name=f"dev-{i}",
                policy=GovernorPolicy(GOVERNORS[i % len(GOVERNORS)](space)),
                snippets=trace, seed=60 + i,
            ))
        return out

    def test_summary_fields_match_materialized_run(self, platform, space):
        simulator = SoCSimulator(platform, noise_scale=0.02, seed=0)
        reference = build_fleet(self._devices(space), simulator, space).run()
        engine = ShardedFleetEngine(
            self._devices(space),
            SoCSimulator(platform, noise_scale=0.02, seed=0),
            space, n_shards=2, collect="summaries",
        )
        summaries = engine.run()
        for run, summary in zip(reference, summaries):
            assert summary.log is None
            assert summary.steps == len(run.log)
            assert summary.total_energy_j == run.total_energy_j
            assert summary.total_time_s == run.total_time_s
            throttled = run.log.column("throttled", default=0.0)
            assert summary.throttled_steps == int(np.nansum(throttled))
            # No oracle tables on these devices: accuracy stays NaN and
            # normalisation raises exactly like PolicyRunResult does.
            assert np.isnan(summary.final_accuracy)
            with pytest.raises(ValueError, match="Oracle energy"):
                summary.normalized_energy

    def test_partitions_and_aggregates_invariant_to_shard_count(
            self, platform, space):
        """Streamed summaries land in device order for every partition,
        so downstream aggregation is shard-count independent, exactly."""
        per_shards = {}
        for n_shards in (1, 2, 3, 4, 5):
            engine = ShardedFleetEngine(
                self._devices(space),
                SoCSimulator(platform, noise_scale=0.02, seed=0),
                space, n_shards=n_shards, collect="summaries",
            )
            summaries = engine.run()
            assert [s.name for s in summaries] == [
                f"dev-{i}" for i in range(5)
            ]
            reports = [FleetDeviceReport(
                name=s.name, policy=s.policy_name, scenario="",
                steps=s.steps, throttled_steps=s.throttled_steps,
                total_energy_j=s.total_energy_j, total_time_s=s.total_time_s,
                normalized_energy=float("nan"),
                final_accuracy=s.final_accuracy,
            ) for s in summaries]
            per_shards[n_shards] = _fleet_aggregates(reports)
        reference = per_shards[1]
        for n_shards, aggregates in per_shards.items():
            assert aggregates.keys() == reference.keys()
            for key in reference:
                a, b = aggregates[key], reference[key]
                assert a == b or (np.isnan(a) and np.isnan(b)), (
                    n_shards, key
                )

    def test_engine_validates_inputs(self, platform, space):
        simulator = SoCSimulator(platform, noise_scale=0.0, seed=0)
        devices = self._devices(space)
        with pytest.raises(ValueError, match="n_shards"):
            ShardedFleetEngine(devices, simulator, space, n_shards=0)
        with pytest.raises(ValueError, match="collect"):
            ShardedFleetEngine(devices, simulator, space, collect="frames")
        with pytest.raises(ValueError, match="at least one device"):
            ShardedFleetEngine([], simulator, space)
        # More shards than devices degrades to one device per shard.
        engine = ShardedFleetEngine(devices, simulator, space, n_shards=64)
        assert engine.n_shards == len(devices)
        assert engine.shard_bounds == [(i, i + 1)
                                       for i in range(len(devices))]


class TestAdoptionOwnership:
    """Group membership is held by object, never by process-local id()."""

    def test_members_match_semantics(self):
        a, b, c = object(), object(), object()
        assert not OnlineILPolicy._members_match(None, (a, b))
        assert not OnlineILPolicy._members_match((a,), (a, b))
        assert not OnlineILPolicy._members_match((a, c), (a, b))
        assert OnlineILPolicy._members_match((a, b), (a, b))

    def test_reallocated_policy_cannot_alias_adopted_group(
            self, trained_framework):
        """The old id()-tuple check could confuse a GC'd policy with a new
        allocation at the same address; the stored member tuple now keeps
        the originals alive and compares by identity."""
        policies = [trained_framework.build_online_il_policy(isolated=True)
                    for _ in range(3)]
        state: dict = {}
        adopted = OnlineILPolicy._fleet_adopt(tuple(policies), state)
        assert adopted["members"] == tuple(policies)
        # Same membership: the state object is reused as-is.
        assert OnlineILPolicy._fleet_adopt(tuple(policies), adopted) is adopted

        ghost = weakref.ref(policies[0])
        survivors = policies[1:]
        replaced = tuple(
            [trained_framework.build_online_il_policy(isolated=True)]
            + survivors
        )
        del policies
        gc.collect()
        # The adopted state still pins the dropped policy — its slot can
        # never be re-used by an impostor object...
        assert ghost() is not None
        # ...and the replacement tuple fails the identity check, forcing
        # re-adoption instead of replaying stale stacks.
        assert not OnlineILPolicy._members_match(adopted["members"], replaced)


class TestFleetAggregates:
    """NaN-aware fleet aggregation with explicit reported counts."""

    @staticmethod
    def _report(i, normalized=1.0, accuracy=90.0):
        return FleetDeviceReport(
            name=f"dev-{i}", policy="p", scenario="", steps=10,
            throttled_steps=0, total_energy_j=2.0, total_time_s=1.0,
            normalized_energy=normalized, final_accuracy=accuracy,
        )

    def test_empty_reports_raise(self):
        with pytest.raises(ValueError, match="at least one device report"):
            _fleet_aggregates([])

    def test_nan_device_does_not_poison_percentiles(self):
        reports = [self._report(0, normalized=1.0, accuracy=80.0),
                   self._report(1, normalized=float("nan"),
                                accuracy=float("nan")),
                   self._report(2, normalized=3.0, accuracy=100.0)]
        aggregates = _fleet_aggregates(reports)
        assert aggregates["n_devices_reported"] == 3.0
        assert aggregates["n_normalized_energy_reported"] == 2.0
        assert aggregates["n_final_accuracy_reported"] == 2.0
        assert aggregates["normalized_energy_mean"] == 2.0
        assert aggregates["normalized_energy_p50"] == 2.0
        assert aggregates["final_accuracy_mean"] == 90.0
        assert aggregates["fleet_energy_j"] == 6.0

    def test_all_nan_metric_yields_nan_without_warning(self, recwarn):
        reports = [self._report(0, normalized=float("nan"),
                                accuracy=float("nan"))]
        aggregates = _fleet_aggregates(reports)
        assert aggregates["n_normalized_energy_reported"] == 0.0
        assert np.isnan(aggregates["normalized_energy_p99"])
        assert np.isnan(aggregates["final_accuracy_p50"])
        runtime = [w for w in recwarn.list
                   if issubclass(w.category, RuntimeWarning)]
        assert not runtime


class TestIdentityKeyLint:
    """No id()-derived values anywhere near fleet grouping or maps.

    ``id()`` keys are process-local and reusable after garbage collection:
    they cannot cross a pickling boundary to a shard worker, and within a
    process a recycled address silently aliases two objects into one
    group.  Every module participating in fleet grouping, batching or
    cross-process transport is scanned token-wise (comments and strings
    excluded) for calls to the ``id`` builtin.  ``ml/tree.py`` flattens
    trees with ``id()`` purely inside one process and one call — it is
    deliberately out of scope.
    """

    LINTED = (
        "fleet/engine.py", "fleet/device.py", "fleet/kernels.py",
        "fleet/sharding.py", "fleet/faults.py", "fleet/supervisor.py",
        "control/policy.py", "core/online_il.py",
        "ml/rls.py", "ml/mlp.py",
    )

    def test_no_id_builtin_calls(self):
        src_root = Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = []
        for relative in self.LINTED:
            path = src_root / relative
            source = path.read_text()
            previous = None
            before_previous = None
            for token in tokenize.generate_tokens(
                    io.StringIO(source).readline):
                if (token.type == tokenize.OP and token.string == "("
                        and previous is not None
                        and previous.type == tokenize.NAME
                        and previous.string == "id"
                        and not (before_previous is not None
                                 and before_previous.type == tokenize.OP
                                 and before_previous.string == ".")):
                    offenders.append(f"{relative}:{previous.start[0]}")
                if token.type not in (tokenize.NL, tokenize.NEWLINE,
                                      tokenize.INDENT, tokenize.DEDENT,
                                      tokenize.COMMENT):
                    before_previous = previous
                    previous = token
        assert not offenders, (
            f"id() calls found in fleet-grouping modules: {offenders} — "
            "use object-keyed maps or content keys instead"
        )


class TestShardedExperiment:
    """--shards plumbing: bitwise experiment results and CLI validation."""

    def test_run_fleet_sharded_matches_single_process(self):
        from dataclasses import asdict

        from repro.experiments.fleet import run_fleet
        from repro.experiments.scales import TINY

        reference = run_fleet(TINY, seed=0, n_devices=2)
        sharded = run_fleet(TINY, seed=0, n_devices=2, n_shards=2)
        assert [asdict(d) for d in sharded.devices] == [
            asdict(d) for d in reference.devices
        ]
        assert sharded.aggregates == reference.aggregates
        assert sharded.total_steps == reference.total_steps

    def test_cli_rejects_invalid_shards(self, capsys):
        from repro.experiments.runner import main

        assert main(["fleet", "--shards", "0"]) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_cli_rejects_shards_without_fleet_experiment(self, capsys):
        from repro.experiments.runner import main

        assert main(["figure2", "--shards", "2"]) == 2
        assert "--shards has no effect" in capsys.readouterr().err


class TestResourceHygiene:
    """Worker-pool and shared-memory teardown on every failure path.

    A prepared-but-never-executed engine leaves its workers blocked
    waiting for ``go``; an exception mid-prepare/execute leaves undrained
    pipe messages; a parent that dies with a mapped block would strand a
    ``/dev/shm`` segment.  These tests pin that close()/error paths
    retire poisoned workers and that the atexit sweep unlinks leftovers.
    """

    def _devices(self, space, n=4):
        return [
            DeviceSpec(name=f"dev{i}",
                       policy=GovernorPolicy(OndemandGovernor(space)),
                       snippets=make_trace(i, factor=0.2), seed=300 + i)
            for i in range(n)
        ]

    def test_close_retires_prepared_workers_and_pool_recovers(
            self, platform, space):
        import repro.fleet.sharding as sharding

        simulator = SoCSimulator(platform, noise_scale=0.02, seed=0)
        engine = ShardedFleetEngine(self._devices(space), simulator, space,
                                    n_shards=2)
        engine.prepare()
        assert engine._workers is not None
        engine.close()
        assert engine._workers is None
        assert engine._shared == []
        # The blocked workers were retired, not recycled: a fresh engine
        # must run cleanly on newly spawned workers.
        summaries = ShardedFleetEngine(self._devices(space), simulator,
                                       space, n_shards=2).run()
        assert len(summaries) == 4
        assert all(s.steps > 0 for s in summaries)
        sharding.shutdown_workers()

    def test_context_manager_closes(self, platform, space):
        simulator = SoCSimulator(platform, noise_scale=0.02, seed=0)
        with ShardedFleetEngine(self._devices(space), simulator, space,
                                n_shards=2) as engine:
            engine.prepare()
        assert engine._workers is None

    def test_interrupt_mid_prepare_releases_everything(self, platform,
                                                       space, monkeypatch):
        """A simulated parent failure (KeyboardInterrupt between shard
        shipments) must leave no mapped segment and no poisoned worker."""
        import repro.fleet.sharding as sharding

        simulator = SoCSimulator(platform, noise_scale=0.02, seed=0)
        engine = ShardedFleetEngine(self._devices(space), simulator, space,
                                    n_shards=2)
        original = ShardedFleetEngine._ship_shard
        shipped = []

        def failing_ship(self, worker, lo, hi):
            original(self, worker, lo, hi)
            shipped.append((lo, hi))
            if len(shipped) == 2:
                raise KeyboardInterrupt

        monkeypatch.setattr(ShardedFleetEngine, "_ship_shard", failing_ship)
        with pytest.raises(KeyboardInterrupt):
            engine.prepare()
        assert engine._shared == []
        assert not sharding._LIVE_SHARED
        assert not sharding._POOL  # the involved workers were retired
        monkeypatch.undo()
        # The pool re-spawns and serves a clean run afterwards.
        summaries = ShardedFleetEngine(self._devices(space), simulator,
                                       space, n_shards=2).run()
        assert len(summaries) == 4
        sharding.shutdown_workers()

    def test_parent_death_leaves_no_stale_shm_segment(self):
        """A block still mapped when the interpreter exits (the parent
        'failed' before its unlink) is swept by the atexit teardown."""
        import subprocess
        import sys

        script = (
            "import json, sys\n"
            "import repro.fleet.sharding as sharding\n"
            "from multiprocessing import shared_memory\n"
            "block = shared_memory.SharedMemory(create=True, size=1024)\n"
            "sharding._LIVE_SHARED.append(block)\n"
            "print(json.dumps({'name': block.name}))\n"
            "sys.stdout.flush()\n"
            # exit WITHOUT unlinking: only the atexit sweep stands between
            # this mapping and a stale /dev/shm segment.
        )
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        name = __import__("json").loads(result.stdout)["name"]
        from multiprocessing import shared_memory as shm

        with pytest.raises(FileNotFoundError):
            shm.SharedMemory(name=name)
        # No resource-tracker leak warnings either.
        assert "leaked shared_memory" not in result.stderr
