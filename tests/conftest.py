"""Shared fixtures for the test suite.

Fixtures deliberately use small platforms, short traces and low training
budgets so the whole suite stays fast while still exercising every code path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import OnlineLearningFramework
from repro.experiments.scales import TINY  # noqa: F401  (re-exported for tests)
from repro.soc.configuration import ConfigurationSpace
from repro.soc.platform import generic_big_little, odroid_xu3_like
from repro.soc.simulator import SoCSimulator
from repro.soc.snippet import Snippet, SnippetCharacteristics
from repro.workloads.generator import SnippetTraceGenerator
from repro.workloads.suites import training_workloads


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens", action="store_true", default=False,
        help="rewrite tests/goldens/*.json from the current code instead of "
             "comparing against them (equivalent to REPRO_REGEN_GOLDENS=1)",
    )


@pytest.fixture(scope="session")
def platform():
    return odroid_xu3_like()


@pytest.fixture(scope="session")
def small_platform():
    return generic_big_little(n_big_levels=4, n_little_levels=3)


@pytest.fixture(scope="session")
def space(platform):
    return ConfigurationSpace(platform)


@pytest.fixture(scope="session")
def small_space(small_platform):
    return ConfigurationSpace(small_platform)


@pytest.fixture()
def simulator(platform):
    return SoCSimulator(platform, noise_scale=0.0, seed=0)


@pytest.fixture()
def noisy_simulator(platform):
    return SoCSimulator(platform, noise_scale=0.02, seed=0)


@pytest.fixture()
def compute_snippet():
    """A compute-bound, single-threaded snippet."""
    return Snippet(
        application="compute", index=0,
        characteristics=SnippetCharacteristics(
            memory_intensity=0.5, ilp_factor=0.9, branch_misprediction_mpki=1.0,
            thread_count=1, parallel_fraction=0.05, big_fraction=0.9,
        ),
    )


@pytest.fixture()
def memory_snippet():
    """A memory-bound, single-threaded snippet."""
    return Snippet(
        application="memory", index=0,
        characteristics=SnippetCharacteristics(
            memory_intensity=18.0, ilp_factor=0.5, branch_misprediction_mpki=3.0,
            thread_count=1, parallel_fraction=0.05, big_fraction=0.9,
        ),
    )


@pytest.fixture()
def parallel_snippet():
    """A multi-threaded snippet (blackscholes-like)."""
    return Snippet(
        application="parallel", index=0,
        characteristics=SnippetCharacteristics(
            memory_intensity=3.0, ilp_factor=0.85, branch_misprediction_mpki=1.5,
            thread_count=4, parallel_fraction=0.95, big_fraction=0.95,
        ),
    )


@pytest.fixture()
def trace_generator():
    return SnippetTraceGenerator(seed=0)


@pytest.fixture(scope="module")
def trained_framework():
    """Framework with a small offline-trained IL policy (shared per module)."""
    framework = OnlineLearningFramework(seed=0)
    workloads = [w.scaled(0.15) for w in training_workloads()[:4]]
    framework.train_offline(workloads, epochs=40)
    return framework


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
