"""Tests for the NoC substrate: topology, traffic, simulator, analytical and SVR models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.noc import (
    AnalyticalNoCModel,
    HotspotTraffic,
    MeshTopology,
    NoCSimulator,
    Packet,
    RouterConfig,
    SVRNoCLatencyModel,
    TransposeTraffic,
    UniformRandomTraffic,
    build_noc_training_set,
)


@pytest.fixture(scope="module")
def mesh():
    return MeshTopology(4, 4)


class TestTopology:
    def test_node_coordinate_round_trip(self, mesh):
        for node in range(mesh.n_nodes):
            x, y = mesh.coordinates(node)
            assert mesh.node_at(x, y) == node

    def test_xy_route_properties(self, mesh):
        route = mesh.xy_route(0, 15)
        assert route[0] == 0 and route[-1] == 15
        assert len(route) == mesh.hop_count(0, 15) + 1
        # XY routing: x changes first, then y.
        xs = [mesh.coordinates(n)[0] for n in route]
        ys = [mesh.coordinates(n)[1] for n in route]
        assert ys[: xs.index(max(xs)) + 1].count(ys[0]) == xs.index(max(xs)) + 1

    def test_route_links_are_adjacent(self, mesh):
        for src, dst in [(0, 5), (3, 12), (15, 0)]:
            for a, b in mesh.route_links(src, dst):
                ax, ay = mesh.coordinates(a)
                bx, by = mesh.coordinates(b)
                assert abs(ax - bx) + abs(ay - by) == 1

    def test_links_count(self, mesh):
        # 2 * (width-1) * height horizontal + 2 * width * (height-1) vertical.
        assert len(mesh.links()) == 2 * 3 * 4 + 2 * 4 * 3

    def test_average_hop_count(self, mesh):
        assert 2.0 < mesh.average_hop_count() < 3.0

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            MeshTopology(0, 4)
        with pytest.raises(ValueError):
            MeshTopology(4, 4).coordinates(99)

    def test_link_usage_accumulates(self, mesh):
        usage = mesh.link_usage({(0, 3): 0.1, (1, 3): 0.1})
        assert usage[(2, 3)] == pytest.approx(0.2)

    @settings(max_examples=30, deadline=None)
    @given(src=st.integers(0, 15), dst=st.integers(0, 15))
    def test_hop_count_matches_route_length(self, src, dst):
        mesh = MeshTopology(4, 4)
        assert len(mesh.xy_route(src, dst)) - 1 == mesh.hop_count(src, dst)


class TestRouterAndPacket:
    def test_router_latency_helpers(self):
        router = RouterConfig(router_delay_cycles=2, link_delay_cycles=1,
                              flits_per_cycle=1)
        assert router.service_cycles(4) == 4
        assert router.per_hop_latency(4) == 7
        with pytest.raises(ValueError):
            RouterConfig(flits_per_cycle=0)

    def test_packet_latency(self):
        packet = Packet(packet_id=0, source=0, destination=3, size_flits=4,
                        injection_cycle=10)
        assert packet.latency_cycles is None and not packet.delivered
        packet.ejection_cycle = 25
        assert packet.latency_cycles == 15
        with pytest.raises(ValueError):
            Packet(packet_id=0, source=0, destination=1, size_flits=0,
                   injection_cycle=0)


class TestTraffic:
    def test_uniform_traffic_rate(self, mesh):
        traffic = UniformRandomTraffic(mesh, injection_rate=0.1, seed=0)
        packets = traffic.generate(500)
        expected = 0.1 * mesh.n_nodes * 500
        assert len(packets) == pytest.approx(expected, rel=0.15)
        assert all(p.source != p.destination for p in packets)

    def test_uniform_rate_matrix_sums_to_injection_rate(self, mesh):
        traffic = UniformRandomTraffic(mesh, injection_rate=0.08, seed=0)
        matrix = traffic.rate_matrix()
        per_source = sum(rate for (src, _), rate in matrix.items() if src == 0)
        assert per_source == pytest.approx(0.08)

    def test_transpose_traffic_destinations(self):
        mesh = MeshTopology(4, 4)
        traffic = TransposeTraffic(mesh, injection_rate=0.1, seed=0)
        assert traffic.destination_for(mesh.node_at(1, 3)) == mesh.node_at(3, 1)
        with pytest.raises(ValueError):
            TransposeTraffic(MeshTopology(4, 3), injection_rate=0.1)

    def test_hotspot_concentrates_traffic(self, mesh):
        traffic = HotspotTraffic(mesh, injection_rate=0.1, hotspot_node=5,
                                 hotspot_fraction=0.5, seed=0)
        matrix = traffic.rate_matrix()
        hotspot_rate = sum(rate for (_, dst), rate in matrix.items() if dst == 5)
        other_rate = sum(rate for (_, dst), rate in matrix.items() if dst == 6)
        assert hotspot_rate > 3.0 * other_rate

    def test_invalid_injection_rate(self, mesh):
        with pytest.raises(ValueError):
            UniformRandomTraffic(mesh, injection_rate=0.0)
        with pytest.raises(ValueError):
            UniformRandomTraffic(mesh, injection_rate=1.5)


class TestNoCSimulator:
    def test_all_packets_delivered_at_low_load(self, mesh):
        simulator = NoCSimulator(mesh)
        traffic = UniformRandomTraffic(mesh, injection_rate=0.02, seed=0)
        result = simulator.run(traffic, n_cycles=200)
        assert result.undelivered_count == 0
        assert result.n_delivered > 0
        assert result.average_latency_cycles > 0

    def test_latency_increases_with_load(self, mesh):
        simulator = NoCSimulator(mesh)
        low = simulator.run(UniformRandomTraffic(mesh, 0.02, seed=1), n_cycles=300)
        high = simulator.run(UniformRandomTraffic(mesh, 0.25, seed=1), n_cycles=300)
        assert high.average_latency_cycles > low.average_latency_cycles

    def test_zero_load_latency_matches_single_packet(self, mesh):
        simulator = NoCSimulator(mesh)
        packet = Packet(packet_id=0, source=0, destination=15, size_flits=4,
                        injection_cycle=0)
        result = simulator.run_packets([packet], n_cycles=1)
        expected = simulator.zero_load_latency(0, 15, size_flits=4)
        # The final-hop ejection does not pay the last router+link stage.
        assert abs(result.average_latency_cycles - expected) <= (
            simulator.router.router_delay_cycles + simulator.router.link_delay_cycles)

    def test_latency_scales_with_packet_size(self, mesh):
        simulator = NoCSimulator(mesh)
        small = simulator.run(UniformRandomTraffic(mesh, 0.05, packet_size_flits=2,
                                                   seed=2), n_cycles=200)
        large = simulator.run(UniformRandomTraffic(mesh, 0.05, packet_size_flits=8,
                                                   seed=2), n_cycles=200)
        assert large.average_latency_cycles > small.average_latency_cycles

    def test_statistics_fields(self, mesh):
        simulator = NoCSimulator(mesh)
        result = simulator.run(UniformRandomTraffic(mesh, 0.05, seed=3), n_cycles=150)
        assert result.p95_latency_cycles >= result.average_latency_cycles
        assert result.throughput_packets_per_cycle > 0
        assert 1.0 <= result.average_hops() <= 6.0


class TestAnalyticalModel:
    def test_matches_simulator_at_low_load(self, mesh):
        simulator = NoCSimulator(mesh)
        analytical = AnalyticalNoCModel(mesh)
        traffic = UniformRandomTraffic(mesh, injection_rate=0.03, seed=0)
        estimate = analytical.estimate(traffic.rate_matrix())
        simulated = simulator.run(traffic, n_cycles=400).average_latency_cycles
        assert estimate.average_latency_cycles == pytest.approx(simulated, rel=0.35)
        assert not estimate.saturated

    def test_latency_monotone_in_injection_rate(self, mesh):
        analytical = AnalyticalNoCModel(mesh)
        estimates = [
            analytical.estimate(
                UniformRandomTraffic(mesh, rate, seed=0).rate_matrix()
            ).average_latency_cycles
            for rate in (0.02, 0.06, 0.10)
        ]
        assert estimates[0] < estimates[1] < estimates[2]

    def test_saturation_detected(self, mesh):
        analytical = AnalyticalNoCModel(mesh)
        estimate = analytical.estimate(
            UniformRandomTraffic(mesh, 0.9, seed=0).rate_matrix())
        assert estimate.saturated

    def test_empty_traffic(self, mesh):
        analytical = AnalyticalNoCModel(mesh)
        estimate = analytical.estimate({})
        assert np.isnan(estimate.average_latency_cycles)


class TestSVRModel:
    def test_training_set_construction(self):
        mesh = MeshTopology(3, 3)
        samples = build_noc_training_set(mesh, injection_rates=[0.02, 0.05, 0.08],
                                         n_cycles=150, seed=0)
        assert len(samples) == 3
        assert all(s.simulated_latency > 0 for s in samples)
        assert all(s.features().shape == (6,) for s in samples)

    def test_svr_beats_or_matches_analytical_model(self):
        mesh = MeshTopology(3, 3)
        train = build_noc_training_set(
            mesh, injection_rates=[0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.15],
            n_cycles=200, seed=0)
        test = build_noc_training_set(mesh, injection_rates=[0.03, 0.07, 0.11],
                                      n_cycles=200, seed=1)
        model = SVRNoCLatencyModel().fit(train)
        svr_mape, predictions = model.evaluate(test)
        assert predictions.shape == (len(test),)
        simulated = np.array([s.simulated_latency for s in test])
        analytical = np.array([s.analytical_latency for s in test])
        analytical_mape = float(np.mean(np.abs(simulated - analytical) / simulated) * 100)
        assert svr_mape < max(analytical_mape, 25.0)

    def test_requires_minimum_samples(self):
        with pytest.raises(ValueError):
            SVRNoCLatencyModel().fit([])

    def test_predict_before_fit_raises(self):
        mesh = MeshTopology(3, 3)
        samples = build_noc_training_set(mesh, injection_rates=[0.05],
                                         n_cycles=100, seed=0)
        with pytest.raises(RuntimeError):
            SVRNoCLatencyModel().predict(samples)
