"""Graceful SIGINT handling of the experiments CLI.

``python -m repro.experiments`` owns a process pool; Ctrl-C must not
leave orphaned workers or die with a stack trace.  The contract: drain
the pool, print a partial-results notice naming how many experiments
completed, and exit with the conventional interrupted status (130).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path


def _env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


class TestExperimentsSigint:
    def test_sigint_drains_and_reports_partial_results(self):
        # Enough seeds that the run is still in flight when the signal
        # lands (~9s of work; the signal arrives after ~2s).
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments",
             "robustness", "figure3", "figure4",
             "--scale", "tiny", "--seeds", "10", "--jobs", "2"],
            env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        time.sleep(2.0)
        assert process.poll() is None, "run finished before the signal"
        process.send_signal(signal.SIGINT)
        try:
            stdout, stderr = process.communicate(timeout=120)
        except subprocess.TimeoutExpired:
            process.kill()
            raise AssertionError("CLI did not drain after SIGINT")
        assert process.returncode == 130, (stdout, stderr)
        assert "interrupted: completed" in stderr
        assert "partial results" in stderr
        # Drained, not crashed: no stack trace reaches the user.
        assert "Traceback (most recent call last)" not in stderr

    def test_uninterrupted_run_still_exits_zero(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "table1",
             "--scale", "tiny"],
            env=_env(), capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0, result.stderr
