"""Persistent on-disk Oracle store: round-trip, robustness, determinism.

The :class:`~repro.core.oracle_store.OracleStore` must (a) hand back
entries bitwise-equal to what the sweep computed, across processes and
cache instances; (b) treat unreadable shards as misses and heal them by
recomputation; (c) tolerate concurrent readers; and (d) — the property the
golden traces rely on — never change any experiment result, enabled or not.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.objectives import EDP, ENERGY
from repro.core.oracle import (
    OracleCache,
    build_oracle,
    persistent_entry_digest,
    persistent_objective_key,
)
from repro.core.oracle_store import (
    OracleStore,
    STORE_FORMAT_VERSION,
    content_digest,
    default_space_digest,
    get_default_oracle_store,
    set_default_oracle_store,
)
from repro.soc.configuration import ConfigurationSpace
from repro.soc.platform import odroid_xu3_like
from repro.soc.simulator import SoCSimulator
from repro.workloads.generator import SnippetTraceGenerator
from repro.workloads.suites import training_workloads


@pytest.fixture(autouse=True)
def isolated_default_store():
    """No test leaks a process-default store into the rest of the suite."""
    previous = get_default_oracle_store()
    set_default_oracle_store(None)
    yield
    set_default_oracle_store(previous)


@pytest.fixture(scope="module")
def platform():
    return odroid_xu3_like()


@pytest.fixture(scope="module")
def space(platform):
    return ConfigurationSpace(platform)


@pytest.fixture(scope="module")
def sweep_trace():
    generator = SnippetTraceGenerator(seed=17)
    return generator.generate(training_workloads()[0].scaled(0.3))


@pytest.fixture()
def simulator(platform):
    return SoCSimulator(platform, seed=5)


def _entries_equal(left, right) -> bool:
    return (
        left.snippet_name == right.snippet_name
        and left.best_configuration == right.best_configuration
        and left.best_cost == right.best_cost
        and left.best_result.energy_j == right.best_result.energy_j
        and left.best_result.execution_time_s == right.best_result.execution_time_s
        and np.array_equal(left.best_result.counters.as_vector(),
                           right.best_result.counters.as_vector())
    )


class TestStoreRoundTrip:
    def test_cold_cache_hits_warm_store(self, tmp_path, simulator, space,
                                        sweep_trace):
        store = OracleStore(tmp_path / "store")
        warm_cache = OracleCache(store=store)
        table = build_oracle(simulator, space, sweep_trace, ENERGY,
                             cache=warm_cache)
        assert warm_cache.store_misses == len(sweep_trace)
        assert len(store) == len(sweep_trace)

        cold_cache = OracleCache(store=OracleStore(tmp_path / "store"))
        reloaded = build_oracle(simulator, space, sweep_trace, ENERGY,
                                cache=cold_cache)
        assert cold_cache.store_hits == len(sweep_trace)
        assert cold_cache.hits == 0  # every entry came from disk, not memory
        for name in table.entries:
            assert _entries_equal(table.entries[name], reloaded.entries[name])

    def test_objectives_do_not_alias(self, tmp_path, simulator, space,
                                     sweep_trace):
        store = OracleStore(tmp_path / "store")
        cache = OracleCache(store=store)
        energy_table = build_oracle(simulator, space, sweep_trace, ENERGY,
                                    cache=cache)
        edp_table = build_oracle(simulator, space, sweep_trace, EDP,
                                 cache=cache)
        assert len(store) == 2 * len(sweep_trace)
        snippet = sweep_trace[0]
        assert (persistent_entry_digest(snippet, space, ENERGY)
                != persistent_entry_digest(snippet, space, EDP))
        assert energy_table.entries[snippet.name].best_cost != \
            edp_table.entries[snippet.name].best_cost

    def test_restricted_space_does_not_alias_full_space(self, tmp_path,
                                                        simulator, space,
                                                        sweep_trace):
        store = OracleStore(tmp_path / "store")
        restricted = space.restrict(max_opp_index=1)
        snippet = sweep_trace[0]
        assert (persistent_entry_digest(snippet, space, ENERGY)
                != persistent_entry_digest(snippet, restricted, ENERGY))
        full_cache = OracleCache(store=store)
        build_oracle(simulator, space, [snippet], ENERGY, cache=full_cache)
        throttled_cache = OracleCache(store=store)
        table = build_oracle(simulator, restricted, [snippet], ENERGY,
                             cache=throttled_cache)
        # The restricted sweep missed the store (no aliasing) and its entry
        # honours the cap.
        assert throttled_cache.store_hits == 0
        assert restricted.contains(table.entries[snippet.name].best_configuration)

    def test_persistent_objective_key_distinguishes_costs(self):
        impostor_energy = ENERGY.__class__(
            name="energy", cost=lambda result: -result.energy_j
        )
        assert (persistent_objective_key(ENERGY)
                != persistent_objective_key(impostor_energy))


class TestStoreRobustness:
    def test_corrupt_shard_is_a_miss_and_heals(self, tmp_path, simulator,
                                               space, sweep_trace):
        store = OracleStore(tmp_path / "store")
        cache = OracleCache(store=store)
        build_oracle(simulator, space, sweep_trace, ENERGY, cache=cache)
        shards = sorted((tmp_path / "store").glob("*/*.pkl"))
        assert shards
        shards[0].write_bytes(b"definitely not a pickle")
        shards[1].write_bytes(pickle.dumps((STORE_FORMAT_VERSION, "x"))[:-5])

        healing_cache = OracleCache(store=OracleStore(tmp_path / "store"))
        table = build_oracle(simulator, space, sweep_trace, ENERGY,
                             cache=healing_cache)
        assert healing_cache.store_misses == 2
        assert healing_cache.store_hits == len(sweep_trace) - 2
        assert len(table.entries) == len(sweep_trace)
        # The corrupt shards were rewritten with good payloads.
        final_cache = OracleCache(store=OracleStore(tmp_path / "store"))
        build_oracle(simulator, space, sweep_trace, ENERGY, cache=final_cache)
        assert final_cache.store_hits == len(sweep_trace)

    def test_version_mismatch_is_a_miss(self, tmp_path, simulator, space,
                                        sweep_trace):
        store = OracleStore(tmp_path / "store")
        cache = OracleCache(store=store)
        build_oracle(simulator, space, [sweep_trace[0]], ENERGY, cache=cache)
        shard = next((tmp_path / "store").glob("*/*.pkl"))
        version, entry = pickle.loads(shard.read_bytes())
        shard.write_bytes(pickle.dumps((version + 1, entry)))
        assert OracleStore(tmp_path / "store").get(shard.stem) is None

    def test_concurrent_readers_agree(self, tmp_path, simulator, space,
                                      sweep_trace):
        store_root = tmp_path / "store"
        build_oracle(simulator, space, sweep_trace, ENERGY,
                     cache=OracleCache(store=OracleStore(store_root)))
        digests = [persistent_entry_digest(snippet, space, ENERGY)
                   for snippet in sweep_trace]

        def read_all(worker: int):
            reader = OracleStore(store_root)
            return [reader.get(digest) for digest in digests]

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(read_all, range(8)))
        reference = results[0]
        assert all(entry is not None for entry in reference)
        for other in results[1:]:
            for left, right in zip(reference, other):
                assert _entries_equal(left, right)

    def test_missing_digest_is_a_miss(self, tmp_path):
        store = OracleStore(tmp_path / "store")
        assert store.get("0" * 64) is None
        assert store.misses == 1 and store.hits == 0
        assert store.hit_rate == 0.0

    def test_unwritable_store_degrades_instead_of_raising(self, tmp_path,
                                                          simulator, space,
                                                          sweep_trace):
        """A failing store write must never abort the run that computed
        the entry — the store is an optimisation tier, not a dependency."""
        store = OracleStore(tmp_path / "store")
        snippet = sweep_trace[0]
        digest = persistent_entry_digest(snippet, space, ENERGY)
        # Occupy the shard's parent directory path with a plain file so
        # mkdir/mkstemp inside put() raises OSError.
        blocker = store.root / digest[:2]
        blocker.write_text("not a directory")
        cache = OracleCache(store=store)
        table = build_oracle(simulator, space, [snippet], ENERGY, cache=cache)
        assert snippet.name in table.entries
        assert store.write_errors == 1
        # The entry still landed in the memory tier.
        assert cache.lookup(snippet, space, ENERGY) is not None


class TestDefaultStoreAndDigests:
    def test_set_get_clear(self, tmp_path):
        assert get_default_oracle_store() is None
        installed = set_default_oracle_store(tmp_path / "store")
        assert isinstance(installed, OracleStore)
        assert get_default_oracle_store() is installed
        # A fresh cache adopts the default; an explicit store overrides it.
        assert OracleCache().store_backend is installed
        other = OracleStore(tmp_path / "other")
        assert OracleCache(store=other).store_backend is other
        assert set_default_oracle_store(None) is None
        assert get_default_oracle_store() is None
        assert OracleCache().store_backend is None

    def test_content_digest_is_stable_and_discriminating(self):
        assert content_digest(("a", 1.5)) == content_digest(("a", 1.5))
        assert content_digest(("a", 1.5)) != content_digest(("a", 1.5000001))
        assert content_digest("ab") != content_digest("a", "b")

    def test_default_space_digest_matches_space_key(self, space):
        from repro.core.oracle_store import code_fingerprint
        assert default_space_digest() == content_digest(space.cache_key(),
                                                        code_fingerprint())

    def test_shard_digest_embeds_code_fingerprint(self, space, sweep_trace,
                                                  monkeypatch):
        """Old-code stores must miss cleanly after a semantic code change."""
        import repro.core.oracle_store as store_module
        before = persistent_entry_digest(sweep_trace[0], space, ENERGY)
        monkeypatch.setattr(store_module, "_CODE_FINGERPRINT", "different-code")
        after = persistent_entry_digest(sweep_trace[0], space, ENERGY)
        assert before != after

    def test_parameterised_closures_do_not_alias(self):
        """Same bytecode, different closure cells -> different store keys."""
        def make(alpha):
            return ENERGY.__class__(
                name="weighted",
                cost=lambda result: result.energy_j + alpha * result.execution_time_s,
            )
        light = make(0.1)
        heavy = make(10.0)
        assert (persistent_objective_key(light)
                != persistent_objective_key(heavy))
        assert (persistent_objective_key(light)
                == persistent_objective_key(make(0.1)))

    def test_callable_object_costs_digest_instance_state(self):
        """Class-instance costs must not alias across parameterisations.

        There is no bytecode to identify an instance cost by, so the key
        digests the instance state (`__dict__`) and repr; two instances
        with different state can never share a shard digest.
        """
        class Weighted:
            def __init__(self, weight):
                self.weight = weight

            def __call__(self, result):
                return result.energy_j * self.weight

        light = ENERGY.__class__("weighted", Weighted(1.0))
        heavy = ENERGY.__class__("weighted", Weighted(2.0))
        assert (persistent_objective_key(light)
                != persistent_objective_key(heavy))

    def test_different_defaults_do_not_alias(self):
        def cost_a(result, weight=1.0):
            return result.energy_j * weight

        def cost_b(result, weight=2.0):
            return result.energy_j * weight
        cost_b.__qualname__ = cost_a.__qualname__
        cost_b.__name__ = cost_a.__name__
        key_a = persistent_objective_key(ENERGY.__class__("w", cost_a))
        key_b = persistent_objective_key(ENERGY.__class__("w", cost_b))
        assert key_a != key_b


class TestDeterminismWithStore:
    def test_framework_results_identical_with_and_without_store(self, tmp_path):
        from repro.experiments.common import build_trained_framework
        from repro.experiments.scales import TINY
        from repro.workloads.suites import unseen_workloads

        def run_once():
            framework = build_trained_framework(TINY, seed=0)
            policy = framework.build_online_il_policy(
                buffer_capacity=TINY.buffer_capacity,
                update_epochs=TINY.update_epochs,
            )
            run = framework.evaluate_policy(
                policy, unseen_workloads()[0].scaled(TINY.eval_snippet_factor)
            )
            return (run.total_energy_j, run.total_time_s, run.oracle_energy_j,
                    framework.oracle_cache.stats())

        baseline = run_once()
        set_default_oracle_store(tmp_path / "store")
        cold_store = run_once()   # populates the store
        warm_store = run_once()   # served from the store
        set_default_oracle_store(None)

        assert baseline[:3] == cold_store[:3] == warm_store[:3]
        # The cold run wrote everything; the warm run read it back.
        assert cold_store[3]["store_hits"] == 0
        assert warm_store[3]["store_hits"] > 0
        assert warm_store[3]["store_misses"] == 0


class TestStoreRetries:
    """Bounded retry-with-jitter over transient IO failures."""

    def _store_with_entry(self, tmp_path, simulator, space, sweep_trace,
                          **kwargs):
        seed_store = OracleStore(tmp_path / "store")
        build_oracle(simulator, space, sweep_trace[:1], ENERGY,
                     cache=OracleCache(store=seed_store))
        digest = persistent_entry_digest(sweep_trace[0], space, ENERGY)
        return OracleStore(tmp_path / "store", **kwargs), digest

    def test_transient_get_failure_heals(self, tmp_path, simulator, space,
                                         sweep_trace):
        failures = {"remaining": 2}

        def flaky(op, path):
            if op == "get" and failures["remaining"] > 0:
                failures["remaining"] -= 1
                raise OSError("transient mount hiccup")

        store, digest = self._store_with_entry(
            tmp_path, simulator, space, sweep_trace,
            max_retries=2, backoff_s=0.0, io_failure_hook=flaky,
        )
        entry = store.get(digest)
        assert entry is not None
        assert entry.snippet_name == sweep_trace[0].name
        assert store.retries == 2
        assert store.hits == 1 and store.misses == 0

    def test_exhausted_get_retries_degrade_to_miss(self, tmp_path, simulator,
                                                   space, sweep_trace):
        def always_fail(op, path):
            raise OSError("persistent failure")

        store, digest = self._store_with_entry(
            tmp_path, simulator, space, sweep_trace,
            max_retries=2, backoff_s=0.0, io_failure_hook=always_fail,
        )
        assert store.get(digest) is None
        assert store.misses == 1
        assert store.retries == 2  # bounded: never spins forever

    def test_exhausted_put_retries_degrade_to_memory_only(self, tmp_path,
                                                          simulator, space,
                                                          sweep_trace):
        def always_fail(op, path):
            raise OSError("read-only filesystem")

        store, digest = self._store_with_entry(
            tmp_path, simulator, space, sweep_trace,
            max_retries=1, backoff_s=0.0, io_failure_hook=always_fail,
        )
        healthy = OracleStore(tmp_path / "store")
        entry = healthy.get(digest)
        assert store.put(digest, entry) is False
        assert store.write_errors == 1
        assert store.retries == 1

    def test_missing_shard_is_a_clean_miss_without_retry(self, tmp_path):
        store = OracleStore(tmp_path / "store", max_retries=3)
        assert store.get("0" * 64) is None
        assert store.retries == 0  # FileNotFoundError never retries
        assert store.misses == 1

    def test_backoff_jitter_is_seeded(self, tmp_path):
        left = OracleStore(tmp_path / "a", backoff_s=0.01, jitter_seed=42)
        right = OracleStore(tmp_path / "b", backoff_s=0.01, jitter_seed=42)
        other = OracleStore(tmp_path / "c", backoff_s=0.01, jitter_seed=43)
        left_delays = [left._backoff_delay(i) for i in (1, 2, 3)]
        right_delays = [right._backoff_delay(i) for i in (1, 2, 3)]
        other_delays = [other._backoff_delay(i) for i in (1, 2, 3)]
        assert left_delays == right_delays
        assert left_delays != other_delays
        # Exponential envelope with jitter in [0.5, 1.5).
        for attempt, delay in zip((1, 2, 3), left_delays):
            base = 0.01 * 2 ** (attempt - 1)
            assert 0.5 * base <= delay < 1.5 * base

    def test_store_retries_surface_in_cache_stats(self, tmp_path, simulator,
                                                  space, sweep_trace):
        from repro.core.oracle import cache_stats_snapshot

        def flaky_once(op, path):
            if failures["remaining"] > 0:
                failures["remaining"] -= 1
                raise OSError("hiccup")

        failures = {"remaining": 1}
        store, digest = self._store_with_entry(
            tmp_path, simulator, space, sweep_trace,
            max_retries=1, backoff_s=0.0, io_failure_hook=flaky_once,
        )
        before = cache_stats_snapshot()["store_retries"]
        assert store.get(digest) is not None
        after = cache_stats_snapshot()["store_retries"]
        assert after - before == 1

    def test_invalid_retry_parameters_raise(self, tmp_path):
        with pytest.raises(ValueError, match="max_retries"):
            OracleStore(tmp_path / "store", max_retries=-1)
        with pytest.raises(ValueError, match="backoff_s"):
            OracleStore(tmp_path / "store", backoff_s=-0.1)
