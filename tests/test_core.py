"""Tests for the core framework: objectives, Oracle, offline IL, online IL, runner."""

import numpy as np
import pytest

from repro.control.policy import StaticPolicy
from repro.core import (
    ENERGY,
    EDP,
    PERFORMANCE,
    PPW,
    AggregationBuffer,
    OfflineILPolicy,
    OnlineILPolicy,
    OraclePolicy,
    RuntimeOracle,
    build_oracle,
    collect_il_dataset,
    run_policy_on_snippets,
)
from repro.core.objectives import get_objective
from repro.core.framework import OnlineLearningFramework
from repro.models.performance import CpuPerformanceModel
from repro.models.power import CpuPowerModel
from repro.workloads.generator import SnippetTraceGenerator
from repro.workloads.suites import get_workload, training_workloads


@pytest.fixture(scope="module")
def short_trace():
    generator = SnippetTraceGenerator(seed=0)
    return generator.generate(get_workload("fft").scaled(0.2))


@pytest.fixture(scope="module")
def oracle_table(trained_framework, short_trace):
    return build_oracle(trained_framework.simulator, trained_framework.space,
                        short_trace, ENERGY)


class TestObjectives:
    def test_lookup(self):
        assert get_objective("energy") is ENERGY
        assert get_objective("EDP") is EDP
        with pytest.raises(KeyError):
            get_objective("latency")

    def test_objective_values(self, simulator, space, compute_snippet):
        result = simulator.evaluate_expected(compute_snippet,
                                             space.default_configuration())
        assert ENERGY(result) == pytest.approx(result.energy_j)
        assert EDP(result) == pytest.approx(result.energy_delay_product)
        assert PERFORMANCE(result) == pytest.approx(result.execution_time_s)
        assert PPW(result) == pytest.approx(-result.performance_per_watt)


class TestOracle:
    def test_oracle_is_minimum_over_space(self, trained_framework, short_trace,
                                          oracle_table):
        framework = trained_framework
        snippet = short_trace[0]
        entry = oracle_table.entry(snippet)
        energies = [framework.simulator.evaluate_expected(snippet, config).energy_j
                    for config in framework.space]
        assert entry.best_cost == pytest.approx(min(energies))

    def test_oracle_policy_plays_back_table(self, trained_framework, short_trace,
                                            oracle_table):
        policy = OraclePolicy(trained_framework.space, oracle_table)
        run = run_policy_on_snippets(trained_framework.simulator,
                                     trained_framework.space, policy, short_trace,
                                     oracle_table=oracle_table)
        assert run.normalized_energy == pytest.approx(1.0, abs=0.03)
        accuracy = run.log.column("oracle_match")
        assert np.nanmean(accuracy) == pytest.approx(1.0)

    def test_oracle_beats_static_policies(self, trained_framework, short_trace,
                                          oracle_table):
        framework = trained_framework
        oracle_energy = oracle_table.total_cost(short_trace)
        for config in (framework.space[0], framework.space[len(framework.space) - 1]):
            static = StaticPolicy(framework.space, config)
            run = run_policy_on_snippets(framework.simulator, framework.space,
                                         static, short_trace)
            assert run.total_energy_j >= oracle_energy * 0.99

    def test_oracle_table_accessors(self, oracle_table, short_trace):
        assert len(oracle_table) == len(short_trace)
        assert short_trace[0].name in oracle_table
        assert oracle_table.storage_bytes() > 0
        with pytest.raises(KeyError):
            oracle_table.entry(SnippetTraceGenerator(seed=9).generate(
                get_workload("sha").scaled(0.1))[0])


class TestAggregationBuffer:
    def test_fill_and_drain_cycle(self):
        buffer = AggregationBuffer(capacity=3)
        assert not buffer.insert(np.zeros(4), 1)
        assert not buffer.insert(np.zeros(4), 2)
        assert buffer.insert(np.zeros(4), 3)
        features, labels = buffer.drain()
        assert features.shape == (3, 4)
        assert labels.tolist() == [1, 2, 3]
        assert len(buffer) == 0
        assert buffer.flush_count == 1
        assert buffer.total_inserted == 3

    def test_drain_empty_raises(self):
        with pytest.raises(RuntimeError):
            AggregationBuffer(capacity=2).drain()

    def test_peek_does_not_reset(self):
        buffer = AggregationBuffer(capacity=5)
        buffer.insert(np.ones(2), 0)
        features, labels = buffer.peek()
        assert features.shape == (1, 2)
        assert len(buffer) == 1

    def test_storage_stays_small(self):
        """The paper reports < 20 KB for a 100-entry buffer."""
        buffer = AggregationBuffer(capacity=100)
        buffer.insert(np.zeros(8), 0)
        assert buffer.storage_bytes() < 20 * 1024

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            AggregationBuffer(capacity=0)


class TestOfflineIL:
    def test_dataset_collection_shapes(self, trained_framework, short_trace):
        dataset = collect_il_dataset(trained_framework.simulator,
                                     trained_framework.space, short_trace)
        assert len(dataset) == len(short_trace) - 1
        assert dataset.features.shape[1] == 8
        assert dataset.labels.min() >= 0
        assert dataset.labels.max() < len(trained_framework.space)

    def test_dataset_requires_two_snippets(self, trained_framework, short_trace):
        with pytest.raises(ValueError):
            collect_il_dataset(trained_framework.simulator, trained_framework.space,
                               short_trace[:1])

    def test_offline_policy_fits_training_data(self, trained_framework):
        assert trained_framework.offline_policy.accuracy_on(
            trained_framework.offline_dataset) > 0.5

    def test_offline_policy_near_oracle_on_training_app(self, trained_framework):
        run = trained_framework.evaluate_policy(
            trained_framework.offline_policy, get_workload("fft").scaled(0.2))
        assert run.normalized_energy < 1.10

    def test_offline_policy_decide_requires_training(self, space):
        policy = OfflineILPolicy(space)
        assert policy.decide(None) == space.default_configuration()
        with pytest.raises(RuntimeError):
            policy.predict_index(None)  # type: ignore[arg-type]

    def test_tree_policy_variant(self, trained_framework):
        policy = OfflineILPolicy(trained_framework.space, model="tree")
        policy.train(trained_framework.offline_dataset)
        assert policy.accuracy_on(trained_framework.offline_dataset) > 0.5

    def test_invalid_model_spec(self, space):
        with pytest.raises(ValueError):
            OfflineILPolicy(space, model="svm")

    def test_dataset_merge(self, trained_framework):
        dataset = trained_framework.offline_dataset
        merged = dataset.merge(dataset)
        assert len(merged) == 2 * len(dataset)


class TestRuntimeOracle:
    def test_labels_are_near_optimal_after_warmup(self, trained_framework, short_trace,
                                                  oracle_table):
        framework = trained_framework
        runtime_oracle = RuntimeOracle(framework.space, framework.power_model,
                                       framework.performance_model,
                                       neighborhood_radius=2)
        current = framework.space.default_configuration()
        hits = 0
        for snippet in short_trace:
            result = framework.simulator.run_snippet(snippet, current)
            runtime_oracle.update_models(result.counters, current)
            best, estimate = runtime_oracle.best_configuration(result.counters, current)
            achieved = framework.simulator.evaluate_expected(snippet, best).energy_j
            neighborhood = framework.space.neighbors(current, radius=2)
            neighborhood_best = min(
                framework.simulator.evaluate_expected(snippet, c).energy_j
                for c in neighborhood)
            if achieved <= neighborhood_best * 1.05:
                hits += 1
            assert estimate.predicted_energy_j > 0
            current = best
        assert hits / len(short_trace) > 0.7

    def test_neighborhood_radius_validation(self, trained_framework):
        with pytest.raises(ValueError):
            RuntimeOracle(trained_framework.space, trained_framework.power_model,
                          trained_framework.performance_model, neighborhood_radius=0)
        with pytest.raises(ValueError):
            RuntimeOracle(trained_framework.space, trained_framework.power_model,
                          trained_framework.performance_model, metric="speed")


class TestOnlineIL:
    def test_requires_mlp_policy(self, trained_framework):
        tree_policy = OfflineILPolicy(trained_framework.space, model="tree")
        tree_policy.train(trained_framework.offline_dataset)
        runtime_oracle = RuntimeOracle(trained_framework.space,
                                       trained_framework.power_model,
                                       trained_framework.performance_model)
        with pytest.raises(TypeError):
            OnlineILPolicy(trained_framework.space, tree_policy, runtime_oracle)

    def test_adapts_to_unseen_memory_bound_app(self, trained_framework):
        framework = trained_framework
        online = framework.build_online_il_policy(buffer_capacity=8, update_epochs=40)
        workload = get_workload("kmeans").scaled(0.8)
        run = framework.evaluate_policy(online, workload)
        assert online.n_policy_updates >= 1
        assert online.n_supervision_labels > 0
        assert run.normalized_energy < 1.15
        diag = online.diagnostics()
        assert diag["buffer_capacity"] == 8
        assert diag["policy_parameters"] > 0

    def test_online_il_not_worse_than_offline_on_unseen_suite(self, trained_framework):
        framework = trained_framework
        workload = get_workload("blackscholes-4t").scaled(0.8)
        offline_run = framework.evaluate_policy(framework.offline_policy, workload)
        online = framework.build_online_il_policy(buffer_capacity=8, update_epochs=40)
        online_run = framework.evaluate_policy(online, workload)
        assert online_run.normalized_energy <= offline_run.normalized_energy + 0.02


class TestFrameworkRunner:
    def test_run_result_fields(self, trained_framework, short_trace, oracle_table):
        run = run_policy_on_snippets(trained_framework.simulator,
                                     trained_framework.space,
                                     StaticPolicy(trained_framework.space),
                                     short_trace, oracle_table=oracle_table)
        assert len(run.log) == len(short_trace)
        assert run.total_time_s > 0
        assert run.time_axis_s().shape == (len(short_trace),)
        assert run.accuracy_series().shape == (len(short_trace),)
        assert 0.0 <= run.final_accuracy() <= 100.0
        assert "fft" in run.per_application_energy()

    def test_normalized_energy_requires_oracle(self, trained_framework, short_trace):
        run = run_policy_on_snippets(trained_framework.simulator,
                                     trained_framework.space,
                                     StaticPolicy(trained_framework.space),
                                     short_trace)
        with pytest.raises(ValueError):
            _ = run.normalized_energy
        with pytest.raises(ValueError):
            run.accuracy_series()

    def test_framework_requires_offline_training_before_online_policy(self):
        framework = OnlineLearningFramework(seed=3)
        with pytest.raises(RuntimeError):
            framework.build_online_il_policy()

    def test_rl_offline_training_episodes(self, trained_framework):
        policy = trained_framework.build_rl_policy()
        trained_framework.train_rl_offline(
            policy, [training_workloads()[0].scaled(0.1)], episodes=1)
        assert policy.n_updates > 0

    def test_oracle_policy_builder(self, trained_framework, short_trace):
        policy = trained_framework.build_oracle_policy(short_trace)
        run = trained_framework.evaluate_policy_on_snippets(policy, short_trace)
        assert run.normalized_energy == pytest.approx(1.0, abs=0.03)


class TestAccuracySeriesEdgeCases:
    """PolicyRunResult.accuracy_series / final_accuracy corner cases."""

    @staticmethod
    def _result_with_matches(matches):
        """A PolicyRunResult whose log carries the given oracle_match
        column (``None`` entries are steps missing from the Oracle table)."""
        from repro.core.framework import PolicyRunResult
        from repro.soc.energy import EnergyAccount
        from repro.utils.records import RunLog

        log = RunLog()
        for step, match in enumerate(matches):
            record = {"energy_j": 1.0, "time_s": 0.5, "power_w": 2.0}
            if match is not None:
                record["oracle_match"] = float(match)
            log.append(step, **record)
        return PolicyRunResult(policy_name="stub", log=log,
                               account=EnergyAccount())

    def test_empty_run_raises(self):
        run = self._result_with_matches([])
        with pytest.raises(ValueError, match="empty"):
            run.accuracy_series()
        with pytest.raises(ValueError, match="empty"):
            run.final_accuracy()

    def test_window_longer_than_run(self):
        run = self._result_with_matches([1.0, 0.0, 1.0])
        series = run.accuracy_series(window=100)
        # Head windows shrink: element i averages every match up to i.
        np.testing.assert_allclose(series, [100.0, 50.0, 200.0 / 3.0])
        assert run.final_accuracy(window=100) == pytest.approx(200.0 / 3.0)

    def test_all_nan_prefix_yields_leading_nans(self):
        """Steps missing from the Oracle table (e.g. a cold-start prefix)
        are excluded from the windows instead of poisoning them."""
        run = self._result_with_matches([None, None, 1.0, 0.0])
        series = run.accuracy_series(window=2)
        assert np.isnan(series[0]) and np.isnan(series[1])
        assert series[2] == 100.0
        assert series[3] == 50.0
        # final_accuracy reads the last window, which has real matches.
        assert run.final_accuracy(window=2) == 50.0

    def test_all_missing_matches_still_raises(self):
        run = self._result_with_matches([None, None])
        with pytest.raises(ValueError, match="Oracle"):
            run.accuracy_series()
