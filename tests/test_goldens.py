"""Golden-trace regression tests for every registered experiment driver.

Each registered experiment runs at TINY scale with seed 0 through the same
registry path the CLI uses; its result object is converted to a stable
JSON-compatible summary and compared against the committed golden under
``tests/goldens/``.  The scenario engine additionally gets a per-scenario
golden of the transformed traces themselves.

Regenerating goldens (after an intentional behaviour change)::

    REPRO_REGEN_GOLDENS=1 python -m pytest tests/test_goldens.py -q
    # or
    python -m pytest tests/test_goldens.py -q --regen-goldens

See ``tests/README.md`` for when regeneration is appropriate.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.runner import (
    ExperimentContext,
    available_experiments,
    get_experiment,
)
from repro.experiments.scales import TINY
from repro.scenarios import available_scenarios, get_scenario
from repro.workloads.sequences import build_online_sequence
from repro.workloads.suites import unseen_workloads

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Relative tolerance for float comparison.  Results are bitwise
#: reproducible on one machine; the tolerance only absorbs benign
#: last-digit drift across BLAS builds.  Anything larger means behaviour
#: changed and the golden must be regenerated deliberately.
REL_TOL = 1e-9
ABS_TOL = 1e-12


def _regen(request) -> bool:
    if os.environ.get("REPRO_REGEN_GOLDENS") == "1":
        return True
    return bool(request.config.getoption("--regen-goldens"))


# --------------------------------------------------------------------- #
# Result object -> JSON-compatible summary
# --------------------------------------------------------------------- #
def to_jsonable(obj):
    """Recursively convert a result object into JSON-compatible data.

    Dataclasses become dicts tagged with their type name, numpy values
    become plain Python numbers/lists, and anything non-serializable (a
    framework, a policy, a simulator held by a result) is reduced to an
    opaque type marker so goldens stay small and stable.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return to_jsonable(obj.tolist())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__dataclass__": type(obj).__name__}
        for field in dataclasses.fields(obj):
            out[field.name] = to_jsonable(getattr(obj, field.name))
        return out
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(item) for item in obj]
    return {"__opaque__": type(obj).__name__}


def assert_matches(expected, actual, path="$"):
    """Recursive comparison with float tolerance and precise diagnostics."""
    if isinstance(expected, float) or isinstance(actual, float):
        assert isinstance(actual, (int, float)) and isinstance(
            expected, (int, float)
        ), f"{path}: type mismatch ({type(expected).__name__} vs "\
           f"{type(actual).__name__})"
        both_nan = (isinstance(expected, float) and math.isnan(expected)
                    and isinstance(actual, float) and math.isnan(actual))
        assert both_nan or math.isclose(
            float(expected), float(actual), rel_tol=REL_TOL, abs_tol=ABS_TOL
        ), f"{path}: {expected!r} != {actual!r}"
        return
    assert type(expected) is type(actual), (
        f"{path}: type mismatch ({type(expected).__name__} vs "
        f"{type(actual).__name__})"
    )
    if isinstance(expected, dict):
        assert expected.keys() == actual.keys(), (
            f"{path}: keys differ (missing {sorted(expected.keys() - actual.keys())}, "
            f"extra {sorted(actual.keys() - expected.keys())})"
        )
        for key in expected:
            assert_matches(expected[key], actual[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert len(expected) == len(actual), (
            f"{path}: length {len(expected)} != {len(actual)}"
        )
        for i, (exp, act) in enumerate(zip(expected, actual)):
            assert_matches(exp, act, f"{path}[{i}]")
    else:
        assert expected == actual, f"{path}: {expected!r} != {actual!r}"


def check_golden(name: str, summary, request) -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    golden_path = GOLDEN_DIR / f"{name}.json"
    if _regen(request):
        golden_path.write_text(
            json.dumps(summary, indent=1, sort_keys=True) + "\n"
        )
    if not golden_path.exists():
        pytest.fail(
            f"golden {golden_path} is missing; generate it with "
            "REPRO_REGEN_GOLDENS=1 python -m pytest tests/test_goldens.py"
        )
    expected = json.loads(golden_path.read_text())
    assert_matches(expected, summary, path=name)


# --------------------------------------------------------------------- #
# Experiment goldens
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def golden_context():
    """One shared context so figure3/figure4 reuse the adaptation study."""
    return ExperimentContext()


@pytest.mark.parametrize("name", available_experiments())
def test_experiment_golden(name, golden_context, request):
    spec = get_experiment(name)
    result = spec.runner(TINY, 0, golden_context)
    # Formatting must also succeed on the golden result (CLI path).
    assert isinstance(spec.format_result(result), str)
    check_golden(name, to_jsonable(result), request)


# --------------------------------------------------------------------- #
# Scenario-trace goldens (one digest per registered scenario)
# --------------------------------------------------------------------- #
def _trace_digest(trace) -> dict:
    chars = np.array(
        [list(s.characteristics.as_dict().values()) for s in trace.snippets]
    )
    return {
        "scenario": trace.scenario_name,
        "n_snippets": len(trace),
        "snippet_names": [s.name for s in trace.snippets],
        "characteristics_sum": to_jsonable(chars.sum(axis=0)),
        "throttle_events": [
            {"start": e.start, "stop": e.stop, "max_opp_index": e.max_opp_index}
            for e in trace.throttle_events
        ],
        "throttled_steps": trace.throttled_steps(),
    }


@pytest.mark.parametrize("scenario_name", available_scenarios())
def test_scenario_trace_golden(scenario_name, request):
    base = build_online_sequence(
        specs=unseen_workloads(),
        snippet_factor=TINY.sequence_snippet_factor,
        seed=0,
    )
    trace = get_scenario(scenario_name).apply(base.snippets, 123)
    check_golden(f"scenario_{scenario_name}", _trace_digest(trace), request)
