"""Integration tests: every experiment driver runs and reproduces the paper's shape."""

import numpy as np
import pytest

from repro.control.policy import StaticPolicy
from repro.core.framework import run_policy_on_snippets

from repro.experiments import (
    format_figure2,
    format_figure3,
    format_figure4,
    format_figure5,
    format_table1,
    format_table2,
    run_figure2,
    run_figure5,
    run_table1,
    run_table2,
)
from repro.experiments.ablations import (
    run_buffer_size_ablation,
    run_config_space_ablation,
    run_explicit_nmpc_ablation,
    run_forgetting_factor_ablation,
    run_noc_model_comparison,
)
from repro.experiments.common import run_online_adaptation_study
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.scales import TINY


@pytest.fixture(scope="module")
def adaptation_study():
    return run_online_adaptation_study(TINY, seed=0)


class TestTable1:
    def test_schema_covers_paper_counters(self):
        result = run_table1()
        assert result.covered
        assert len(result.rows) == 9
        assert "Table I" in format_table1(result)


class TestTable2:
    def test_generalization_shape(self):
        result = run_table2(TINY, seed=0)
        # Training suite stays close to the Oracle...
        assert result.suite_mean("Mi-Bench") < 1.12
        # ...while the unseen suites are clearly worse (the paper's gap).
        assert result.suite_mean("PARSEC") > result.suite_mean("Mi-Bench")
        assert result.generalization_gap > 0.0
        assert all(v >= 0.99 for v in result.normalized_energy.values())
        text = format_table2(result)
        assert "Blkschls4T" in text


class TestFigure2:
    def test_prediction_error_within_bound(self):
        result = run_figure2(TINY, seed=0)
        assert result.n_frames() == TINY.gpu_frames
        assert result.error_percent() < 10.0
        assert len(result.predicted_ms) == len(result.measured_ms)
        assert "Nenamark2" in format_figure2(result)


class TestFigure3:
    def test_online_il_converges_and_rl_does_not(self, adaptation_study):
        result = run_figure3(TINY, study=adaptation_study)
        # Online IL ends near the Oracle decisions; RL stays clearly below.
        late = slice(int(len(result.online_il_near_optimal) * 0.7), None)
        il_late = float(np.mean(result.online_il_near_optimal[late]))
        rl_late = float(np.mean(result.rl_near_optimal[late]))
        assert il_late > 60.0
        assert il_late > rl_late + 15.0
        assert result.time_axis_s[-1] > result.time_axis_s[0]
        assert "Figure 3" in format_figure3(result)

    def test_convergence_fraction_bounded(self, adaptation_study):
        result = run_figure3(TINY, study=adaptation_study)
        assert 0.0 <= result.convergence_fraction(threshold=60.0) <= 1.0


class TestFigure4:
    def test_energy_shape(self, adaptation_study):
        result = run_figure4(TINY, study=adaptation_study)
        assert len(result.applications()) == 16
        # Online-IL stays close to the Oracle on average; RL is clearly worse.
        assert result.mean("il") < 1.10
        assert result.mean("rl") > result.mean("il")
        assert result.worst("rl") > 1.05
        text = format_figure4(result)
        assert "blackscholes-4t" in text


class TestFigure5:
    def test_enmpc_saves_energy_with_small_overhead(self):
        result = run_figure5(TINY, seed=0,
                             benchmarks=["angrybirds", "epiccitadel", "vendettamark"])
        assert len(result.per_benchmark) == 3
        for row in result.per_benchmark:
            assert row.gpu_savings_percent > 0.0
            assert row.pkg_savings_percent <= row.gpu_savings_percent + 1.0
            assert row.fps_overhead_percent < 8.0
        assert result.average("gpu_savings_percent") > 5.0
        assert "Figure 5" in format_figure5(result)


class TestOnlineAdaptationStudy:
    def test_per_app_normalized_without_oracle_returns_empty(self,
                                                             adaptation_study):
        """Records without oracle_energy_j must not crash or produce NaN."""
        framework = adaptation_study.framework
        snippets = adaptation_study.sequence.snippets[:6]
        run = run_policy_on_snippets(framework.simulator, framework.space,
                                     StaticPolicy(framework.space), snippets)
        assert adaptation_study.online_per_app_normalized(run) == {}

    def test_per_app_normalized_with_partial_oracle_coverage(self,
                                                             adaptation_study):
        """Apps missing from the Oracle table are dropped, not NaN'd."""
        framework = adaptation_study.framework
        snippets = adaptation_study.sequence.snippets[:8]
        partial_table = framework.build_oracle_for(snippets[:3])
        run = run_policy_on_snippets(framework.simulator, framework.space,
                                     StaticPolicy(framework.space), snippets,
                                     oracle_table=partial_table)
        normalized = adaptation_study.online_per_app_normalized(run)
        covered_apps = {s.application for s in snippets[:3]}
        assert set(normalized) <= covered_apps
        assert normalized, "covered applications should survive the guard"
        for value in normalized.values():
            assert np.isfinite(value) and value > 0.0


class TestAblations:
    def test_buffer_size_ablation_runs(self):
        rows = run_buffer_size_ablation(buffer_sizes=(5, 20), scale=TINY, seed=0)
        assert len(rows) == 2
        assert rows[0].policy_updates >= rows[1].policy_updates
        assert all(r.storage_bytes < 20 * 1024 for r in rows)

    def test_forgetting_factor_ablation(self):
        rows = run_forgetting_factor_ablation(factors=(0.9, 0.99), scale=TINY,
                                              seed=0, include_adaptive=True)
        assert len(rows) == 3
        assert all(r.error_percent > 0 for r in rows)

    def test_explicit_nmpc_ablation(self):
        rows = run_explicit_nmpc_ablation(scale=TINY, seed=0)
        names = {r.model_name for r in rows}
        assert names == {"decision-tree", "linear", "knn"}
        tree = next(r for r in rows if r.model_name == "decision-tree")
        linear = next(r for r in rows if r.model_name == "linear")
        assert tree.surface_disagreement <= linear.surface_disagreement + 0.05

    def test_config_space_ablation(self):
        rows = run_config_space_ablation(scale=TINY, seed=0)
        assert len(rows) == 2
        assert rows[1].n_configurations > rows[0].n_configurations

    def test_noc_model_comparison(self):
        result = run_noc_model_comparison(mesh_width=3,
                                          train_rates=(0.02, 0.05, 0.08, 0.11),
                                          test_rates=(0.04, 0.09), n_cycles=150,
                                          seed=0)
        assert result.n_train == 4 and result.n_test == 2
        assert result.svr_mape_percent > 0


class TestRunnerOracleStore:
    """The on-disk Oracle store through the experiment runner and CLI."""

    @pytest.fixture(autouse=True)
    def isolated_default_store(self):
        from repro.core.oracle_store import (
            get_default_oracle_store,
            set_default_oracle_store,
        )
        previous = get_default_oracle_store()
        set_default_oracle_store(None)
        yield
        set_default_oracle_store(previous)

    def _summaries(self, run):
        from tests.test_goldens import to_jsonable
        return [to_jsonable(seed_run.result) for seed_run in run.seed_runs]

    def test_results_identical_with_store_cold_and_warm(self, tmp_path):
        from repro.experiments.runner import ExperimentRunner

        with ExperimentRunner(scale=TINY, seeds=(0,)) as plain:
            baseline = self._summaries(plain.run("table2"))
        from repro.core.oracle_store import set_default_oracle_store
        set_default_oracle_store(None)
        with ExperimentRunner(scale=TINY, seeds=(0,),
                              oracle_store=tmp_path / "store") as cold:
            cold_run = cold.run("table2")
        set_default_oracle_store(None)
        with ExperimentRunner(scale=TINY, seeds=(0,),
                              oracle_store=tmp_path / "store") as warm:
            warm_run = warm.run("table2")
        assert baseline == self._summaries(cold_run)
        assert baseline == self._summaries(warm_run)
        # The warm invocation served the design-time sweep from disk.
        warm_meta = warm_run.seed_runs[0].metadata
        assert warm_meta["oracle_cache_store_hits"] > 0
        assert warm_run.spec.uses_design_oracle

    def test_parallel_fanout_shares_store(self, tmp_path):
        from repro.experiments.runner import ExperimentRunner

        seeds = (0, 1)
        with ExperimentRunner(scale=TINY, seeds=seeds) as plain:
            baseline = self._summaries(plain.run("table2"))
        from repro.core.oracle_store import set_default_oracle_store
        set_default_oracle_store(None)
        with ExperimentRunner(scale=TINY, seeds=seeds, jobs=2,
                              oracle_store=tmp_path / "store") as parallel:
            parallel_run = parallel.run("table2")
        assert baseline == self._summaries(parallel_run)
        # Workers found the parent-warmed design-oracle entries on disk.
        for seed_run in parallel_run.seed_runs:
            assert seed_run.metadata["oracle_cache_store_hits"] > 0

    def test_warm_design_oracle_populates_store_and_is_idempotent(self,
                                                                  tmp_path):
        from repro.experiments.runner import ExperimentRunner

        with ExperimentRunner(scale=TINY, seeds=(0,),
                              oracle_store=tmp_path / "store") as runner:
            assert runner.warm_design_oracle(TINY, (0,)) == 1
            populated = len(runner.oracle_store)
            assert populated > 0
            assert runner.warm_design_oracle(TINY, (0,)) == 0
            assert len(runner.oracle_store) == populated
            # The core-gated variant is a separate (bigger) sweep.
            assert runner.warm_design_oracle(
                TINY, (0,), gating_variants=(False, True)) == 1
            assert len(runner.oracle_store) > populated
        with ExperimentRunner(scale=TINY, seeds=(0,)) as storeless:
            assert storeless.warm_design_oracle(TINY, (0,)) == 0

    def test_config_space_ablation_warms_both_gating_variants(self):
        from repro.experiments.runner import get_experiment

        spec = get_experiment("ablation-config-space")
        assert spec.uses_design_oracle
        assert spec.design_oracle_gating == (False, True)

    def test_close_releases_default_store(self, tmp_path):
        from repro.core.oracle_store import get_default_oracle_store
        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner(scale=TINY, seeds=(0,),
                                  oracle_store=tmp_path / "store")
        assert get_default_oracle_store() is runner.oracle_store
        runner.close()
        assert get_default_oracle_store() is None
        # A reused runner reinstalls its store for the runs it executes.
        run = runner.run("table1")
        assert len(run.seed_runs) == 1
        assert get_default_oracle_store() is runner.oracle_store
        runner.close()
        assert get_default_oracle_store() is None

    def test_cli_oracle_store_flag(self, tmp_path, capsys):
        from repro.experiments.runner import main

        store_dir = tmp_path / "cli-store"
        assert main(["table1", "--scale", "tiny",
                     "--oracle-store", str(store_dir)]) == 0
        assert store_dir.is_dir()
        assert "table1" in capsys.readouterr().out

    def test_seed_run_metadata_reports_cache_counters(self):
        from repro.experiments.runner import ExperimentRunner

        with ExperimentRunner(scale=TINY, seeds=(0,)) as runner:
            run = runner.run("table2")
        metadata = run.seed_runs[0].metadata
        for key in ("oracle_cache_hits", "oracle_cache_misses",
                    "oracle_cache_store_hits", "oracle_cache_store_misses"):
            assert key in metadata
        assert metadata["oracle_cache_misses"] > 0
        assert "oracle cache:" in run.format()


class TestCLIListing:
    def test_list_json_is_machine_readable(self, capsys):
        import json

        from repro.experiments.runner import available_experiments, main

        assert main(["--list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in payload["experiments"]]
        assert names == available_experiments()
        assert "fleet" in names
        for entry in payload["experiments"]:
            assert set(entry) == {"name", "description", "tags"}
            assert entry["description"]
        assert "tiny" in payload["scales"]
        assert payload["scenarios"]

    def test_json_without_list_is_an_error(self, capsys):
        from repro.experiments.runner import main

        assert main(["--json"]) == 2
        assert "--json requires --list" in capsys.readouterr().err

    def test_plain_list_mentions_fleet(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fleet" in out
        assert "Scales:" in out

    def test_devices_flag_requires_fleet_experiment(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "--scale", "tiny", "--devices", "4"]) == 2
        assert "--devices has no effect" in capsys.readouterr().err

    def test_cli_fleet_devices_flag(self, capsys):
        from repro.experiments.runner import main

        assert main(["fleet", "--scale", "tiny", "--devices", "2"]) == 0
        out = capsys.readouterr().out
        assert "fleet of 2 devices" in out
