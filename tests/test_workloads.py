"""Tests for the workload specifications, generators, suites and sequences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.soc.snippet import SnippetCharacteristics
from repro.workloads import (
    ALL_CPU_APPS,
    CORTEX_APPS,
    GRAPHICS_APPS,
    MIBENCH_APPS,
    PARSEC_APPS,
    SnippetTraceGenerator,
    WorkloadPhase,
    WorkloadSpec,
    build_online_sequence,
    figure4_workloads,
    get_graphics_workload,
    get_workload,
    table2_workloads,
    workloads_by_suite,
)
from repro.workloads.spec import single_phase_workload
from repro.workloads.suites import training_workloads, unseen_workloads


class TestWorkloadSpec:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            WorkloadPhase(SnippetCharacteristics(), n_snippets=0)
        with pytest.raises(ValueError):
            WorkloadPhase(SnippetCharacteristics(), jitter=-0.1)

    def test_spec_requires_phases(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", suite="test", phases=())

    def test_n_snippets_and_total_instructions(self):
        spec = single_phase_workload("x", "test", SnippetCharacteristics(),
                                     n_snippets=7, snippet_instructions=1e6)
        assert spec.n_snippets == 7
        assert spec.total_instructions == pytest.approx(7e6)

    def test_scaled_changes_length_not_characteristics(self):
        spec = single_phase_workload("x", "test", SnippetCharacteristics(),
                                     n_snippets=20)
        shorter = spec.scaled(0.25)
        assert shorter.n_snippets == 5
        assert shorter.name == spec.name
        with pytest.raises(ValueError):
            spec.scaled(0.0)

    def test_scaled_never_drops_to_zero(self):
        spec = single_phase_workload("x", "test", SnippetCharacteristics(),
                                     n_snippets=3)
        assert spec.scaled(0.01).n_snippets >= 1

    def test_mean_characteristics_weighted(self):
        light = SnippetCharacteristics(memory_intensity=1.0)
        heavy = SnippetCharacteristics(memory_intensity=9.0)
        spec = WorkloadSpec(
            name="two-phase", suite="test",
            phases=(WorkloadPhase(light, n_snippets=3),
                    WorkloadPhase(heavy, n_snippets=1)),
        )
        assert spec.mean_characteristics().memory_intensity == pytest.approx(3.0)


class TestTraceGenerator:
    def test_generates_requested_length(self):
        generator = SnippetTraceGenerator(seed=0)
        spec = get_workload("fft")
        trace = generator.generate(spec)
        assert len(trace) == spec.n_snippets
        assert all(s.application == "fft" for s in trace)
        assert [s.index for s in trace] == list(range(len(trace)))

    def test_deterministic_given_seed(self):
        spec = get_workload("qsort")
        trace_a = SnippetTraceGenerator(seed=5).generate(spec)
        trace_b = SnippetTraceGenerator(seed=5).generate(spec)
        assert all(
            a.characteristics.memory_intensity == b.characteristics.memory_intensity
            for a, b in zip(trace_a, trace_b)
        )

    def test_jitter_stays_near_mean(self):
        spec = get_workload("kmeans")
        trace = SnippetTraceGenerator(seed=1).generate(spec)
        mean_mpki = np.mean([s.characteristics.memory_intensity for s in trace])
        assert mean_mpki == pytest.approx(
            spec.mean_characteristics().memory_intensity, rel=0.2)

    def test_generate_many_concatenates(self):
        generator = SnippetTraceGenerator(seed=0)
        specs = [get_workload("fft").scaled(0.2), get_workload("sha").scaled(0.2)]
        trace = generator.generate_many(specs)
        assert len(trace) == sum(s.n_snippets for s in specs)
        assert trace[0].application == "fft"
        assert trace[-1].application == "sha"

    @settings(max_examples=20, deadline=None)
    @given(jitter=st.floats(min_value=0.0, max_value=0.3))
    def test_generated_characteristics_always_valid(self, jitter):
        spec = single_phase_workload(
            "prop", "test",
            SnippetCharacteristics(memory_intensity=5.0, memory_access_rate=0.5),
            n_snippets=5, jitter=jitter,
        )
        for snippet in SnippetTraceGenerator(seed=0).generate(spec):
            chars = snippet.characteristics
            assert 0.0 <= chars.memory_access_rate <= 1.0
            assert chars.memory_intensity >= 0.0
            assert 0.0 < chars.ilp_factor <= 1.0


class TestSuites:
    def test_suite_membership_counts(self):
        assert len(MIBENCH_APPS) == 10
        assert len(CORTEX_APPS) == 4
        assert len(PARSEC_APPS) == 2
        assert len(ALL_CPU_APPS) == 16

    def test_figure4_order_covers_all_apps(self):
        assert len(figure4_workloads()) == 16
        assert {w.name for w in figure4_workloads()} == set(ALL_CPU_APPS)

    def test_table2_workloads(self):
        names = [w.name for w in table2_workloads()]
        assert "bml" in names and "blackscholes-4t" in names
        assert len(names) == 9

    def test_get_workload_case_insensitive_and_errors(self):
        assert get_workload("KMEANS").name == "kmeans"
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_workloads_by_suite(self):
        assert {w.suite for w in workloads_by_suite("cortex")} == {"cortex"}
        with pytest.raises(KeyError):
            workloads_by_suite("spec2006")

    def test_training_and_unseen_partition(self):
        train = {w.name for w in training_workloads()}
        unseen = {w.name for w in unseen_workloads()}
        assert train.isdisjoint(unseen)
        assert train | unseen == set(ALL_CPU_APPS)

    def test_suite_distribution_shift(self):
        """Cortex apps are markedly more memory intensive than Mi-Bench apps."""
        mibench_mpki = np.mean([w.mean_characteristics().memory_intensity
                                for w in MIBENCH_APPS.values()])
        cortex_mpki = np.mean([w.mean_characteristics().memory_intensity
                               for w in CORTEX_APPS.values()])
        assert cortex_mpki > 2.0 * mibench_mpki

    def test_parsec_apps_are_multithreaded(self):
        assert all(w.mean_characteristics().thread_count > 1
                   for w in PARSEC_APPS.values())


class TestSequences:
    def test_default_sequence_covers_unseen_apps(self):
        sequence = build_online_sequence(snippet_factor=0.5, seed=0)
        apps = sequence.applications()
        assert set(apps) == {w.name for w in unseen_workloads()}
        assert len(sequence) == sum(
            w.scaled(0.5).n_snippets for w in unseen_workloads())

    def test_boundaries_recorded(self):
        sequence = build_online_sequence(snippet_factor=0.5, seed=0)
        assert sequence.boundaries[sequence.applications()[0]] == 0

    def test_application_slice(self):
        sequence = build_online_sequence(snippet_factor=0.5, seed=0)
        app = sequence.applications()[0]
        assert all(s.application == app for s in sequence.application_slice(app))


class TestGraphicsWorkloads:
    def test_ten_figure5_benchmarks(self):
        assert len(GRAPHICS_APPS) == 10

    def test_trace_generation_scales_with_load(self):
        light = get_graphics_workload("angrybirds", n_frames=100, seed=0)
        heavy = get_graphics_workload("gfxbench-trex", n_frames=100, seed=0)
        assert heavy.mean_work_cycles() > 2.0 * light.mean_work_cycles()
        assert len(light) == 100

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            get_graphics_workload("crysis")

    def test_nenamark_trace_available(self):
        trace = get_graphics_workload("nenamark2", n_frames=50, seed=0)
        assert trace.target_fps == 60.0
        assert trace.deadline_s == pytest.approx(1.0 / 60.0)

    def test_trace_deterministic_for_seed(self):
        a = get_graphics_workload("sharkdash", n_frames=30, seed=7)
        b = get_graphics_workload("sharkdash", n_frames=30, seed=7)
        assert [f.work_cycles for f in a.frames] == [f.work_cycles for f in b.frames]
