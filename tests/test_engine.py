"""Tests for the unified simulation-engine layer.

Covers the :class:`~repro.core.engine.SimulationEngine` protocol across the
SoC/GPU/NoC simulators, batch-vs-scalar Oracle sweep parity (bitwise), the
:class:`~repro.core.oracle.OracleCache` hit/invalidation behaviour, the scale
registry, and the experiment registry / runner / CLI round-trips.
"""

import numpy as np
import pytest

from repro.core.engine import SimulationEngine, available_engines, engine_class
from repro.core.objectives import ALL_OBJECTIVES, ENERGY, Objective
from repro.core.oracle import OracleCache, build_oracle
from repro.experiments.runner import (
    ExperimentRunner,
    available_experiments,
    get_experiment,
    main,
    register_experiment,
)
from repro.experiments.scales import (
    BENCH,
    FULL,
    QUICK,
    TINY,
    ExperimentScale,
    available_scales,
    get_scale,
    register_scale,
)
from repro.gpu.gpu import GPUConfiguration, default_integrated_gpu
from repro.gpu.simulator import GPUSimulator
from repro.noc.router import RouterConfig
from repro.noc.simulator import NoCSimulator
from repro.noc.topology import MeshTopology
from repro.noc.traffic import UniformRandomTraffic
from repro.workloads.generator import SnippetTraceGenerator
from repro.workloads.graphics import get_graphics_workload
from repro.workloads.suites import get_workload


@pytest.fixture(scope="module")
def sweep_trace():
    generator = SnippetTraceGenerator(seed=7)
    return generator.generate(get_workload("kmeans").scaled(0.3))


class TestEngineProtocol:
    def test_all_simulators_satisfy_protocol(self, simulator):
        gpu = GPUSimulator(default_integrated_gpu(), seed=0)
        noc = NoCSimulator(MeshTopology(2, 2))
        for engine in (simulator, gpu, noc):
            assert isinstance(engine, SimulationEngine)
        assert {simulator.engine_name, gpu.engine_name, noc.engine_name} == {
            "soc", "gpu", "noc",
        }

    def test_registry_enumerates_and_resolves(self, simulator):
        names = available_engines()
        assert names == ["gpu", "noc", "soc"]
        for name in names:
            cls = engine_class(name)
            assert cls.engine_name == name
        assert isinstance(simulator, engine_class("soc"))
        with pytest.raises(KeyError):
            engine_class("quantum")

    def test_gpu_batch_sweep(self):
        gpu_spec = default_integrated_gpu()
        gpu = GPUSimulator(gpu_spec, seed=0)
        trace = get_graphics_workload("nenamark2", gpu=gpu_spec, n_frames=20,
                                      seed=0)
        configs = [GPUConfiguration(opp_index=i, active_slices=gpu_spec.n_slices)
                   for i in range(len(gpu_spec.opps))]
        summaries = gpu.evaluate_batch(trace, configs)
        assert len(summaries) == len(configs)
        # Deterministic sweep: matches run_fixed at the same configuration.
        again = gpu.run_fixed(trace, configs[0], deterministic=True)
        assert summaries[0].gpu_energy_j == pytest.approx(again.gpu_energy_j)
        # Higher frequency burns more GPU energy on the same frames.
        assert summaries[-1].gpu_energy_j > summaries[0].gpu_energy_j

    def test_noc_batch_sweep_sees_identical_traffic(self):
        topology = MeshTopology(3, 3)
        noc = NoCSimulator(topology)
        traffic = UniformRandomTraffic(topology, injection_rate=0.05, seed=0)
        fast = RouterConfig()
        slow = RouterConfig(router_delay_cycles=fast.router_delay_cycles + 4)
        results = noc.evaluate_batch(traffic, [fast, slow, fast], n_cycles=100)
        assert len(results) == 3
        # Same replayed packets: identical configs give identical latencies,
        # and a slower router pipeline strictly raises the average latency.
        assert results[0].average_latency_cycles == results[2].average_latency_cycles
        assert results[1].average_latency_cycles > results[0].average_latency_cycles

    def test_gpu_batch_bitwise_matches_run_fixed(self):
        """Vectorized GPU sweep reproduces the scalar frame loop bitwise."""
        gpu_spec = default_integrated_gpu()
        gpu = GPUSimulator(gpu_spec, seed=0)
        trace = get_graphics_workload("nenamark2", gpu=gpu_spec, n_frames=40,
                                      seed=3)
        configs = gpu_spec.configurations()
        batch = gpu.evaluate_batch(trace, configs)
        assert len(batch) == len(configs)
        for i in (0, len(configs) // 2, len(configs) - 1):
            reference = gpu.run_fixed(trace, configs[i], deterministic=True)
            materialized = batch.summary_at(i)
            for got, want in zip(materialized.frame_results,
                                 reference.frame_results):
                assert got.busy_time_s == want.busy_time_s
                assert got.frame_time_s == want.frame_time_s
                assert got.gpu_energy_j == want.gpu_energy_j
                assert got.dram_energy_j == want.dram_energy_j
                assert got.cpu_energy_j == want.cpu_energy_j
                assert got.met_deadline == want.met_deadline
            assert materialized.gpu_energy_j == reference.gpu_energy_j
            # Aggregate accessors agree with the materialised summaries.
            assert batch.gpu_energy_totals_j[i] == pytest.approx(
                reference.gpu_energy_j)
            assert batch.package_dram_energy_totals_j[i] == pytest.approx(
                reference.package_dram_energy_j)
            assert batch.deadline_miss_rates[i] == pytest.approx(
                reference.deadline_miss_rate)
        with pytest.raises(ValueError):
            gpu.evaluate_batch(trace, [])
        with pytest.raises(IndexError):
            batch.summary_at(len(configs))

    def test_noc_batch_matches_run_packets_replay(self):
        """Shared-preparation batch equals a fresh run_packets per config."""
        topology = MeshTopology(3, 3)
        configs = [RouterConfig(), RouterConfig(router_delay_cycles=5),
                   RouterConfig(flits_per_cycle=2)]
        batch = NoCSimulator(topology).evaluate_batch(
            UniformRandomTraffic(topology, injection_rate=0.08, seed=17),
            configs, n_cycles=120,
        )
        # Regenerate the identical trace (same seed) per reference run.
        for config, result in zip(configs, batch):
            traffic = UniformRandomTraffic(topology, injection_rate=0.08,
                                           seed=17)
            reference = NoCSimulator(topology, config).run_packets(
                traffic.generate(120), 120
            )
            assert result.undelivered_count == reference.undelivered_count
            assert result.simulated_cycles == reference.simulated_cycles
            assert (
                [(p.packet_id, p.ejection_cycle, p.hops)
                 for p in result.delivered_packets]
                == [(p.packet_id, p.ejection_cycle, p.hops)
                    for p in reference.delivered_packets]
            )
        # Empty sweeps are rejected like the SoC and GPU engines do.
        with pytest.raises(ValueError):
            NoCSimulator(topology).evaluate_batch(
                UniformRandomTraffic(topology, injection_rate=0.08, seed=17),
                [], n_cycles=10,
            )


class TestBatchSweepParity:
    def test_batch_matches_scalar_results_bitwise(self, simulator, space,
                                                  sweep_trace):
        snippet = sweep_trace[0]
        batch = simulator.evaluate_expected_batch(snippet, space)
        assert len(batch) == len(space)
        for i, config in enumerate(space):
            reference = simulator.evaluate_expected(snippet, config)
            materialized = batch.result_at(i)
            assert materialized.configuration == config
            assert materialized.execution_time_s == reference.execution_time_s
            assert materialized.energy_j == reference.energy_j
            assert materialized.average_power_w == reference.average_power_w
            assert materialized.counters.as_dict() == reference.counters.as_dict()
            assert materialized.power_breakdown_w == reference.power_breakdown_w

    @pytest.mark.parametrize("objective_name", sorted(ALL_OBJECTIVES))
    def test_oracle_tables_identical_across_paths(self, simulator, space,
                                                  sweep_trace, objective_name):
        objective = ALL_OBJECTIVES[objective_name]
        scalar = build_oracle(simulator, space, sweep_trace, objective,
                              use_batch=False)
        batch = build_oracle(simulator, space, sweep_trace, objective,
                             use_batch=True)
        assert scalar.entries.keys() == batch.entries.keys()
        for name in scalar.entries:
            assert (scalar.entries[name].best_configuration
                    == batch.entries[name].best_configuration)
            assert scalar.entries[name].best_cost == batch.entries[name].best_cost

    def test_batch_cost_fallback_without_vector_form(self, simulator, space,
                                                     sweep_trace):
        plain = Objective("plain-energy", lambda r: r.energy_j)
        batch = simulator.evaluate_expected_batch(sweep_trace[0], space)
        fallback = plain.batch_cost(batch)
        vectorized = ENERGY.batch_cost(batch)
        np.testing.assert_array_equal(fallback, vectorized)

    def test_batch_works_on_plain_config_lists(self, simulator, space,
                                               sweep_trace):
        subset = list(space)[:5]
        batch = simulator.evaluate_expected_batch(sweep_trace[0], subset)
        assert len(batch) == 5
        reference = simulator.evaluate_expected(sweep_trace[0], subset[3])
        assert batch.result_at(3).energy_j == reference.energy_j

    def test_batch_rejects_empty_configurations(self, simulator, sweep_trace):
        with pytest.raises(ValueError):
            simulator.evaluate_expected_batch(sweep_trace[0], [])

    def test_sweep_configurations_uses_batch_path(self, simulator, space,
                                                  sweep_trace):
        subset = list(space)[:4]
        results = simulator.sweep_configurations(sweep_trace[0], subset)
        assert set(results) == set(subset)
        for config, result in results.items():
            assert result.energy_j == simulator.evaluate_expected(
                sweep_trace[0], config).energy_j


class TestOracleCache:
    def test_second_build_hits_for_every_snippet(self, simulator, space,
                                                 sweep_trace):
        cache = OracleCache()
        first = build_oracle(simulator, space, sweep_trace, ENERGY, cache=cache)
        assert cache.misses == len(sweep_trace)
        assert cache.hits == 0
        second = build_oracle(simulator, space, sweep_trace, ENERGY, cache=cache)
        assert cache.hits == len(sweep_trace)
        assert cache.misses == len(sweep_trace)
        assert cache.hit_rate == pytest.approx(0.5)
        for name in first.entries:
            assert first.entries[name] is second.entries[name]

    def test_content_keys_hit_across_regenerated_snippets(self, simulator,
                                                          space):
        trace_a = SnippetTraceGenerator(seed=3).generate(
            get_workload("fft").scaled(0.2))
        trace_b = SnippetTraceGenerator(seed=3).generate(
            get_workload("fft").scaled(0.2))
        assert trace_a is not trace_b
        cache = OracleCache()
        build_oracle(simulator, space, trace_a, ENERGY, cache=cache)
        build_oracle(simulator, space, trace_b, ENERGY, cache=cache)
        assert cache.hits == len(trace_b)

    def test_objective_and_space_separate_entries(self, simulator, space,
                                                  small_platform, small_space,
                                                  sweep_trace):
        from repro.core.objectives import EDP
        from repro.soc.simulator import SoCSimulator
        cache = OracleCache()
        build_oracle(simulator, space, sweep_trace, ENERGY, cache=cache)
        build_oracle(simulator, space, sweep_trace, EDP, cache=cache)
        assert cache.hits == 0
        assert cache.misses == 2 * len(sweep_trace)
        assert len(cache) == 2 * len(sweep_trace)
        # A different space (different platform) must also miss everywhere.
        small_simulator = SoCSimulator(small_platform, noise_scale=0.0, seed=0)
        build_oracle(small_simulator, small_space, sweep_trace, ENERGY,
                     cache=cache)
        assert cache.hits == 0
        assert len(cache) == 3 * len(sweep_trace)

    def test_custom_objective_never_shares_builtin_entries(self, simulator,
                                                           space, sweep_trace):
        from repro.core.objectives import Objective
        # Same name as the built-in but a different cost function: the cache
        # must key on the callable, not just the name.
        impostor = Objective("energy", lambda r: -r.energy_j)
        cache = OracleCache()
        build_oracle(simulator, space, sweep_trace, ENERGY, cache=cache)
        impostor_table = build_oracle(simulator, space, sweep_trace, impostor,
                                      cache=cache)
        assert cache.hits == 0
        assert len(cache) == 2 * len(sweep_trace)
        energy_table = build_oracle(simulator, space, sweep_trace, ENERGY,
                                    cache=cache)
        name = sweep_trace[0].name
        assert (impostor_table.entries[name].best_configuration
                != energy_table.entries[name].best_configuration)

    def test_same_named_platform_with_different_opps_misses(self, sweep_trace):
        from repro.soc.configuration import ConfigurationSpace
        from repro.soc.platform import generic_big_little
        from repro.soc.simulator import SoCSimulator
        cache = OracleCache()
        for max_freq in (2.4e9, 3.2e9):
            platform = generic_big_little(big_max_frequency_hz=max_freq)
            space = ConfigurationSpace(platform)
            simulator = SoCSimulator(platform, noise_scale=0.0, seed=0)
            build_oracle(simulator, space, sweep_trace, ENERGY, cache=cache)
        # Identical platform names and config index tuples, different OPP
        # tables: nothing may be shared.
        assert cache.hits == 0
        assert len(cache) == 2 * len(sweep_trace)

    def test_invalidation(self, simulator, space, sweep_trace):
        cache = OracleCache()
        build_oracle(simulator, space, sweep_trace, ENERGY, cache=cache)
        removed = cache.invalidate_snippet(sweep_trace[0])
        assert removed == 1
        assert len(cache) == len(sweep_trace) - 1
        build_oracle(simulator, space, sweep_trace, ENERGY, cache=cache)
        # Only the invalidated snippet misses on the rebuild.
        assert cache.misses == len(sweep_trace) + 1
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_framework_reuses_oracle_entries(self, trained_framework,
                                             sweep_trace):
        cache = trained_framework.oracle_cache
        baseline_misses = cache.misses
        trained_framework.build_oracle_for(sweep_trace)
        assert cache.misses == baseline_misses + len(sweep_trace)
        hits_before = cache.hits
        trained_framework.build_oracle_for(sweep_trace)
        assert cache.hits == hits_before + len(sweep_trace)


class TestScaleRegistry:
    def test_presets_resolve_by_name(self):
        assert get_scale("tiny") is TINY
        assert get_scale("quick") is QUICK
        assert get_scale("bench") is BENCH
        assert get_scale("full") is FULL
        assert get_scale(TINY) is TINY
        assert set(available_scales()) >= {"tiny", "quick", "bench", "full"}

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            get_scale("gigantic")

    def test_register_custom_scale(self):
        custom = ExperimentScale(name="test-custom", gpu_frames=10)
        register_scale(custom)
        try:
            assert get_scale("test-custom") is custom
            with pytest.raises(ValueError):
                register_scale(ExperimentScale(name="test-custom"))
        finally:
            from repro.experiments import scales
            scales._SCALE_REGISTRY.pop("test-custom", None)


class TestExperimentRegistry:
    PAPER_EXPERIMENTS = ("table1", "table2", "figure2", "figure3", "figure4",
                         "figure5")

    def test_all_paper_drivers_registered(self):
        names = available_experiments()
        for required in self.PAPER_EXPERIMENTS:
            assert required in names
        assert available_experiments(tag="paper") == sorted(self.PAPER_EXPERIMENTS)

    def test_round_trip_every_registered_experiment(self):
        for name in available_experiments():
            spec = get_experiment(name)
            assert spec.name == name
            assert spec.description
            assert callable(spec.runner)
            if spec.formatter is None:
                # Default formatter renders arbitrary results as text.
                assert isinstance(spec.format_result([1, 2]), str)
            else:
                assert callable(spec.formatter)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            get_experiment("figure99")
        with pytest.raises(ValueError):
            register_experiment("table1", "duplicate", lambda s, d, c: None)

    def test_runner_multi_seed_fan_out(self):
        runner = ExperimentRunner(scale="tiny", seeds=(0, 1))
        run = runner.run("table1")
        assert run.seeds == [0, 1]
        assert len(run.results) == 2
        assert run.scale is TINY
        report = run.format()
        assert "table1" in report and "seed=1" in report
        assert run.total_elapsed_s >= 0.0

    def test_runner_rejects_empty_seeds(self):
        with pytest.raises(ValueError):
            ExperimentRunner(scale="tiny", seeds=())
        runner = ExperimentRunner(scale="tiny", seeds=(0,))
        with pytest.raises(ValueError):
            runner.run("table1", seeds=())

    def test_custom_scale_sharing_preset_name_gets_own_study(self):
        """The study memo keys on the scale object, not its name."""
        from repro.experiments.runner import ExperimentContext
        from repro.experiments.scales import ExperimentScale, TINY
        context = ExperimentContext()
        study_a = context.adaptation_study(TINY, 0)
        impostor = ExperimentScale(
            name="tiny", train_snippet_factor=0.15, eval_snippet_factor=0.15,
            sequence_snippet_factor=0.3, offline_epochs=20, buffer_capacity=5,
            update_epochs=20, rl_offline_episodes=1, gpu_frames=40,
            nmpc_surface_samples=40,
        )
        study_b = context.adaptation_study(impostor, 0)
        assert study_a is not study_b
        assert context.adaptation_study(TINY, 0) is study_a

    def test_runner_scale_override(self):
        runner = ExperimentRunner(scale="quick", seeds=(0,))
        run = runner.run("table1", scale="tiny", seeds=(5,))
        assert run.scale is TINY
        assert run.seeds == [5]


class TestCLI:
    def test_list_exits_cleanly(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in TestExperimentRegistry.PAPER_EXPERIMENTS:
            assert name in out
        for scale in ("tiny", "quick", "bench", "full"):
            assert scale in out

    def test_runs_named_experiment(self, capsys):
        assert main(["table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "scale=tiny" in out

    def test_seed_fan_out(self, capsys):
        assert main(["table1", "--scale", "tiny", "--seeds", "2",
                     "--seed-base", "3"]) == 0
        out = capsys.readouterr().out
        assert "seed=3" in out and "seed=4" in out

    def test_bad_inputs_fail_with_diagnostics(self, capsys):
        assert main(["table1", "--scale", "gigantic"]) == 2
        assert main(["figure99", "--scale", "tiny"]) == 2
        assert main(["table1", "--seeds", "0"]) == 2
        assert main(["table1", "--seed-base", "-1"]) == 2
        assert main(["--tag", "ablations", "--scale", "tiny"]) == 2
        err = capsys.readouterr().err
        assert "no experiments match tag" in err
