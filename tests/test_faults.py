"""Tests for fault injection, fleet supervision and graceful degradation.

The acceptance bar is two invariants layered on the fleet equivalence
contract:

* **zero-fault identity** — a supervised fleet with an empty fault plan is
  bitwise identical to a bare :class:`~repro.fleet.engine.FleetEngine`;
* **quarantine isolation** — when K devices crash, the surviving N-K
  devices are bitwise identical to a fleet built without the crashed
  devices, and a recovered device is bitwise identical to an
  uninterrupted run.

Plus the degradation paths around them: deterministic plan generation,
serializable fault specs, online-IL gating of corrupted telemetry, and
the build-time RNG hazard warnings.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.control.policy import GovernorPolicy
from repro.core.session import PolicySession
from repro.fleet import (
    CounterDropout,
    DeviceCrash,
    DeviceHealth,
    DeviceSpec,
    FaultPlan,
    FleetBuildWarning,
    FleetSupervisor,
    SnapshotRestart,
    StragglerStall,
    TelemetryCorruption,
    build_fleet,
    device_session,
    fault_from_dict,
)
from repro.scenarios import get_scenario
from repro.soc.governors import OndemandGovernor, PowersaveGovernor
from repro.workloads.generator import SnippetTraceGenerator
from repro.workloads.suites import training_workloads

LOG_KEYS = ("energy_j", "time_s", "power_w", "big_opp", "little_opp")


def make_trace(i, factor=0.3):
    generator = SnippetTraceGenerator(seed=100 + i)
    workloads = training_workloads()
    return generator.generate(workloads[i % len(workloads)].scaled(factor))


def governor_devices(space, n=4):
    """Fresh governor fleet (policies and rngs are stateful: never reuse)."""
    return [
        DeviceSpec(
            name=f"dev{i}",
            policy=GovernorPolicy(OndemandGovernor(space)) if i % 2 == 0
            else GovernorPolicy(PowersaveGovernor(space)),
            snippets=make_trace(i),
            seed=10 + i,
        )
        for i in range(n)
    ]


def assert_logs_equal(reference, actual, keys=LOG_KEYS):
    assert len(reference.log) == len(actual.log)
    for key in keys:
        np.testing.assert_array_equal(
            reference.log.column(key), actual.log.column(key), err_msg=key
        )


# --------------------------------------------------------------------- #
# Fault plans
# --------------------------------------------------------------------- #
class TestFaultPlan:
    def test_generation_is_deterministic(self):
        names = ["dev0", "dev1", "dev2", "dev3"]
        left = FaultPlan.generate(names, 1.0, seed=7, horizon=10)
        right = FaultPlan.generate(names, 1.0, seed=7, horizon=10)
        assert left == right
        assert FaultPlan.generate(names, 1.0, seed=8, horizon=10) != left

    def test_per_device_streams_are_independent(self):
        """A device's fault depends only on the seed and its own name."""
        full = FaultPlan.generate(["a", "b", "c"], 1.0, seed=3, horizon=10)
        solo = FaultPlan.generate(["b"], 1.0, seed=3, horizon=10)
        assert full.for_device("b") == solo.for_device("b")

    def test_rate_zero_is_empty_and_rate_one_faults_everyone(self):
        names = ["dev0", "dev1", "dev2"]
        assert len(FaultPlan.generate(names, 0.0, seed=1)) == 0
        full = FaultPlan.generate(names, 1.0, seed=1)
        assert full.device_names() == sorted(names)

    def test_fault_is_stable_across_rates(self):
        """Raising the rate adds devices; it never changes existing faults."""
        names = [f"dev{i}" for i in range(8)]
        half = FaultPlan.generate(names, 0.5, seed=2)
        full = FaultPlan.generate(names, 1.0, seed=2)
        for name in half.device_names():
            assert half.for_device(name) == full.for_device(name)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError, match="fault_rate"):
            FaultPlan.generate(["a"], 1.5)
        with pytest.raises(ValueError, match="horizon"):
            FaultPlan.generate(["a"], 0.5, horizon=1)

    def test_plan_round_trips_through_dicts(self):
        plan = FaultPlan.generate([f"dev{i}" for i in range(6)], 1.0, seed=5)
        assert len(plan) == 6
        restored = FaultPlan.from_dict(plan.to_dict())
        assert restored == plan

    def test_fault_spec_validation(self):
        with pytest.raises(ValueError, match="device name"):
            DeviceCrash(device="", step=1)
        with pytest.raises(ValueError, match="non-negative"):
            DeviceCrash(device="dev0", step=-1)
        with pytest.raises(ValueError, match="unknown counter fields"):
            CounterDropout(device="dev0", step=1, fields=("bogus",))
        with pytest.raises(ValueError, match="gain"):
            TelemetryCorruption(device="dev0", step=1, gain=0.5)
        with pytest.raises(ValueError, match="rounds"):
            StragglerStall(device="dev0", step=1, rounds=0)
        with pytest.raises(KeyError, match="unknown fault type"):
            fault_from_dict({"type": "NotAFault", "params": {}})


# --------------------------------------------------------------------- #
# Observation-fault purity
# --------------------------------------------------------------------- #
class TestObservationFaults:
    def _result(self, noisy_simulator, space):
        snippet = make_trace(0)[0]
        return noisy_simulator.run_snippet(
            snippet, space.default_configuration(),
            rng=np.random.default_rng(0),
        )

    def test_corrupt_is_pure_and_keeps_physics(self, noisy_simulator, space):
        original = self._result(noisy_simulator, space)
        before = original.counters.as_dict()
        fault = CounterDropout(device="dev0", step=0)
        corrupted = fault.corrupt(original)
        # Energy/time are measured physics, not telemetry: untouched.
        assert corrupted.energy_j == original.energy_j
        assert corrupted.execution_time_s == original.execution_time_s
        assert np.isnan(corrupted.counters.big_cluster_utilization)
        assert not corrupted.counters.is_valid()
        # The input result was not mutated.
        assert original.counters.as_dict() == before
        assert original.counters.is_valid()

    def test_telemetry_corruption_is_detectable(self, noisy_simulator, space):
        original = self._result(noisy_simulator, space)
        fault = TelemetryCorruption(device="dev0", step=0, gain=1e6)
        corrupted = fault.corrupt(original)
        assert corrupted.counters.big_cluster_utilization > 1.0
        assert not corrupted.counters.is_valid()


# --------------------------------------------------------------------- #
# Supervisor invariants
# --------------------------------------------------------------------- #
class TestSupervisorInvariants:
    def test_zero_fault_supervised_fleet_is_bitwise_identical(
            self, noisy_simulator, space):
        reference = build_fleet(governor_devices(space), noisy_simulator,
                                space).run()
        supervisor = FleetSupervisor(governor_devices(space), noisy_simulator,
                                     space)
        supervised = supervisor.run()
        for ref, got in zip(reference, supervised):
            assert_logs_equal(ref, got)
        assert all(report.health == "healthy" and not report.supervised
                   for report in supervisor.reports())

    def test_crash_quarantine_isolates_survivors(self, noisy_simulator,
                                                 space):
        """Survivors of a crashed fleet == a fleet built without the dead."""
        plan = FaultPlan(faults=(DeviceCrash("dev1", 3),))
        supervisor = FleetSupervisor(governor_devices(space), noisy_simulator,
                                     space, plan=plan, max_restarts=0)
        results = supervisor.run()
        survivors = build_fleet(
            [d for d in governor_devices(space) if d.name != "dev1"],
            noisy_simulator, space,
        ).run()
        for survivor, slot in zip(survivors, (0, 2, 3)):
            assert_logs_equal(survivor, results[slot])
        report = {r.name: r for r in supervisor.reports()}["dev1"]
        assert report.health == "quarantined"
        assert not report.completed
        assert report.steps_completed == 3  # truncated at the crash
        assert supervisor.survival_fraction == pytest.approx(0.75)

    def test_crash_recovery_is_bitwise_identical_to_uninterrupted(
            self, noisy_simulator, space):
        reference = build_fleet(governor_devices(space), noisy_simulator,
                                space).run()
        plan = FaultPlan(faults=(DeviceCrash("dev1", 3),))
        supervisor = FleetSupervisor(governor_devices(space), noisy_simulator,
                                     space, plan=plan, snapshot_every=2,
                                     max_restarts=2)
        results = supervisor.run()
        for ref, got in zip(reference, results):
            assert_logs_equal(ref, got)
        report = {r.name: r for r in supervisor.reports()}["dev1"]
        assert report.health == "recovered"
        assert report.restarts == 1
        assert report.replayed_steps > 0  # snapshot at 2, crash at 3
        assert report.wasted_energy_j > 0
        assert supervisor.survival_fraction == 1.0

    def test_stall_triggers_watchdog_then_recovers(self, noisy_simulator,
                                                   space):
        reference = build_fleet(governor_devices(space), noisy_simulator,
                                space).run()
        plan = FaultPlan(faults=(StragglerStall("dev2", 2, rounds=8),))
        supervisor = FleetSupervisor(governor_devices(space), noisy_simulator,
                                     space, plan=plan, watchdog_rounds=2,
                                     snapshot_every=2)
        results = supervisor.run()
        for ref, got in zip(reference, results):
            assert_logs_equal(ref, got)
        history = supervisor.health_history("dev2")
        assert DeviceHealth.DEGRADED in history      # flagged first
        assert DeviceHealth.QUARANTINED in history   # flatline confirmed
        assert history[-1] is DeviceHealth.RECOVERED
        report = {r.name: r for r in supervisor.reports()}["dev2"]
        assert report.watchdog_flags >= 1
        assert report.completed

    def test_short_stall_self_recovers_without_quarantine(
            self, noisy_simulator, space):
        """A hang shorter than the flatline window clears on its own."""
        plan = FaultPlan(faults=(StragglerStall("dev0", 2, rounds=3),))
        supervisor = FleetSupervisor(governor_devices(space), noisy_simulator,
                                     space, plan=plan, watchdog_rounds=3)
        supervisor.run()
        history = supervisor.health_history("dev0")
        assert DeviceHealth.QUARANTINED not in history
        assert history[-1] is DeviceHealth.HEALTHY
        report = {r.name: r for r in supervisor.reports()}["dev0"]
        assert report.completed and report.restarts == 0

    def test_snapshot_restart_fault_completes_bitwise(self, noisy_simulator,
                                                      space):
        reference = build_fleet(governor_devices(space), noisy_simulator,
                                space).run()
        plan = FaultPlan(faults=(SnapshotRestart("dev0", 4),))
        supervisor = FleetSupervisor(governor_devices(space), noisy_simulator,
                                     space, plan=plan, snapshot_every=3)
        results = supervisor.run()
        for ref, got in zip(reference, results):
            assert_logs_equal(ref, got)
        report = {r.name: r for r in supervisor.reports()}["dev0"]
        assert report.restarts == 1
        assert report.replayed_steps == 1  # snapshot at 3, reboot at 4

    def test_on_disk_snapshots_recover_too(self, tmp_path, noisy_simulator,
                                           space):
        reference = build_fleet(governor_devices(space), noisy_simulator,
                                space).run()
        plan = FaultPlan(faults=(DeviceCrash("dev3", 4),))
        supervisor = FleetSupervisor(
            governor_devices(space), noisy_simulator, space, plan=plan,
            snapshot_every=2, snapshot_dir=tmp_path / "snapshots",
        )
        results = supervisor.run()
        for ref, got in zip(reference, results):
            assert_logs_equal(ref, got)
        assert (tmp_path / "snapshots" / "dev3.snapshot").exists()

    def test_scenario_device_recovers_with_rebuilt_schedule(
            self, noisy_simulator, space):
        """Crash-restore on a throttled device rebuilds its space schedule."""
        def devices():
            specs = governor_devices(space, n=2)
            scenario = get_scenario("thermal_throttle").apply(
                make_trace(2), 123
            )
            specs.append(DeviceSpec(
                name="dev2", policy=GovernorPolicy(OndemandGovernor(space)),
                scenario=scenario, seed=12,
            ))
            return specs

        reference = build_fleet(devices(), noisy_simulator, space).run()
        assert np.nansum(reference[2].log.column("throttled",
                                                 default=0.0)) > 0
        plan = FaultPlan(faults=(DeviceCrash("dev2", 3),))
        supervisor = FleetSupervisor(devices(), noisy_simulator, space,
                                     plan=plan, snapshot_every=2)
        results = supervisor.run()
        for ref, got in zip(reference, results):
            assert_logs_equal(ref, got)
        np.testing.assert_array_equal(
            reference[2].log.column("throttled", default=0.0),
            results[2].log.column("throttled", default=0.0),
        )

    def test_supervisor_validation(self, noisy_simulator, space):
        plan = FaultPlan(faults=(DeviceCrash("ghost", 1),))
        with pytest.raises(ValueError, match="not in the fleet"):
            FleetSupervisor(governor_devices(space), noisy_simulator, space,
                            plan=plan)
        with pytest.raises(ValueError, match="at least one device"):
            FleetSupervisor([], noisy_simulator, space)
        with pytest.raises(ValueError, match="snapshot_every"):
            FleetSupervisor(governor_devices(space), noisy_simulator, space,
                            snapshot_every=0)
        with pytest.raises(KeyError):
            supervisor = FleetSupervisor(governor_devices(space),
                                         noisy_simulator, space)
            supervisor.health_of("ghost")


# --------------------------------------------------------------------- #
# Online-IL degradation under corrupted telemetry
# --------------------------------------------------------------------- #
class TestOnlineILGating:
    def test_corrupted_counters_are_rejected_not_learned(
            self, trained_framework):
        framework = trained_framework
        policy = framework.build_online_il_policy(
            buffer_capacity=10, update_epochs=5, isolated=True,
        )
        trace = make_trace(0)
        devices = [
            DeviceSpec(name="il", policy=policy, snippets=trace, seed=3),
            DeviceSpec(name="gov",
                       policy=GovernorPolicy(OndemandGovernor(framework.space)),
                       snippets=make_trace(1), seed=4),
        ]
        plan = FaultPlan(faults=(
            CounterDropout("il", 1),
            TelemetryCorruption("il", 3),
        ))
        supervisor = FleetSupervisor(devices, framework.simulator,
                                     framework.space, plan=plan)
        with warnings.catch_warnings():
            # NaN telemetry must never leak into numpy reductions.
            warnings.simplefilter("error", RuntimeWarning)
            supervisor.run()
        assert policy.n_rejected_updates >= 2
        assert policy.n_rejected_decisions >= 1
        assert policy.diagnostics()["rejected_updates"] >= 2
        report = {r.name: r for r in supervisor.reports()}["il"]
        assert report.corrupted_observations == 2
        assert report.completed


# --------------------------------------------------------------------- #
# build_fleet hazard warnings
# --------------------------------------------------------------------- #
class TestBuildFleetWarnings:
    def test_shared_rng_warns_with_device_names(self, noisy_simulator, space):
        shared = np.random.default_rng(0)
        devices = [
            DeviceSpec(name=f"dev{i}",
                       policy=GovernorPolicy(OndemandGovernor(space)),
                       snippets=make_trace(i), rng=shared)
            for i in range(2)
        ]
        with pytest.warns(FleetBuildWarning, match="dev0.*dev1"):
            build_fleet(devices, noisy_simulator, space)

    def test_unseeded_devices_warn(self, noisy_simulator, space):
        devices = [DeviceSpec(name="dev0",
                              policy=GovernorPolicy(OndemandGovernor(space)),
                              snippets=make_trace(0))]
        with pytest.warns(FleetBuildWarning, match="dev0"):
            build_fleet(devices, noisy_simulator, space)

    def test_clean_fleet_does_not_warn(self, noisy_simulator, space):
        with warnings.catch_warnings():
            warnings.simplefilter("error", FleetBuildWarning)
            build_fleet(governor_devices(space), noisy_simulator, space)

    def test_validate_false_silences_warnings(self, noisy_simulator, space):
        devices = [DeviceSpec(name="dev0",
                              policy=GovernorPolicy(OndemandGovernor(space)),
                              snippets=make_trace(0))]
        with warnings.catch_warnings():
            warnings.simplefilter("error", FleetBuildWarning)
            build_fleet(devices, noisy_simulator, space, validate=False)


# --------------------------------------------------------------------- #
# Engine RNG reconstruction (snapshotting batched sessions)
# --------------------------------------------------------------------- #
class TestSequentialRngState:
    def test_snapshot_of_batched_session_resumes_scalar_bitwise(
            self, noisy_simulator, space):
        """A session snapshotted out of a running engine — whose private rng
        was pre-drawn for the whole trace — resumes scalar, bitwise equal to
        the sequential reference."""
        sequential = device_session(governor_devices(space)[1],
                                    noisy_simulator, space).run()
        engine = build_fleet(governor_devices(space), noisy_simulator, space)
        for _ in range(3):
            engine.step()
        session = engine.sessions[1]
        data = session.snapshot_bytes(
            rng=engine.sequential_rng_state(session)
        )
        restored = PolicySession.restore(data, noisy_simulator)
        assert restored.step_index == 3
        resumed = restored.run()
        assert_logs_equal(sequential, resumed)
