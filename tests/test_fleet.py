"""Tests for the lockstep fleet engine and its batched kernels.

The acceptance bar is the equivalence contract: a lockstep fleet of N
devices — batched decides, batched executions, pre-drawn noise streams —
produces **bitwise-identical per-device RunLogs** to N independent
sequential runs of the same sessions.  These tests pin that contract for
every batching combination (governor fleets, mixed-policy fleets, ragged
trace lengths, throttled scenario devices, restricted per-device spaces,
online-IL learning devices) plus the capability plumbing around it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.policy import GovernorPolicy, StaticPolicy
from repro.core.framework import run_policy_on_snippets
from repro.fleet import (DeviceSpec, FleetBuildWarning, FleetEngine,
                         TraceArrays, build_fleet)
from repro.fleet.kernels import lockstep_execute
from repro.scenarios import get_scenario
from repro.scenarios.runtime import run_policy_on_scenario
from repro.soc.configuration import ConfigurationSpace
from repro.soc.governors import (
    InteractiveGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.soc.simulator import SoCSimulator
from repro.workloads.generator import SnippetTraceGenerator
from repro.workloads.suites import training_workloads

LOG_KEYS = ("energy_j", "time_s", "power_w", "big_opp", "little_opp")


def make_trace(i, factor=0.3, extra=0):
    generator = SnippetTraceGenerator(seed=100 + i)
    workloads = training_workloads()
    trace = generator.generate(workloads[i % len(workloads)].scaled(factor))
    for j in range(extra):
        trace.extend(generator.generate(
            workloads[(i + j + 1) % len(workloads)].scaled(factor)
        ))
    return trace


def assert_runs_bitwise_equal(reference, actual, keys=LOG_KEYS):
    assert len(reference.log) == len(actual.log)
    for key in keys:
        np.testing.assert_array_equal(
            reference.log.column(key), actual.log.column(key), err_msg=key
        )
    assert reference.total_energy_j == actual.total_energy_j
    assert reference.total_time_s == actual.total_time_s
    assert reference.per_application_energy() == actual.per_application_energy()


# --------------------------------------------------------------------- #
# Kernel-level equivalence
# --------------------------------------------------------------------- #
class TestLockstepKernel:
    def test_lockstep_execute_matches_run_snippet(self, platform, space):
        """Random (snippet, config) pairs: kernel == scalar, bitwise."""
        simulator = SoCSimulator(platform, noise_scale=0.02, seed=0)
        rng = np.random.default_rng(42)
        snippets = [s for w in training_workloads()
                    for s in SnippetTraceGenerator(seed=5).generate(w.scaled(0.2))]
        pairs = [(snippets[int(rng.integers(len(snippets)))],
                  space.random_configuration(rng)) for _ in range(40)]

        # Scalar reference: one private stream per lane.
        scalar = [
            simulator.run_snippet(snippet, config,
                                  rng=np.random.default_rng(900 + i))
            for i, (snippet, config) in enumerate(pairs)
        ]
        # Kernel: the same draws, pre-drawn exactly like FleetEngine does.
        noise = np.exp(np.stack([
            np.random.default_rng(900 + i).normal(
                0.0, simulator.noise_scale, size=2)
            for i in range(len(pairs))
        ]))
        chars = TraceArrays([snippet for snippet, _ in pairs]).matrix
        opp_index = {
            name: np.array([config.opp_index(name) for _, config in pairs],
                           dtype=np.intp)
            for name in platform.cluster_names
        }
        cores = {
            name: np.array([config.cores(name) for _, config in pairs],
                           dtype=np.intp)
            for name in platform.cluster_names
        }
        batched = lockstep_execute(
            simulator, [s for s, _ in pairs], chars, opp_index, cores,
            [c for _, c in pairs], noise,
        )
        for ref, out in zip(scalar, batched):
            assert ref.execution_time_s == out.execution_time_s
            assert ref.energy_j == out.energy_j
            assert ref.average_power_w == out.average_power_w
            assert ref.power_breakdown_w == out.power_breakdown_w
            assert ref.counters.as_dict() == out.counters.as_dict()

    def test_noise_free_kernel_matches_deterministic_run(self, platform, space):
        simulator = SoCSimulator(platform, noise_scale=0.0, seed=0)
        trace = make_trace(0)
        config = space.default_configuration()
        scalar = [simulator.run_snippet(s, config) for s in trace]
        chars = TraceArrays(trace).matrix
        n = len(trace)
        opp_index = {name: np.full(n, config.opp_index(name), dtype=np.intp)
                     for name in platform.cluster_names}
        cores = {name: np.full(n, config.cores(name), dtype=np.intp)
                 for name in platform.cluster_names}
        batched = lockstep_execute(simulator, trace, chars, opp_index, cores,
                                   [config] * n, None)
        for ref, out in zip(scalar, batched):
            assert ref.energy_j == out.energy_j
            assert ref.counters.as_dict() == out.counters.as_dict()


# --------------------------------------------------------------------- #
# Fleet == sequential equivalence
# --------------------------------------------------------------------- #
class TestFleetEquivalence:
    @pytest.fixture()
    def fleet_simulator(self, platform):
        return SoCSimulator(platform, noise_scale=0.01, seed=0)

    def _policies(self, space, i):
        governors = (OndemandGovernor, PowersaveGovernor, InteractiveGovernor,
                     PerformanceGovernor)
        if i % 5 == 0:
            return StaticPolicy(space)
        return GovernorPolicy(governors[i % 4](space))

    def test_mixed_policy_fleet_matches_sequential(self, fleet_simulator,
                                                   space):
        n = 10
        traces = [make_trace(i) for i in range(n)]
        sequential = [
            run_policy_on_snippets(
                fleet_simulator, space, self._policies(space, i), traces[i],
                rng=np.random.default_rng(1000 + i),
            )
            for i in range(n)
        ]
        devices = [
            DeviceSpec(name=f"d{i}", policy=self._policies(space, i),
                       snippets=traces[i], rng=np.random.default_rng(1000 + i))
            for i in range(n)
        ]
        engine = build_fleet(devices, fleet_simulator, space)
        fleet = engine.run()
        assert engine.batched_executions == engine.steps_executed
        assert engine.batched_decisions > 0
        for reference, actual in zip(sequential, fleet):
            assert_runs_bitwise_equal(reference, actual)

    def test_ragged_trace_lengths(self, fleet_simulator, space):
        """Devices finishing at different steps keep lockstep equivalence."""
        traces = [make_trace(i, extra=i % 3) for i in range(6)]
        assert len({len(t) for t in traces}) > 1
        sequential = [
            run_policy_on_snippets(
                fleet_simulator, space,
                GovernorPolicy(OndemandGovernor(space)), traces[i],
                rng=np.random.default_rng(50 + i),
            )
            for i in range(6)
        ]
        devices = [
            DeviceSpec(name=f"d{i}",
                       policy=GovernorPolicy(OndemandGovernor(space)),
                       snippets=traces[i], rng=np.random.default_rng(50 + i))
            for i in range(6)
        ]
        fleet = build_fleet(devices, fleet_simulator, space).run()
        for reference, actual in zip(sequential, fleet):
            assert_runs_bitwise_equal(reference, actual)

    def test_restricted_space_device(self, fleet_simulator, space):
        """A capped device's governor falls back to the default config
        exactly like the scalar contains-check does."""
        restricted = space.restrict(max_opp_index=2)
        trace = make_trace(1)
        sequential = run_policy_on_snippets(
            fleet_simulator, restricted,
            GovernorPolicy(PerformanceGovernor(restricted)), trace,
            rng=np.random.default_rng(9),
        )
        devices = [
            DeviceSpec(name="capped",
                       policy=GovernorPolicy(PerformanceGovernor(restricted)),
                       snippets=trace, space=restricted,
                       rng=np.random.default_rng(9)),
            DeviceSpec(name="full",
                       policy=GovernorPolicy(PerformanceGovernor(space)),
                       snippets=make_trace(2),
                       rng=np.random.default_rng(10)),
        ]
        engine = build_fleet(devices, fleet_simulator, space)
        fleet = engine.run()
        assert engine.batched_decisions > 0
        assert_runs_bitwise_equal(sequential, fleet[0])
        # The performance governor always asks for the platform maximum,
        # which the cap excludes -> every decision lands on the default.
        default_opp = float(restricted.default_configuration().opp_index("big"))
        np.testing.assert_array_equal(
            fleet[0].log.column("big_opp")[1:],  # first step keeps initial
            np.full(len(trace) - 1, default_opp),
        )

    def test_scenario_throttled_device(self, fleet_simulator, space):
        trace = make_trace(3, extra=1)
        scenario = get_scenario("thermal_throttle").apply(trace, 77)
        assert scenario.throttle_events
        sequential = run_policy_on_scenario(
            fleet_simulator, space,
            GovernorPolicy(OndemandGovernor(space)), scenario,
            rng=np.random.default_rng(21),
        )
        devices = [
            DeviceSpec(name="throttled",
                       policy=GovernorPolicy(OndemandGovernor(space)),
                       scenario=scenario, rng=np.random.default_rng(21)),
            DeviceSpec(name="plain",
                       policy=GovernorPolicy(OndemandGovernor(space)),
                       snippets=make_trace(4), rng=np.random.default_rng(22)),
        ]
        engine = build_fleet(devices, fleet_simulator, space)
        fleet = engine.run()
        assert_runs_bitwise_equal(sequential, fleet[0],
                                  keys=LOG_KEYS + ("throttled",))
        assert fleet[0].log.column("throttled").sum() > 0

    def test_online_il_fleet_matches_sequential(self, trained_framework):
        """Learning devices — batched decides (stacked oracle sweeps +
        MLP inference), batched executions AND batched observes (stacked
        RLS model updates) — stay bitwise identical to independent
        sequential runs."""
        framework = trained_framework
        simulator = framework.simulator
        space = framework.space
        n = 3
        traces = [make_trace(i, factor=0.2) for i in range(n)]
        oracles = [framework.build_oracle_for(trace) for trace in traces]

        def make_policy():
            return framework.build_online_il_policy(
                buffer_capacity=10, update_epochs=10, isolated=True,
            )

        sequential = [
            run_policy_on_snippets(
                simulator, space, make_policy(), traces[i],
                oracle_table=oracles[i], rng=np.random.default_rng(400 + i),
            )
            for i in range(n)
        ]
        devices = [
            DeviceSpec(name=f"d{i}", policy=make_policy(),
                       snippets=traces[i], oracle_table=oracles[i],
                       rng=np.random.default_rng(400 + i))
            for i in range(n)
        ]
        engine = build_fleet(devices, simulator, space)
        fleet = engine.run()
        assert engine.batched_executions == engine.steps_executed
        assert engine.batched_decisions == engine.steps_executed
        assert engine.batched_observes > 0
        for reference, actual in zip(sequential, fleet):
            assert_runs_bitwise_equal(
                reference, actual,
                keys=LOG_KEYS + ("oracle_match", "oracle_energy_j"),
            )
            assert reference.oracle_energy_j == actual.oracle_energy_j

    def test_online_il_scenario_fleet_matches_sequential(
            self, trained_framework):
        """Learning devices under scenario schedules batch through the
        engine's clamp mirror and stay bitwise faithful, alongside a
        plain device in the same decide/observe groups."""
        framework = trained_framework
        simulator = framework.simulator
        space = framework.space

        def make_policy():
            return framework.build_online_il_policy(
                buffer_capacity=10, update_epochs=10, isolated=True,
            )

        traces = [make_trace(i, factor=0.2, extra=1) for i in range(3)]
        scenarios = [
            get_scenario("thermal_throttle").apply(traces[0], 3),
            None,
            get_scenario("phase_churn").apply(traces[2], 9),
        ]
        assert scenarios[0].throttle_events
        sequential = []
        for i, scenario in enumerate(scenarios):
            rng = np.random.default_rng(600 + i)
            if scenario is None:
                sequential.append(run_policy_on_snippets(
                    simulator, space, make_policy(), traces[i], rng=rng,
                ))
            else:
                sequential.append(run_policy_on_scenario(
                    simulator, space, make_policy(), scenario, rng=rng,
                ))
        devices = []
        for i, scenario in enumerate(scenarios):
            rng = np.random.default_rng(600 + i)
            if scenario is None:
                devices.append(DeviceSpec(name=f"d{i}", policy=make_policy(),
                                          snippets=traces[i], rng=rng))
            else:
                devices.append(DeviceSpec(name=f"d{i}", policy=make_policy(),
                                          scenario=scenario, rng=rng))
        engine = build_fleet(devices, simulator, space)
        fleet = engine.run()
        assert engine.batched_decisions > 0
        assert engine.batched_observes > 0
        for i, (reference, actual) in enumerate(zip(sequential, fleet)):
            keys = LOG_KEYS + (("throttled",) if scenarios[i] is not None
                               else ())
            assert_runs_bitwise_equal(reference, actual, keys=keys)
        assert fleet[0].log.column("throttled").sum() > 0

    def test_online_il_restricted_space_device_falls_back(
            self, trained_framework):
        """An online-IL device whose session space differs from its
        policy's space is pinned to the scalar decide/observe paths and
        stays bitwise faithful next to batched siblings."""
        framework = trained_framework
        simulator = framework.simulator
        space = framework.space
        restricted = space.restrict(max_opp_index=2)

        def make_policy():
            return framework.build_online_il_policy(
                buffer_capacity=10, update_epochs=10, isolated=True,
            )

        traces = [make_trace(i, factor=0.2) for i in range(3)]
        sequential = [
            run_policy_on_snippets(
                simulator, restricted if i == 0 else space, make_policy(),
                traces[i], rng=np.random.default_rng(700 + i),
            )
            for i in range(3)
        ]
        devices = [
            DeviceSpec(name=f"d{i}", policy=make_policy(),
                       snippets=traces[i],
                       space=restricted if i == 0 else space,
                       rng=np.random.default_rng(700 + i))
            for i in range(3)
        ]
        engine = build_fleet(devices, simulator, space)
        fleet = engine.run()
        # The mismatched device decides and observes scalar; its two
        # full-space siblings still batch together.
        assert 0 < engine.batched_decisions < engine.steps_executed
        for reference, actual in zip(sequential, fleet):
            assert_runs_bitwise_equal(reference, actual)


# --------------------------------------------------------------------- #
# Capability plumbing
# --------------------------------------------------------------------- #
class TestBatchingEligibility:
    def test_shared_rng_disables_batched_execution(self, platform, space):
        simulator = SoCSimulator(platform, noise_scale=0.01, seed=0)
        shared = np.random.default_rng(0)
        devices = [
            DeviceSpec(name=f"d{i}",
                       policy=GovernorPolicy(OndemandGovernor(space)),
                       snippets=make_trace(i), rng=shared)
            for i in range(3)
        ]
        with pytest.warns(FleetBuildWarning) as record:
            engine = build_fleet(devices, simulator, space)
        assert any("share one" in str(w.message) for w in record)
        engine.run()
        assert engine.batched_executions == 0

    def test_missing_rng_disables_batched_execution(self, platform, space):
        simulator = SoCSimulator(platform, noise_scale=0.01, seed=0)
        devices = [
            DeviceSpec(name="d0", policy=StaticPolicy(space),
                       snippets=make_trace(0), seed=1),
            DeviceSpec(name="d1", policy=StaticPolicy(space),
                       snippets=make_trace(1)),  # no seed, no rng
        ]
        with pytest.warns(FleetBuildWarning) as record:
            engine = build_fleet(devices, simulator, space)
        assert any("no private noise" in str(w.message) for w in record)
        engine.run()
        assert engine.batched_executions > 0  # d0 batches
        assert engine.batched_executions < engine.steps_executed  # d1 scalar

    def test_policy_sharing_session_rng_disables_batched_execution(
            self, platform, space):
        """A policy drawing from the session's generator (RandomPolicy with
        an aliased rng) would desync against pre-drawn noise — the engine
        must fall back to scalar execution for that device."""
        from repro.control.policy import RandomPolicy

        simulator = SoCSimulator(platform, noise_scale=0.01, seed=0)
        shared = np.random.default_rng(5)
        trace = make_trace(0)
        shared_reference = np.random.default_rng(5)
        sequential = run_policy_on_snippets(
            simulator, space, RandomPolicy(space, shared_reference),
            trace, rng=shared_reference,
        )
        devices = [DeviceSpec(name="aliased",
                              policy=RandomPolicy(space, shared),
                              snippets=trace, rng=shared)]
        with pytest.warns(FleetBuildWarning, match="scalar"):
            engine = build_fleet(devices, simulator, space)
        fleet = engine.run()
        assert engine.batched_executions == 0
        assert_runs_bitwise_equal(sequential, fleet[0])

    def test_external_pending_step_is_not_clobbered(self, platform, space):
        simulator = SoCSimulator(platform, noise_scale=0.0, seed=0)
        devices = [DeviceSpec(name="d0",
                              policy=GovernorPolicy(OndemandGovernor(space)),
                              snippets=make_trace(0), seed=1)]
        engine = build_fleet(devices, simulator, space)
        engine.prepare()
        engine.step()
        engine.sessions[0].decide()  # out-of-band decision
        with pytest.raises(RuntimeError, match="unobserved pending"):
            engine.step()

    def test_throttled_session_batches_with_clamp_mirror(self, platform,
                                                         space):
        """Scenario-scheduled sessions batch their decides: the engine
        replays the session's clamp/throttle phase on the batched
        proposals, statement for statement."""
        simulator = SoCSimulator(platform, noise_scale=0.0, seed=0)
        trace = make_trace(0, extra=1)
        scenario = get_scenario("thermal_throttle").apply(trace, 3)
        assert scenario.throttle_events
        sequential = run_policy_on_scenario(
            simulator, space, GovernorPolicy(OndemandGovernor(space)),
            scenario,
        )
        devices = [DeviceSpec(name="d0",
                              policy=GovernorPolicy(OndemandGovernor(space)),
                              scenario=scenario, seed=4)]
        engine = build_fleet(devices, simulator, space)
        fleet = engine.run()
        assert engine.batched_decisions == engine.steps_executed
        assert_runs_bitwise_equal(sequential, fleet[0],
                                  keys=LOG_KEYS + ("throttled",))
        assert fleet[0].log.column("throttled").sum() > 0

    def test_gated_space_governor_not_batchable(self, platform):
        gated = ConfigurationSpace(platform, allow_core_gating=True,
                                   gated_clusters=("big",))
        policy = GovernorPolicy(OndemandGovernor(gated))
        assert policy.fleet_decide_key() is None

    def test_static_and_governor_keys_differ(self, space):
        static = StaticPolicy(space)
        governor = GovernorPolicy(OndemandGovernor(space))
        assert static.fleet_decide_key() is not None
        assert governor.fleet_decide_key() is not None
        assert static.fleet_decide_key() != governor.fleet_decide_key()

    def test_governor_params_split_groups(self, space):
        a = GovernorPolicy(OndemandGovernor(space, up_threshold=0.8))
        b = GovernorPolicy(OndemandGovernor(space, up_threshold=0.9))
        assert a.fleet_decide_key() != b.fleet_decide_key()

    def test_subclasses_overriding_decide_are_not_batchable(self, space):
        """A subclass with its own scalar rule must not silently replay the
        parent's batched rule in lockstep fleets."""

        class TweakedStatic(StaticPolicy):
            def decide(self, counters):
                return self.configuration

        assert TweakedStatic(space).fleet_decide_key() is None

        class TweakedOndemand(OndemandGovernor):
            def decide(self, counters):
                return super().decide(counters)

        assert GovernorPolicy(TweakedOndemand(space)).fleet_decide_key() is None

        class TweakedGovernorPolicy(GovernorPolicy):
            def decide(self, counters):
                return super().decide(counters)

        policy = TweakedGovernorPolicy(OndemandGovernor(space))
        assert policy.fleet_decide_key() is None

    def test_governor_subclass_with_own_batch_rule_stays_batchable(self, space):
        """Defining decide AND its decide_batch mirror is the escape hatch."""

        class PairedGovernor(OndemandGovernor):
            def decide(self, counters):
                return super().decide(counters)

            def decide_batch(self, utilization, current_indices):
                return super().decide_batch(utilization, current_indices)

        assert GovernorPolicy(PairedGovernor(space)).fleet_decide_key() is not None


class TestOppLookupTable:
    def test_lookup_matches_index_of(self, space):
        table = space.opp_lookup_table()
        assert table is not None
        for i, config in enumerate(space):
            key = tuple(config.opp_index(name) for name in space.cluster_order)
            assert table[key] == i

    def test_restricted_space_marks_missing_combos(self, space):
        restricted = space.restrict(max_opp_index=1)
        table = restricted.opp_lookup_table()
        assert table is not None
        assert table.max() == len(restricted) - 1
        assert (table == -1).any()

    def test_gated_space_has_no_lookup(self, platform):
        gated = ConfigurationSpace(platform, allow_core_gating=True)
        assert gated.opp_lookup_table() is None


class TestDeviceSpec:
    def test_requires_a_trace(self, space):
        with pytest.raises(ValueError, match="no trace"):
            DeviceSpec(name="d", policy=StaticPolicy(space))

    def test_rejects_trace_and_scenario(self, space):
        trace = make_trace(0)
        scenario = get_scenario("phase_churn").apply(trace, 1)
        with pytest.raises(ValueError, match="not both"):
            DeviceSpec(name="d", policy=StaticPolicy(space),
                       snippets=trace, scenario=scenario)

    def test_seed_derives_private_stream(self, platform, space):
        simulator = SoCSimulator(platform, noise_scale=0.01, seed=0)
        devices = [DeviceSpec(name="d", policy=StaticPolicy(space),
                              snippets=make_trace(0), seed=123)]
        first = build_fleet(devices, simulator, space).run()
        devices = [DeviceSpec(name="d", policy=StaticPolicy(space),
                              snippets=make_trace(0), seed=123)]
        second = build_fleet(devices, simulator, space).run()
        assert_runs_bitwise_equal(first[0], second[0])


class TestFleetExperiment:
    def test_run_fleet_is_deterministic(self):
        from repro.experiments.fleet import run_fleet
        from repro.experiments.scales import TINY

        first = run_fleet(TINY, seed=0, n_devices=2)
        second = run_fleet(TINY, seed=0, n_devices=2)
        assert first.aggregates == second.aggregates
        assert first.n_devices == 2
        assert first.total_steps == sum(d.steps for d in first.devices)
        assert first.batched_execution_fraction == 1.0
        scenarios = [d.scenario for d in first.devices]
        assert scenarios[0] == ""  # baseline device
        assert any(scenarios[1:])  # scenario rotation kicked in
