"""Property-based randomized invariant tests.

No hypothesis-style library is available in the environment, so each
property is checked over a seeded family of random platforms, snippets,
traces and configurations — every draw is reproducible from the parametrized
seed.  The invariants:

* physics: energy/time/power of any execution are positive and finite;
* batch == scalar parity for all three ``evaluate_batch`` engines
  (SoC, GPU, NoC) on randomized inputs;
* Oracle optimality: no policy can beat the Oracle table on the same
  snippets under noise-free execution, full or restricted space;
* decision-tree classifiers: ``predict`` equals the argmax of
  ``predict_proba`` for every sample.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.policy import RandomPolicy, StaticPolicy
from repro.core.framework import run_policy_on_snippets
from repro.core.objectives import ENERGY
from repro.core.oracle import build_oracle
from repro.gpu.gpu import GPUConfiguration, default_integrated_gpu
from repro.gpu.simulator import GPUSimulator
from repro.ml.tree import DecisionTreeClassifier
from repro.noc.router import RouterConfig
from repro.noc.simulator import NoCSimulator
from repro.noc.topology import MeshTopology
from repro.noc.traffic import UniformRandomTraffic
from repro.soc.configuration import ConfigurationSpace
from repro.soc.platform import generic_big_little
from repro.soc.simulator import SoCSimulator
from repro.soc.snippet import Snippet, SnippetCharacteristics
from repro.workloads.graphics import get_graphics_workload

PROPERTY_SEEDS = list(range(8))


def random_platform(rng: np.random.Generator):
    return generic_big_little(
        n_big_cores=int(rng.integers(1, 5)),
        n_little_cores=int(rng.integers(1, 5)),
        n_big_levels=int(rng.integers(2, 7)),
        n_little_levels=int(rng.integers(2, 5)),
        big_max_frequency_hz=float(rng.uniform(1.6e9, 2.8e9)),
        little_max_frequency_hz=float(rng.uniform(0.8e9, 1.6e9)),
    )


def random_characteristics(rng: np.random.Generator) -> SnippetCharacteristics:
    return SnippetCharacteristics(
        memory_intensity=float(rng.uniform(0.0, 25.0)),
        memory_access_rate=float(rng.uniform(0.0, 1.0)),
        external_request_rate=float(rng.uniform(0.0, 1.0)),
        branch_misprediction_mpki=float(rng.uniform(0.0, 12.0)),
        ilp_factor=float(rng.uniform(0.1, 1.0)),
        parallel_fraction=float(rng.uniform(0.0, 1.0)),
        thread_count=int(rng.integers(1, 9)),
        big_fraction=float(rng.uniform(0.05, 1.0)),
    )


def random_snippet(rng: np.random.Generator, index: int = 0,
                   application: str = "random") -> Snippet:
    return Snippet(
        application=application,
        index=index,
        n_instructions=float(rng.uniform(1e6, 5e7)),
        characteristics=random_characteristics(rng),
    )


@pytest.mark.parametrize("seed", PROPERTY_SEEDS)
class TestPhysicalInvariants:
    def test_energy_time_power_positive(self, seed):
        rng = np.random.default_rng(seed)
        platform = random_platform(rng)
        space = ConfigurationSpace(platform)
        simulator = SoCSimulator(platform, noise_scale=0.02, seed=seed)
        for _ in range(4):
            snippet = random_snippet(rng)
            config = space.random_configuration(rng)
            for result in (simulator.run_snippet(snippet, config, rng=rng),
                           simulator.evaluate_expected(snippet, config)):
                assert np.isfinite(result.energy_j) and result.energy_j > 0.0
                assert np.isfinite(result.execution_time_s)
                assert result.execution_time_s > 0.0
                assert np.isfinite(result.average_power_w)
                assert result.average_power_w > 0.0
                counters = result.counters.as_dict()
                assert all(np.isfinite(v) and v >= 0.0
                           for v in counters.values()), counters


@pytest.mark.parametrize("seed", PROPERTY_SEEDS)
class TestBatchScalarParity:
    def test_soc_batch_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        platform = random_platform(rng)
        space = ConfigurationSpace(platform)
        simulator = SoCSimulator(platform, noise_scale=0.0, seed=seed)
        snippet = random_snippet(rng)
        batch = simulator.evaluate_expected_batch(snippet, space)
        for i, config in enumerate(space):
            reference = simulator.evaluate_expected(snippet, config)
            assert batch.energy_j[i] == reference.energy_j
            assert batch.execution_time_s[i] == reference.execution_time_s
            assert batch.average_power_w[i] == reference.average_power_w

    def test_gpu_batch_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        gpu_spec = default_integrated_gpu()
        gpu = GPUSimulator(gpu_spec, seed=seed)
        trace = get_graphics_workload(
            "nenamark2", gpu=gpu_spec,
            n_frames=int(rng.integers(5, 30)), seed=seed,
        )
        configs = [
            GPUConfiguration(
                opp_index=int(rng.integers(0, len(gpu_spec.opps))),
                active_slices=int(rng.integers(1, gpu_spec.n_slices + 1)),
            )
            for _ in range(3)
        ]
        batch = gpu.evaluate_batch(trace, configs)
        for i, config in enumerate(configs):
            reference = gpu.run_fixed(trace, config, deterministic=True)
            materialized = batch.summary_at(i)
            assert materialized.gpu_energy_j == reference.gpu_energy_j
            assert materialized.achieved_fps == reference.achieved_fps
            assert (materialized.deadline_miss_rate
                    == reference.deadline_miss_rate)

    def test_noc_batch_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        width = int(rng.integers(2, 4))
        topology = MeshTopology(width, width)
        rate = float(rng.uniform(0.02, 0.10))
        n_cycles = int(rng.integers(40, 120))
        configs = [
            RouterConfig(),
            RouterConfig(router_delay_cycles=int(rng.integers(2, 6))),
        ]
        batch = NoCSimulator(topology).evaluate_batch(
            UniformRandomTraffic(topology, injection_rate=rate, seed=seed),
            configs, n_cycles=n_cycles,
        )
        for config, result in zip(configs, batch):
            traffic = UniformRandomTraffic(topology, injection_rate=rate,
                                           seed=seed)
            reference = NoCSimulator(topology, config).run_packets(
                traffic.generate(n_cycles), n_cycles
            )
            assert (
                [(p.packet_id, p.ejection_cycle) for p in result.delivered_packets]
                == [(p.packet_id, p.ejection_cycle)
                    for p in reference.delivered_packets]
            )


@pytest.mark.parametrize("seed", PROPERTY_SEEDS)
class TestOracleOptimality:
    def _random_trace(self, rng, n):
        return [random_snippet(rng, index=i) for i in range(n)]

    def test_no_policy_beats_the_oracle(self, seed):
        rng = np.random.default_rng(seed)
        platform = random_platform(rng)
        space = ConfigurationSpace(platform)
        simulator = SoCSimulator(platform, noise_scale=0.0, seed=seed)
        snippets = self._random_trace(rng, int(rng.integers(3, 8)))
        table = build_oracle(simulator, space, snippets, ENERGY)
        policies = [
            StaticPolicy(space, space.random_configuration(rng)),
            RandomPolicy(space, seed=seed),
        ]
        for policy in policies:
            run = run_policy_on_snippets(simulator, space, policy, snippets,
                                         oracle_table=table)
            oracle_energy = table.total_cost(snippets)
            assert oracle_energy <= run.total_energy_j * (1.0 + 1e-12)
            # Per snippet too: the entry is the minimum over the space.
            for result in run.results:
                entry = table.entry(result.snippet)
                assert entry.best_cost <= result.energy_j * (1.0 + 1e-12)

    def test_restricted_oracle_never_beats_full(self, seed):
        rng = np.random.default_rng(seed)
        platform = random_platform(rng)
        space = ConfigurationSpace(platform)
        cap = int(rng.integers(0, max(1, len(platform.clusters["big"].opps) - 1)))
        restricted = space.restrict(max_opp_index=cap)
        simulator = SoCSimulator(platform, noise_scale=0.0, seed=seed)
        snippets = self._random_trace(rng, 4)
        full = build_oracle(simulator, space, snippets, ENERGY)
        part = build_oracle(simulator, restricted, snippets, ENERGY)
        for snippet in snippets:
            assert (full.entry(snippet).best_cost
                    <= part.entry(snippet).best_cost * (1.0 + 1e-12))
            assert restricted.contains(part.entry(snippet).best_configuration)


@pytest.mark.parametrize("seed", PROPERTY_SEEDS)
class TestTreeClassifierConsistency:
    @pytest.mark.parametrize("split_search", ["vectorized", "scalar"])
    def test_predict_matches_proba_argmax(self, seed, split_search):
        rng = np.random.default_rng(seed)
        n_samples = int(rng.integers(30, 90))
        n_classes = int(rng.integers(2, 5))
        features = rng.normal(size=(n_samples, 3))
        # Labels correlated with the features so the tree has real splits,
        # offset so class labels are not simply 0..n-1.
        labels = (np.digitize(features[:, 0] + 0.3 * features[:, 1],
                              np.linspace(-1.5, 1.5, n_classes - 1))
                  + 5) if n_classes > 1 else np.full(n_samples, 5)
        tree = DecisionTreeClassifier(max_depth=6, split_search=split_search)
        tree.fit(features, labels)
        probe = np.vstack([features, rng.normal(size=(20, 3))])
        predictions = tree.predict(probe)
        probabilities = tree.predict_proba(probe)
        assert probabilities.shape == (len(probe), len(tree.classes_))
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)
        np.testing.assert_array_equal(
            predictions, tree.classes_[np.argmax(probabilities, axis=1)]
        )
