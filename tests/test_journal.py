"""Tests for the durable run journal (crash-safety substrate).

The recovery invariant leans entirely on the journal's read semantics:
a crash mid-append must come back as a discarded torn tail (recoverable),
while bit rot inside the file must raise loudly (that journal cannot be
trusted).  These tests pin both classes, the fsync'd framing round-trip,
and the reopen-truncates-torn-tail behaviour that keeps a recovered
journal appendable.
"""

from __future__ import annotations

import pytest

from repro.service.journal import (
    JOURNAL_MAGIC,
    Journal,
    JournalError,
    file_sha256,
    read_journal,
)
from repro.service.protocol import (
    DispatchCommand,
    RunGenesis,
    StepBoundary,
)


def _sample_messages():
    return [
        RunGenesis(config={"policy": "ondemand", "n_devices": 2}),
        DispatchCommand(command="restrict-space", device="device-00",
                        value=1, idempotency_key="k-1", apply_round=2),
        StepBoundary(round=1, advanced=2),
        StepBoundary(round=2, advanced=2),
    ]


@pytest.fixture()
def journal_path(tmp_path):
    path = tmp_path / "journal.bin"
    with Journal(path, create=True) as journal:
        for message in _sample_messages():
            journal.append(message)
    return path


class TestRoundTrip:
    def test_append_and_read_back(self, journal_path):
        messages, truncated = read_journal(journal_path)
        assert messages == _sample_messages()
        assert truncated is False

    def test_reopen_appends_after_existing_records(self, journal_path):
        with Journal(journal_path) as journal:
            journal.append(StepBoundary(round=3, advanced=1))
        messages, truncated = read_journal(journal_path)
        assert messages == _sample_messages() + [StepBoundary(round=3,
                                                              advanced=1)]
        assert truncated is False

    def test_create_refuses_existing_file(self, journal_path):
        with pytest.raises(JournalError, match="already exists"):
            Journal(journal_path, create=True)

    def test_open_missing_file_raises(self, tmp_path):
        with pytest.raises(JournalError, match="does not exist"):
            Journal(tmp_path / "absent.bin")

    def test_empty_journal_reads_empty(self, tmp_path):
        path = tmp_path / "empty.bin"
        Journal(path, create=True).close()
        assert read_journal(path) == ([], False)


class TestCorruption:
    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "foreign.bin"
        path.write_bytes(b"definitely not a journal")
        with pytest.raises(JournalError, match="bad magic"):
            read_journal(path)
        with pytest.raises(JournalError, match="bad magic"):
            Journal(path)

    @pytest.mark.parametrize("cut", [1, 10, 30])
    def test_torn_tail_is_discarded(self, journal_path, cut):
        """A crash mid-append loses only the final, unacknowledged record."""
        data = journal_path.read_bytes()
        journal_path.write_bytes(data[:-cut])
        messages, truncated = read_journal(journal_path)
        assert truncated is True
        assert messages == _sample_messages()[:-1]

    def test_torn_header_at_eof_is_discarded(self, journal_path):
        data = journal_path.read_bytes()
        journal_path.write_bytes(data + b"\x00\x00")  # 2 bytes of header
        messages, truncated = read_journal(journal_path)
        assert truncated is True
        assert messages == _sample_messages()

    def test_corrupt_final_frame_is_torn_tail(self, journal_path):
        data = bytearray(journal_path.read_bytes())
        data[-3] ^= 0xFF  # flip a payload bit of the final record
        journal_path.write_bytes(bytes(data))
        messages, truncated = read_journal(journal_path)
        assert truncated is True
        assert messages == _sample_messages()[:-1]

    def test_midfile_corruption_raises(self, journal_path):
        """Bit rot with intact records after it: the journal is untrusted."""
        data = bytearray(journal_path.read_bytes())
        data[len(JOURNAL_MAGIC) + 40] ^= 0xFF  # inside the first payload
        journal_path.write_bytes(bytes(data))
        with pytest.raises(JournalError, match="mid-file corruption"):
            read_journal(journal_path)
        with pytest.raises(JournalError, match="mid-file corruption"):
            Journal(journal_path)  # must not be extended either

    def test_checksum_valid_but_undecodable_raises(self, tmp_path):
        import hashlib
        import struct

        path = tmp_path / "journal.bin"
        payload = b"not json at all"
        path.write_bytes(JOURNAL_MAGIC + struct.pack(">I", len(payload))
                         + hashlib.sha256(payload).digest() + payload)
        with pytest.raises(JournalError, match="undecodable"):
            read_journal(path)

    def test_reopen_truncates_torn_tail_before_appending(self, journal_path):
        """Appending after a torn tail must not bury garbage mid-file."""
        data = journal_path.read_bytes()
        journal_path.write_bytes(data[:-7])  # tear the last record
        with Journal(journal_path) as journal:
            journal.append(StepBoundary(round=99, advanced=1))
        messages, truncated = read_journal(journal_path)
        assert truncated is False
        assert messages == _sample_messages()[:-1] + [
            StepBoundary(round=99, advanced=1)
        ]


class TestFileSha256:
    def test_matches_hashlib(self, journal_path):
        import hashlib

        assert file_sha256(journal_path) == hashlib.sha256(
            journal_path.read_bytes()).hexdigest()
