"""Equivalence suite for the vectorized ML kernels and the parallel runner.

The vectorized CART split search, the level-by-level batch ``predict`` /
``predict_proba`` traversal, the vectorized trailing moving average and the
process-parallel multi-seed fan-out must all be *drop-in* replacements: every
test here pins them bitwise (not approximately) against the retained scalar
or sequential reference paths across regression and classification fixtures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import ExperimentRunner
from repro.ml.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    _best_split_classification,
    _best_split_classification_scalar,
    _best_split_regression,
    _best_split_regression_scalar,
    trees_identical,
)
from repro.utils.stats import trailing_nanmean


def _regression_fixtures():
    """(x, y) regression fixtures spanning the tricky split-search regimes."""
    rng = np.random.default_rng(1234)
    fixtures = []
    # Smooth random data: many candidate thresholds per feature.
    x = rng.normal(size=(120, 6))
    fixtures.append(("smooth", x, x @ rng.normal(size=6) + rng.normal(size=120)))
    # Quantised features: duplicated values exercise the equal-neighbour skip.
    xq = np.round(rng.normal(size=(90, 4)) * 2) / 2
    fixtures.append(("quantised", xq, rng.normal(size=90)))
    # Constant feature column: never splittable.
    xc = rng.normal(size=(60, 3))
    xc[:, 1] = 7.5
    fixtures.append(("constant-col", xc, xc[:, 0] ** 2 + rng.normal(size=60)))
    # Monotone target: score valley with a long improvement chain.
    xm = np.sort(rng.normal(size=(200, 2)), axis=0)
    fixtures.append(("monotone", xm, np.arange(200.0)))
    # Tiny dataset at the min_samples boundary.
    fixtures.append(("tiny", rng.normal(size=(5, 2)), rng.normal(size=5)))
    return fixtures


def _classification_fixtures():
    """(x, y) classification fixtures (labels deliberately non-contiguous)."""
    rng = np.random.default_rng(99)
    fixtures = []
    x = rng.normal(size=(150, 5))
    fixtures.append(("random", x, rng.choice([3, 7, 9, 12], size=150)))
    xq = np.round(rng.normal(size=(80, 3)), 1)
    fixtures.append(("quantised", xq, (xq[:, 0] > 0).astype(int) * 5))
    xs = rng.normal(size=(40, 2))
    fixtures.append(("binary", xs, (xs[:, 0] + xs[:, 1] > 0).astype(int)))
    fixtures.append(("tiny", rng.normal(size=(6, 2)), np.array([0, 1, 0, 1, 1, 0])))
    return fixtures


_TREE_PARAMS = [
    dict(max_depth=8, min_samples_split=4, min_samples_leaf=2),
    dict(max_depth=3, min_samples_split=2, min_samples_leaf=1),
    dict(max_depth=12, min_samples_split=6, min_samples_leaf=4),
]


class TestRegressionSplitEquivalence:
    @pytest.mark.parametrize("name,x,y", _regression_fixtures())
    @pytest.mark.parametrize("params", _TREE_PARAMS)
    def test_fitted_trees_identical(self, name, x, y, params):
        vectorized = DecisionTreeRegressor(split_search="vectorized",
                                           **params).fit(x, y)
        scalar = DecisionTreeRegressor(split_search="scalar", **params).fit(x, y)
        assert trees_identical(vectorized, scalar)

    @pytest.mark.parametrize("min_leaf", [1, 2, 5])
    def test_single_split_search_identical(self, min_leaf):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(64, 5))
        y = x[:, 2] * 3.0 + rng.normal(size=64)
        assert (_best_split_regression(x, y, min_leaf)
                == _best_split_regression_scalar(x, y, min_leaf))

    def test_unsplittable_data_returns_no_feature(self):
        x = np.full((20, 3), 1.5)
        y = np.arange(20.0)
        feature, _, _ = _best_split_regression(x, y, 1)
        assert feature is None
        assert _best_split_regression_scalar(x, y, 1)[0] is None


class TestClassificationSplitEquivalence:
    @pytest.mark.parametrize("name,x,y", _classification_fixtures())
    @pytest.mark.parametrize("params", _TREE_PARAMS)
    def test_fitted_trees_identical(self, name, x, y, params):
        vectorized = DecisionTreeClassifier(split_search="vectorized",
                                            **params).fit(x, y)
        scalar = DecisionTreeClassifier(split_search="scalar", **params).fit(x, y)
        np.testing.assert_array_equal(vectorized.classes_, scalar.classes_)
        assert trees_identical(vectorized, scalar)

    @pytest.mark.parametrize("min_leaf", [1, 3])
    def test_single_split_search_identical(self, min_leaf):
        rng = np.random.default_rng(21)
        x = rng.normal(size=(70, 4))
        y = rng.integers(0, 5, size=70)
        assert (_best_split_classification(x, y, 5, min_leaf)
                == _best_split_classification_scalar(x, y, 5, min_leaf))

    def test_class_counts_use_integer_dtype(self):
        """Class counts are exact integers — no float accumulation drift."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(50, 3))
        y = rng.integers(0, 3, size=50)
        model = DecisionTreeClassifier().fit(x, y)
        assert np.issubdtype(model.root_.class_counts.dtype, np.integer)
        assert model.root_.class_counts.sum() == 50

    def test_invalid_split_search_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(split_search="gpu")


class TestBatchPredictEquivalence:
    @pytest.mark.parametrize("name,x,y", _regression_fixtures())
    def test_regression_predict_matches_row_walk(self, name, x, y):
        model = DecisionTreeRegressor(max_depth=8).fit(x, y)
        rng = np.random.default_rng(5)
        queries = rng.normal(size=(200, x.shape[1]))
        batch = model.predict(queries)
        reference = np.array([model._predict_row(row) for row in queries])
        np.testing.assert_array_equal(batch, reference)

    @pytest.mark.parametrize("name,x,y", _classification_fixtures())
    def test_classification_predict_matches_row_walk(self, name, x, y):
        model = DecisionTreeClassifier(max_depth=8).fit(x, y)
        rng = np.random.default_rng(6)
        queries = rng.normal(size=(200, x.shape[1]))
        batch = model.predict(queries)
        reference = model.classes_[
            np.array([int(model._predict_row(row)) for row in queries])
        ]
        np.testing.assert_array_equal(batch, reference)

    def test_predict_on_training_points_hits_leaf_means(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(40, 2))
        y = rng.normal(size=40)
        model = DecisionTreeRegressor(max_depth=4).fit(x, y)
        np.testing.assert_array_equal(
            model.predict(x), np.array([model._predict_row(r) for r in x])
        )

    def test_predict_proba_matches_leaf_distributions(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(120, 4))
        y = rng.choice([2, 5, 11], size=120)
        model = DecisionTreeClassifier(max_depth=5).fit(x, y)
        queries = rng.normal(size=(300, 4))
        proba = model.predict_proba(queries)
        assert proba.shape == (300, 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        # argmax over the distribution agrees with predict() wherever the
        # leaf has a unique majority class (ties resolve to argmax in both).
        predicted = model.predict(queries)
        np.testing.assert_array_equal(model.classes_[np.argmax(proba, axis=1)],
                                      predicted)
        # Probabilities are exact leaf-count fractions.
        flat_counts = model._flatten().class_counts
        leaves = model._batch_leaf_indices(queries)
        expected = flat_counts[leaves] / flat_counts[leaves].sum(axis=1,
                                                                keepdims=True)
        np.testing.assert_array_equal(proba, expected)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((2, 2)))
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict_proba(np.zeros((2, 2)))

    def test_refit_invalidates_flat_cache(self):
        rng = np.random.default_rng(10)
        x = rng.normal(size=(50, 3))
        model = DecisionTreeRegressor(max_depth=4).fit(x, x[:, 0])
        first = model.predict(x)
        model.fit(x, -x[:, 0])
        second = model.predict(x)
        assert not np.array_equal(first, second)
        np.testing.assert_array_equal(
            second, np.array([model._predict_row(r) for r in x])
        )


class TestTrailingNanmean:
    def _reference(self, values, window):
        out = np.empty(len(values))
        for i in range(len(values)):
            lo = max(0, i - window + 1)
            chunk = values[lo:i + 1]
            finite = chunk[~np.isnan(chunk)]
            out[i] = finite.sum() / len(finite) if len(finite) else np.nan
        return out

    @pytest.mark.parametrize("window", [1, 3, 10, 50])
    def test_indicator_series_bitwise(self, window):
        rng = np.random.default_rng(11)
        values = rng.choice([0.0, 1.0, np.nan], size=200, p=[0.4, 0.4, 0.2])
        np.testing.assert_array_equal(trailing_nanmean(values, window),
                                      self._reference(values, window))

    def test_general_floats_close_and_nan_positions_identical(self):
        rng = np.random.default_rng(12)
        values = rng.normal(size=300)
        values[rng.random(300) < 0.3] = np.nan
        result = trailing_nanmean(values, 7)
        reference = self._reference(values, 7)
        np.testing.assert_array_equal(np.isnan(result), np.isnan(reference))
        mask = ~np.isnan(reference)
        np.testing.assert_allclose(result[mask], reference[mask], rtol=1e-12)

    def test_all_nan_window_yields_nan_without_warning(self):
        values = np.array([np.nan, np.nan, 1.0, np.nan])
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = trailing_nanmean(values, 2)
        np.testing.assert_array_equal(np.isnan(result),
                                      [True, True, False, False])
        assert result[2] == 1.0 and result[3] == 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            trailing_nanmean(np.zeros(4), 0)
        with pytest.raises(ValueError):
            trailing_nanmean(np.zeros((2, 2)), 3)
        assert trailing_nanmean(np.empty(0), 3).shape == (0,)


class TestParallelRunnerEquivalence:
    def test_parallel_fan_out_matches_sequential(self):
        """Job count must not change any result (figure2, 2 seeds, tiny)."""
        sequential = ExperimentRunner(scale="tiny", seeds=(0, 1)).run("figure2")
        with ExperimentRunner(scale="tiny", seeds=(0, 1), jobs=2) as runner:
            parallel = runner.run("figure2")
        assert sequential.seeds == parallel.seeds
        for seq_run, par_run in zip(sequential.seed_runs, parallel.seed_runs):
            assert seq_run.seed == par_run.seed
            np.testing.assert_array_equal(seq_run.result.measured_ms,
                                          par_run.result.measured_ms)
            np.testing.assert_array_equal(seq_run.result.predicted_ms,
                                          par_run.result.predicted_ms)
        assert (sequential.spec.format_result(sequential.results[0])
                == parallel.spec.format_result(parallel.results[0]))

    def test_jobs_clamped_to_seed_count(self):
        run = ExperimentRunner(scale="tiny", seeds=(0,), jobs=8).run("table1")
        assert run.seeds == [0]

    def test_pool_persists_across_experiments(self):
        """Successive run() calls reuse one pool and stay correct."""
        with ExperimentRunner(scale="tiny", seeds=(0, 1), jobs=2) as runner:
            first = runner.run("table1")
            pool = runner._executor
            assert pool is not None
            second = runner.run("figure2")
            assert runner._executor is pool
        assert runner._executor is None
        assert first.seeds == second.seeds == [0, 1]
        reference = ExperimentRunner(scale="tiny", seeds=(0, 1)).run("figure2")
        for par, seq in zip(second.seed_runs, reference.seed_runs):
            np.testing.assert_array_equal(par.result.measured_ms,
                                          seq.result.measured_ms)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(scale="tiny", seeds=(0,), jobs=0)
        runner = ExperimentRunner(scale="tiny", seeds=(0,))
        with pytest.raises(ValueError):
            runner.run("table1", jobs=-1)

    def test_generator_seeds_rejected_in_parallel(self):
        """A shared stateful Generator cannot honour the any-job-count
        invariant, so the parallel path refuses it outright."""
        rng = np.random.default_rng(0)
        runner = ExperimentRunner(scale="tiny", seeds=(rng, rng), jobs=2)
        with pytest.raises(ValueError, match="int or None seeds"):
            runner.run("table1")
        # The same seeds run fine sequentially.
        assert len(runner.run("table1", jobs=1).seed_runs) == 2
