"""Tests for the batch regression models (linear, ridge, trees, forest, SVR, kNN)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    BaggedTreesRegressor,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    KNeighborsRegressor,
    LinearRegressor,
    RidgeRegressor,
    SupportVectorRegressor,
    mean_absolute_error,
    r2_score,
)


def make_linear_data(rng, n=120, d=4, noise=0.05):
    x = rng.normal(size=(n, d))
    coef = rng.normal(size=d)
    y = x @ coef + 0.7 + rng.normal(scale=noise, size=n)
    return x, y, coef


class TestLinearRegressor:
    def test_recovers_coefficients(self, rng):
        x, y, coef = make_linear_data(rng, noise=0.0)
        model = LinearRegressor().fit(x, y)
        assert np.allclose(model.coef_, coef, atol=1e-8)
        assert model.intercept_ == pytest.approx(0.7, abs=1e-8)

    def test_score_near_one_on_clean_data(self, rng):
        x, y, _ = make_linear_data(rng)
        assert LinearRegressor().fit(x, y).score(x, y) > 0.98

    def test_no_intercept(self, rng):
        x = rng.normal(size=(50, 2))
        y = x @ np.array([1.0, -2.0])
        model = LinearRegressor(fit_intercept=False).fit(x, y)
        assert model.intercept_ == 0.0
        assert np.allclose(model.coef_, [1.0, -2.0], atol=1e-8)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegressor().predict(np.zeros((1, 2)))

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            LinearRegressor().fit(rng.normal(size=(10, 2)), rng.normal(size=9))

    def test_1d_input_reshaped(self, rng):
        x, y, _ = make_linear_data(rng, d=3)
        model = LinearRegressor().fit(x, y)
        single = model.predict(x[0])
        assert single.shape == (1,)


class TestRidgeRegressor:
    def test_matches_ols_at_zero_alpha(self, rng):
        x, y, _ = make_linear_data(rng)
        ols = LinearRegressor().fit(x, y)
        ridge = RidgeRegressor(alpha=0.0).fit(x, y)
        assert np.allclose(ols.coef_, ridge.coef_, atol=1e-6)

    def test_shrinkage_with_large_alpha(self, rng):
        x, y, _ = make_linear_data(rng)
        small = RidgeRegressor(alpha=0.01).fit(x, y)
        large = RidgeRegressor(alpha=1e4).fit(x, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegressor(alpha=-1.0)

    def test_no_intercept_mode(self, rng):
        x = rng.normal(size=(40, 2))
        y = x @ np.array([2.0, 1.0])
        model = RidgeRegressor(alpha=1e-6, fit_intercept=False).fit(x, y)
        assert model.intercept_ == 0.0


class TestDecisionTree:
    def test_regressor_fits_step_function(self, rng):
        x = rng.uniform(0, 1, size=(200, 1))
        y = (x[:, 0] > 0.5).astype(float) * 10.0
        model = DecisionTreeRegressor(max_depth=3).fit(x, y)
        assert mean_absolute_error(y, model.predict(x)) < 0.5

    def test_regressor_constant_target(self, rng):
        x = rng.normal(size=(30, 2))
        y = np.full(30, 3.0)
        model = DecisionTreeRegressor().fit(x, y)
        assert np.allclose(model.predict(x), 3.0)

    def test_depth_limit_respected(self, rng):
        x = rng.normal(size=(200, 3))
        y = rng.normal(size=200)
        model = DecisionTreeRegressor(max_depth=3).fit(x, y)
        assert model.depth() <= 3

    def test_classifier_separable_data(self, rng):
        x = np.vstack([rng.normal(-2, 0.3, size=(50, 2)),
                       rng.normal(2, 0.3, size=(50, 2))])
        y = np.array([0] * 50 + [1] * 50)
        model = DecisionTreeClassifier(max_depth=4).fit(x, y)
        assert model.score(x, y) > 0.95

    def test_classifier_preserves_label_values(self, rng):
        x = rng.normal(size=(60, 2))
        y = rng.choice([3, 7, 11], size=60)
        model = DecisionTreeClassifier(max_depth=5).fit(x, y)
        assert set(np.unique(model.predict(x))).issubset({3, 7, 11})

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_node_count_positive(self, rng):
        x = rng.normal(size=(50, 2))
        y = x[:, 0]
        model = DecisionTreeRegressor(max_depth=4).fit(x, y)
        assert model.node_count() >= 1

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=10, max_value=60))
    def test_regressor_predictions_within_target_range(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=(n, 2))
        y = rng.uniform(-5, 5, size=n)
        model = DecisionTreeRegressor(max_depth=5, min_samples_split=2,
                                      min_samples_leaf=1).fit(x, y)
        predictions = model.predict(x)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9


class TestBaggedTrees:
    def test_fits_nonlinear_function(self, rng):
        x = rng.uniform(-2, 2, size=(200, 2))
        y = np.sin(x[:, 0]) + x[:, 1] ** 2
        model = BaggedTreesRegressor(n_estimators=8, max_depth=6, seed=0).fit(x, y)
        assert r2_score(y, model.predict(x)) > 0.8

    def test_max_features_subsampling(self, rng):
        x = rng.normal(size=(80, 4))
        y = x[:, 0]
        model = BaggedTreesRegressor(n_estimators=5, max_features=0.5, seed=1).fit(x, y)
        assert all(len(subset) == 2 for subset in model.feature_subsets_)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            BaggedTreesRegressor().predict(np.zeros((1, 2)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BaggedTreesRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            BaggedTreesRegressor(max_features=1.5)


class TestSVR:
    def test_fits_linear_function(self, rng):
        x = rng.uniform(-1, 1, size=(60, 2))
        y = 2.0 * x[:, 0] - x[:, 1] + 0.5
        model = SupportVectorRegressor(kernel="linear", c=50.0, epsilon=0.01)
        model.fit(x, y)
        assert mean_absolute_error(y, model.predict(x)) < 0.2

    def test_rbf_fits_smooth_nonlinear_function(self, rng):
        x = rng.uniform(-2, 2, size=(80, 1))
        y = np.sin(x[:, 0])
        model = SupportVectorRegressor(kernel="rbf", c=50.0, epsilon=0.02,
                                       gamma=1.0).fit(x, y)
        assert mean_absolute_error(y, model.predict(x)) < 0.25

    def test_support_vector_count(self, rng):
        x = rng.uniform(-1, 1, size=(40, 1))
        y = x[:, 0]
        model = SupportVectorRegressor(kernel="linear").fit(x, y)
        assert 0 < model.n_support_ <= 40

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            SupportVectorRegressor(kernel="poly")

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SupportVectorRegressor().predict(np.zeros((1, 1)))


class TestKNN:
    def test_exact_match_returns_training_target(self, rng):
        x = rng.normal(size=(20, 2))
        y = rng.normal(size=20)
        model = KNeighborsRegressor(n_neighbors=3).fit(x, y)
        assert model.predict(x[[4]])[0] == pytest.approx(y[4])

    def test_uniform_weights_average(self):
        x = np.array([[0.0], [1.0], [2.0], [10.0]])
        y = np.array([0.0, 1.0, 2.0, 10.0])
        model = KNeighborsRegressor(n_neighbors=3, weights="uniform").fit(x, y)
        assert model.predict(np.array([[1.0]]))[0] == pytest.approx(1.0)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(n_neighbors=5).fit(np.zeros((3, 1)), np.zeros(3))

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(weights="gaussian")
