"""Tests for the DRM controllers: RL, DQN, NMPC, explicit NMPC, multi-rate GPU control."""

import numpy as np
import pytest

from repro.control import (
    CounterStateDiscretizer,
    DeepQController,
    ExplicitNMPCGpuController,
    FastRateFrequencyController,
    MultiRateGPUController,
    NMPCGpuController,
    QLearningController,
    RandomPolicy,
    ReplayBuffer,
    StaticPolicy,
    WorkloadPredictor,
)
from repro.control.dqn import Transition
from repro.control.explicit_nmpc import halton_sequence
from repro.core.framework import run_policy_on_snippets
from repro.gpu import GPUConfiguration, GPUSimulator, default_integrated_gpu
from repro.workloads.graphics import get_graphics_workload
from repro.workloads.suites import get_workload
from repro.workloads.generator import SnippetTraceGenerator


@pytest.fixture(scope="module")
def gpu():
    return default_integrated_gpu()


class TestBasicPolicies:
    def test_static_policy_always_same(self, space, simulator, compute_snippet):
        policy = StaticPolicy(space)
        counters = simulator.evaluate_expected(compute_snippet,
                                               space.default_configuration()).counters
        assert policy.decide(counters) == policy.decide(None)

    def test_random_policy_in_space(self, space, simulator, compute_snippet):
        policy = RandomPolicy(space, seed=0)
        counters = simulator.evaluate_expected(compute_snippet,
                                               space.default_configuration()).counters
        for _ in range(5):
            assert space.contains(policy.decide(counters))


class TestDiscretizer:
    def test_state_range(self, simulator, space, compute_snippet, memory_snippet):
        discretizer = CounterStateDiscretizer(n_bins=4)
        for snippet in (compute_snippet, memory_snippet):
            counters = simulator.evaluate_expected(snippet,
                                                   space.default_configuration()).counters
            state = discretizer.discretize(counters)
            assert 0 <= state < discretizer.n_states

    def test_distinguishes_memory_bound_from_compute_bound(self, simulator, space,
                                                           compute_snippet, memory_snippet):
        discretizer = CounterStateDiscretizer(n_bins=4)
        config = space.default_configuration()
        s1 = discretizer.discretize(simulator.evaluate_expected(compute_snippet, config).counters)
        s2 = discretizer.discretize(simulator.evaluate_expected(memory_snippet, config).counters)
        assert s1 != s2

    def test_validation(self):
        with pytest.raises(ValueError):
            CounterStateDiscretizer(n_bins=1)
        with pytest.raises(ValueError):
            CounterStateDiscretizer(feature_ranges=[(0, 1)])


class TestQLearning:
    def test_learns_on_workload(self, trained_framework):
        framework = trained_framework
        policy = QLearningController(framework.space, seed=0)
        workload = get_workload("fft").scaled(0.3)
        run = framework.evaluate_policy(policy, workload, reset_policy=False)
        assert policy.n_updates > 0
        assert run.total_energy_j > 0

    def test_epsilon_decays(self, trained_framework):
        policy = QLearningController(trained_framework.space, epsilon=0.5,
                                     epsilon_decay=0.9, seed=0)
        workload = get_workload("sha").scaled(0.3)
        trained_framework.evaluate_policy(policy, workload, reset_policy=False)
        assert policy.epsilon < 0.5

    def test_greedy_action_and_table_size(self, trained_framework, simulator,
                                          compute_snippet):
        policy = QLearningController(trained_framework.space, seed=0)
        counters = simulator.evaluate_expected(
            compute_snippet, trained_framework.space.default_configuration()).counters
        assert trained_framework.space.contains(policy.greedy_action(counters))
        assert policy.table_size_bytes() == policy.q_table.nbytes
        assert 0.0 <= policy.visited_state_fraction() <= 1.0

    def test_reset_options(self, trained_framework, simulator, compute_snippet):
        policy = QLearningController(trained_framework.space, seed=0, epsilon=0.3)
        workload = get_workload("aes").scaled(0.2)
        trained_framework.evaluate_policy(policy, workload, reset_policy=False)
        policy.reset(reset_table=True, reset_epsilon=True)
        assert np.all(policy.q_table == 0.0)
        assert policy.epsilon == 0.3

    def test_parameter_validation(self, space):
        with pytest.raises(ValueError):
            QLearningController(space, learning_rate=0.0)
        with pytest.raises(ValueError):
            QLearningController(space, discount=1.0)
        with pytest.raises(ValueError):
            QLearningController(space, epsilon=1.5)

    def test_worse_than_oracle_on_unseen_app(self, trained_framework):
        """RL needs many samples: on a short unseen app it stays well above Oracle."""
        policy = QLearningController(trained_framework.space, seed=0)
        run = trained_framework.evaluate_policy(policy, get_workload("kmeans").scaled(0.4),
                                                reset_policy=False)
        assert run.normalized_energy > 1.02


class TestDQN:
    def test_replay_buffer(self, rng):
        buffer = ReplayBuffer(capacity=5)
        for i in range(8):
            buffer.push(Transition(np.zeros(3), i, 0.0, np.zeros(3)))
        assert len(buffer) == 5
        batch = buffer.sample(3, rng)
        assert len(batch) == 3
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0)

    def test_dqn_runs_and_trains(self, trained_framework):
        policy = DeepQController(trained_framework.space, hidden_sizes=(8,),
                                 batch_size=8, train_interval=2,
                                 target_sync_interval=10, seed=0)
        workload = get_workload("dijkstra").scaled(0.3)
        run = trained_framework.evaluate_policy(policy, workload, reset_policy=False)
        assert policy.n_updates > 0
        assert run.total_energy_j > 0

    def test_dqn_decisions_stay_in_space(self, trained_framework, simulator,
                                         memory_snippet):
        policy = DeepQController(trained_framework.space, hidden_sizes=(8,), seed=1)
        counters = simulator.evaluate_expected(
            memory_snippet, trained_framework.space.default_configuration()).counters
        for _ in range(5):
            assert trained_framework.space.contains(policy.decide(counters))


class TestWorkloadPredictor:
    def test_prediction_tracks_mean(self):
        predictor = WorkloadPredictor(smoothing=0.5, margin_sigma=0.0)
        for _ in range(20):
            predictor.observe(1e7, 2e6)
        work, memory = predictor.predict()
        assert work == pytest.approx(1e7, rel=0.01)
        assert memory == pytest.approx(2e6, rel=0.01)

    def test_margin_adds_headroom_under_variability(self, rng):
        predictor = WorkloadPredictor(margin_sigma=2.0)
        values = rng.normal(1e7, 1e6, size=50)
        for value in values:
            predictor.observe(float(value), 1e6)
        work, _ = predictor.predict()
        assert work > np.mean(values)

    def test_requires_observation(self):
        predictor = WorkloadPredictor()
        assert not predictor.has_observations
        with pytest.raises(RuntimeError):
            predictor.predict()


class TestNMPC:
    def test_meets_deadline_and_beats_max_config(self, gpu):
        simulator = GPUSimulator(gpu, noise_scale=0.01, seed=0)
        trace = get_graphics_workload("fruitninja", gpu=gpu, n_frames=150, seed=0)
        controller = NMPCGpuController(gpu, target_fps=trace.target_fps)
        run = simulator.run(trace, controller)
        fixed_max = simulator.run_fixed(
            trace, GPUConfiguration(len(gpu.opps) - 1, gpu.n_slices))
        assert run.deadline_miss_rate < 0.08
        assert run.gpu_energy_j < fixed_max.gpu_energy_j

    def test_solver_prefers_low_energy_feasible_config(self, gpu):
        controller = NMPCGpuController(gpu, target_fps=30.0)
        light_config = controller.solve(work_cycles=1e6, memory_bytes=1e5)
        heavy_config = controller.solve(work_cycles=8e7, memory_bytes=3e7)
        light_power = gpu.active_power_w(light_config)
        heavy_power = gpu.active_power_w(heavy_config)
        assert light_power < heavy_power
        assert light_config.active_slices <= heavy_config.active_slices

    def test_solver_falls_back_when_infeasible(self, gpu):
        controller = NMPCGpuController(gpu, target_fps=30.0)
        config = controller.solve(work_cycles=1e12, memory_bytes=0.0)
        assert config.opp_index == len(gpu.opps) - 1
        assert config.active_slices == gpu.n_slices

    def test_parameter_validation(self, gpu):
        with pytest.raises(ValueError):
            NMPCGpuController(gpu, target_fps=0.0)
        with pytest.raises(ValueError):
            NMPCGpuController(gpu, target_fps=30.0, deadline_margin=1.0)


class TestExplicitNMPC:
    def test_halton_sequence_in_unit_cube(self):
        samples = halton_sequence(50, 2)
        assert samples.shape == (50, 2)
        assert samples.min() >= 0.0 and samples.max() <= 1.0
        with pytest.raises(ValueError):
            halton_sequence(10, 99)

    def test_surface_close_to_exact_nmpc(self, gpu):
        controller = ExplicitNMPCGpuController(gpu, target_fps=30.0,
                                               n_surface_samples=200)
        controller.fit()
        assert controller.surface_disagreement(n_probe=60) < 0.35

    def test_control_law_respects_deadline_guard(self, gpu):
        controller = ExplicitNMPCGpuController(gpu, target_fps=30.0,
                                               n_surface_samples=120)
        controller.fit()
        deadline = (1.0 / 30.0) * (1.0 - controller.deadline_margin)
        work = gpu.max_throughput_cycles_per_s() / 30.0 * 0.8
        config = controller.control_law(work, work * 0.5)
        assert gpu.busy_time_s(config, work, work * 0.5) <= deadline * 1.02

    def test_runs_whole_benchmark_meeting_fps(self, gpu):
        simulator = GPUSimulator(gpu, noise_scale=0.01, seed=0)
        trace = get_graphics_workload("epiccitadel", gpu=gpu, n_frames=120, seed=0)
        controller = ExplicitNMPCGpuController(gpu, target_fps=trace.target_fps,
                                               n_surface_samples=150)
        run = simulator.run(trace, controller)
        assert run.achieved_fps >= trace.target_fps * 0.93


class TestMultiRate:
    def test_saves_energy_vs_baseline_with_small_overhead(self, gpu):
        from repro.gpu.baseline_governor import BaselineGPUGovernor

        simulator = GPUSimulator(gpu, noise_scale=0.01, seed=0)
        trace = get_graphics_workload("vendettamark", gpu=gpu, n_frames=200, seed=0)
        baseline_run = simulator.run(trace, BaselineGPUGovernor(gpu, trace.target_fps))
        controller = MultiRateGPUController(gpu, target_fps=trace.target_fps)
        enmpc_run = simulator.run(trace, controller)
        assert enmpc_run.gpu_energy_j < baseline_run.gpu_energy_j
        assert enmpc_run.achieved_fps >= baseline_run.achieved_fps * 0.9

    def test_slow_rate_controls_slices(self, gpu):
        simulator = GPUSimulator(gpu, noise_scale=0.0, seed=0)
        trace = get_graphics_workload("angrybirds", gpu=gpu, n_frames=100, seed=0)
        controller = MultiRateGPUController(gpu, target_fps=trace.target_fps,
                                            slow_period=8)
        run = simulator.run(trace, controller)
        # A light game should not need every slice for the whole run.
        assert min(r.active_slices for r in run.frame_results) < gpu.n_slices

    def test_fast_rate_controller_steps_up_after_miss(self, gpu):
        fast = FastRateFrequencyController(gpu, target_fps=30.0)
        from repro.gpu.frames import Frame, FrameResult

        miss = FrameResult(
            frame=Frame(index=0, work_cycles=1e7, memory_bytes=0.0),
            opp_index=2, active_slices=2, busy_time_s=0.05, frame_time_s=0.05,
            gpu_energy_j=0.1, dram_energy_j=0.0, cpu_energy_j=0.0,
            deadline_s=1 / 30.0,
        )
        assert fast.correction(miss) >= 1
        assert fast.apply(len(gpu.opps) - 1, miss) == len(gpu.opps) - 1

    def test_fast_rate_controller_steps_down_when_idle(self, gpu):
        fast = FastRateFrequencyController(gpu, target_fps=30.0,
                                           utilization_setpoint=0.9)
        from repro.gpu.frames import Frame, FrameResult

        idle = FrameResult(
            frame=Frame(index=0, work_cycles=1e6, memory_bytes=0.0),
            opp_index=5, active_slices=3, busy_time_s=0.005, frame_time_s=1 / 30.0,
            gpu_energy_j=0.05, dram_energy_j=0.0, cpu_energy_j=0.0,
            deadline_s=1 / 30.0,
        )
        for _ in range(3):
            correction = fast.correction(idle)
        assert correction <= -1

    def test_validation(self, gpu):
        with pytest.raises(ValueError):
            MultiRateGPUController(gpu, target_fps=30.0, slow_period=0)
        with pytest.raises(ValueError):
            FastRateFrequencyController(gpu, target_fps=30.0, utilization_setpoint=0.0)
