"""Tests for the SoC substrate: OPPs, clusters, configurations, simulator, governors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.soc import (
    ConfigurationSpace,
    EnergyAccount,
    InteractiveGovernor,
    OndemandGovernor,
    OperatingPoint,
    OPPTable,
    PerformanceCounters,
    PerformanceGovernor,
    PowersaveGovernor,
    Snippet,
    SnippetCharacteristics,
    SoCConfiguration,
    SoCSimulator,
    odroid_xu3_like,
    generic_big_little,
)


class TestOPP:
    def test_operating_point_validation(self):
        with pytest.raises(ValueError):
            OperatingPoint(frequency_hz=-1.0, voltage_v=1.0)
        with pytest.raises(ValueError):
            OperatingPoint(frequency_hz=1e9, voltage_v=0.0)

    def test_table_sorted_by_frequency(self):
        table = OPPTable([OperatingPoint(2e9, 1.2), OperatingPoint(1e9, 1.0)])
        assert table[0].frequency_hz == 1e9
        assert table.max_frequency_hz == 2e9

    def test_table_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            OPPTable([])
        with pytest.raises(ValueError):
            OPPTable([OperatingPoint(1e9, 1.0), OperatingPoint(1e9, 1.1)])

    def test_from_frequency_range(self):
        table = OPPTable.from_frequency_range(1e9, 2e9, 5)
        assert len(table) == 5
        assert table.min_frequency_hz == 1e9
        assert table.max_frequency_hz == 2e9
        voltages = [p.voltage_v for p in table]
        assert voltages == sorted(voltages)

    def test_index_of_frequency_and_clamp(self):
        table = OPPTable.from_frequency_range(1e9, 2e9, 5)
        assert table.index_of_frequency(1e9) == 0
        assert table.index_of_frequency(5e9) == 4
        assert table.clamp_index(-3) == 0
        assert table.clamp_index(99) == 4

    def test_frequency_unit_helpers(self):
        point = OperatingPoint(1.5e9, 1.0)
        assert point.frequency_ghz == pytest.approx(1.5)
        assert point.frequency_mhz == pytest.approx(1500.0)


class TestClusterAndPlatform:
    def test_cluster_power_models(self, platform):
        big = platform.big
        top = len(big.opps) - 1
        dynamic_low = big.dynamic_power_w(0, 4, 1.0)
        dynamic_high = big.dynamic_power_w(top, 4, 1.0)
        assert dynamic_high > dynamic_low > 0
        assert big.static_power_w(top, 4) > big.static_power_w(top, 1)
        assert big.dynamic_power_w(top, 4, 0.0) == 0.0

    def test_cluster_index_validation(self, platform):
        with pytest.raises(IndexError):
            platform.big.dynamic_power_w(99, 4, 1.0)

    def test_platform_lookup(self, platform):
        assert platform.cluster("big").name == "big"
        with pytest.raises(KeyError):
            platform.cluster("gpu")
        assert platform.total_cores() == 8

    def test_generic_platform_parameters(self):
        platform = generic_big_little(n_big_cores=2, n_little_cores=6)
        assert platform.big.n_cores == 2
        assert platform.little.n_cores == 6


class TestConfigurationSpace:
    def test_size_without_gating(self, platform):
        space = ConfigurationSpace(platform)
        assert len(space) == len(platform.big.opps) * len(platform.little.opps)

    def test_size_with_big_gating_only(self, platform):
        space = ConfigurationSpace(platform, allow_core_gating=True,
                                   gated_clusters=("big",))
        expected = (len(platform.big.opps) * len(platform.little.opps)
                    * platform.big.n_cores)
        assert len(space) == expected

    def test_unknown_gated_cluster_rejected(self, platform):
        with pytest.raises(KeyError):
            ConfigurationSpace(platform, allow_core_gating=True,
                               gated_clusters=("gpu",))

    def test_index_round_trip(self, space):
        for i in [0, len(space) // 2, len(space) - 1]:
            assert space.index_of(space[i]) == i

    def test_default_configuration_all_cores(self, space, platform):
        default = space.default_configuration()
        assert default.cores("big") == platform.big.n_cores
        assert space.contains(default)

    def test_neighbors_radius_zero_is_self(self, space):
        config = space.default_configuration()
        assert space.neighbors(config, radius=0) == [config]

    def test_neighbors_exclude_self(self, space):
        config = space.default_configuration()
        neighbors = space.neighbors(config, radius=1, include_self=False)
        assert config not in neighbors
        assert len(neighbors) > 0

    def test_neighbors_within_radius(self, space):
        config = space.default_configuration()
        for neighbor in space.neighbors(config, radius=2):
            assert abs(neighbor.opp_index("big") - config.opp_index("big")) <= 2
            assert abs(neighbor.opp_index("little") - config.opp_index("little")) <= 2

    def test_random_configuration_in_space(self, space, rng):
        for _ in range(10):
            assert space.contains(space.random_configuration(rng))

    def test_config_feature_matrix_shape(self, space):
        matrix = space.config_feature_matrix()
        assert matrix.shape == (len(space), 4)

    def test_configuration_accessors(self, space, platform):
        config = space.default_configuration()
        opps, cores = config.as_dicts()
        rebuilt = SoCConfiguration.from_dicts(opps, cores)
        assert rebuilt == config
        assert "big" in config.describe(platform)
        with pytest.raises(KeyError):
            config.opp_index("gpu")
        vector = config.as_vector(["big", "little"])
        assert vector.shape == (4,)

    @settings(max_examples=25, deadline=None)
    @given(radius=st.integers(min_value=1, max_value=3))
    def test_neighbors_always_contain_self_property(self, radius):
        platform = odroid_xu3_like(n_big_levels=4, n_little_levels=3)
        space = ConfigurationSpace(platform)
        config = space.default_configuration()
        assert config in space.neighbors(config, radius=radius)


class TestCounters:
    def test_validation(self):
        with pytest.raises(ValueError):
            PerformanceCounters(
                instructions_retired=0, cpu_cycles=1, branch_mispredictions=0,
                l2_cache_misses=0, data_memory_accesses=0,
                noncache_external_memory_requests=0,
                little_cluster_utilization=0.5, big_cluster_utilization=0.5,
                total_chip_power_w=1.0,
            )
        with pytest.raises(ValueError):
            PerformanceCounters(
                instructions_retired=1e6, cpu_cycles=1e6, branch_mispredictions=0,
                l2_cache_misses=0, data_memory_accesses=0,
                noncache_external_memory_requests=0,
                little_cluster_utilization=1.5, big_cluster_utilization=0.5,
                total_chip_power_w=1.0,
            )

    def test_feature_vector_shape_and_names(self, simulator, space, compute_snippet):
        result = simulator.run_snippet(compute_snippet, space.default_configuration())
        counters = result.counters
        assert counters.as_vector().shape == (9,)
        assert counters.feature_vector().shape == (PerformanceCounters.n_features(),)
        assert len(PerformanceCounters.feature_names()) == PerformanceCounters.n_features()
        assert set(counters.as_dict()) >= {"cpu_cycles", "total_chip_power_w"}


class TestSnippet:
    def test_characteristics_validation(self):
        with pytest.raises(ValueError):
            SnippetCharacteristics(memory_intensity=-1.0)
        with pytest.raises(ValueError):
            SnippetCharacteristics(ilp_factor=0.0)
        with pytest.raises(ValueError):
            SnippetCharacteristics(thread_count=0)
        with pytest.raises(ValueError):
            SnippetCharacteristics(big_fraction=1.5)

    def test_snippet_name(self):
        snippet = Snippet(application="fft", index=3)
        assert snippet.name == "fft[3]"
        with pytest.raises(ValueError):
            Snippet(application="fft", index=0, n_instructions=0)


class TestSimulator:
    def test_higher_big_frequency_is_faster(self, simulator, space, compute_snippet):
        slow = SoCConfiguration.from_dicts({"big": 0, "little": 0},
                                           {"big": 4, "little": 4})
        fast = SoCConfiguration.from_dicts(
            {"big": len(simulator.platform.big.opps) - 1, "little": 0},
            {"big": 4, "little": 4})
        t_slow = simulator.evaluate_expected(compute_snippet, slow).execution_time_s
        t_fast = simulator.evaluate_expected(compute_snippet, fast).execution_time_s
        assert t_fast < t_slow

    def test_memory_bound_gains_less_from_frequency(self, simulator, compute_snippet,
                                                    memory_snippet):
        platform = simulator.platform
        low = SoCConfiguration.from_dicts({"big": 0, "little": 0}, {"big": 4, "little": 4})
        high = SoCConfiguration.from_dicts(
            {"big": len(platform.big.opps) - 1, "little": 0}, {"big": 4, "little": 4})
        speedup_compute = (simulator.evaluate_expected(compute_snippet, low).execution_time_s
                           / simulator.evaluate_expected(compute_snippet, high).execution_time_s)
        speedup_memory = (simulator.evaluate_expected(memory_snippet, low).execution_time_s
                          / simulator.evaluate_expected(memory_snippet, high).execution_time_s)
        assert speedup_compute > speedup_memory

    def test_parallel_snippet_uses_big_cluster_fully(self, simulator, space,
                                                     parallel_snippet, compute_snippet):
        config = space.default_configuration()
        parallel_util = simulator.evaluate_expected(
            parallel_snippet, config).counters.big_cluster_utilization
        serial_util = simulator.evaluate_expected(
            compute_snippet, config).counters.big_cluster_utilization
        assert parallel_util > serial_util

    def test_power_increases_with_frequency(self, simulator, compute_snippet):
        platform = simulator.platform
        low = SoCConfiguration.from_dicts({"big": 0, "little": 0}, {"big": 4, "little": 4})
        high = SoCConfiguration.from_dicts(
            {"big": len(platform.big.opps) - 1, "little": 0}, {"big": 4, "little": 4})
        assert (simulator.evaluate_expected(compute_snippet, high).average_power_w
                > simulator.evaluate_expected(compute_snippet, low).average_power_w)

    def test_energy_equals_power_times_time(self, simulator, space, compute_snippet):
        result = simulator.evaluate_expected(compute_snippet, space.default_configuration())
        assert result.energy_j == pytest.approx(
            result.average_power_w * result.execution_time_s)

    def test_deterministic_evaluation_repeatable(self, simulator, space, memory_snippet):
        config = space.default_configuration()
        a = simulator.evaluate_expected(memory_snippet, config)
        b = simulator.evaluate_expected(memory_snippet, config)
        assert a.energy_j == b.energy_j

    def test_noise_produces_variation(self, noisy_simulator, space, compute_snippet):
        config = space.default_configuration()
        energies = {noisy_simulator.run_snippet(compute_snippet, config).energy_j
                    for _ in range(5)}
        assert len(energies) > 1

    def test_apply_noise_matches_full_simulation(self, noisy_simulator, space,
                                                 compute_snippet, memory_snippet):
        """Re-noising a cached expected result == re-running the simulator.

        ``_bootstrap_models`` relies on this: it must consume the same
        generator stream and produce bitwise-identical noisy results as the
        full ``run_snippet`` call it replaced.
        """
        config = space.default_configuration()
        for snippet in (compute_snippet, memory_snippet):
            expected = noisy_simulator.evaluate_expected(snippet, config)
            full = noisy_simulator.run_snippet(
                snippet, config, rng=np.random.default_rng(99))
            replayed = noisy_simulator.apply_noise(
                expected, rng=np.random.default_rng(99))
            assert replayed.execution_time_s == full.execution_time_s
            assert replayed.average_power_w == full.average_power_w
            assert replayed.energy_j == full.energy_j
            np.testing.assert_array_equal(replayed.counters.as_vector(),
                                          full.counters.as_vector())
            assert replayed.counters.execution_time_s == \
                full.counters.execution_time_s
            assert replayed.power_breakdown_w == full.power_breakdown_w

    def test_apply_noise_without_noise_returns_expected_values(
            self, simulator, space, compute_snippet):
        config = space.default_configuration()
        expected = simulator.evaluate_expected(compute_snippet, config)
        replayed = simulator.apply_noise(expected)
        assert replayed.energy_j == expected.energy_j
        assert replayed.execution_time_s == expected.execution_time_s

    def test_counters_reflect_characteristics(self, simulator, space, memory_snippet):
        result = simulator.evaluate_expected(memory_snippet, space.default_configuration())
        counters = result.counters
        expected_misses = (memory_snippet.n_instructions
                           * memory_snippet.characteristics.memory_intensity / 1000.0)
        assert counters.l2_cache_misses == pytest.approx(expected_misses)
        assert counters.instructions_retired == memory_snippet.n_instructions

    def test_power_breakdown_sums_to_total(self, simulator, space, compute_snippet):
        result = simulator.evaluate_expected(compute_snippet, space.default_configuration())
        assert sum(result.power_breakdown_w.values()) == pytest.approx(
            result.average_power_w, rel=1e-6)

    def test_result_derived_metrics(self, simulator, space, compute_snippet):
        result = simulator.evaluate_expected(compute_snippet, space.default_configuration())
        assert result.energy_per_instruction_nj > 0
        assert result.performance_ips > 0
        assert result.performance_per_watt > 0
        assert result.energy_delay_product == pytest.approx(
            result.energy_j * result.execution_time_s)

    def test_sweep_configurations(self, simulator, space, compute_snippet):
        subset = space.configurations[:5]
        results = simulator.sweep_configurations(compute_snippet, subset)
        assert len(results) == 5

    def test_fewer_cores_slow_down_parallel_snippet(self, platform, parallel_snippet):
        space = ConfigurationSpace(platform, allow_core_gating=True,
                                   gated_clusters=("big",))
        simulator = SoCSimulator(platform, noise_scale=0.0)
        opps, _ = space.default_configuration().as_dicts()
        four = SoCConfiguration.from_dicts(opps, {"big": 4, "little": 4})
        one = SoCConfiguration.from_dicts(opps, {"big": 1, "little": 4})
        assert (simulator.evaluate_expected(parallel_snippet, one).execution_time_s
                > simulator.evaluate_expected(parallel_snippet, four).execution_time_s * 2)

    @settings(max_examples=20, deadline=None)
    @given(mpki=st.floats(min_value=0.0, max_value=30.0),
           ilp=st.floats(min_value=0.2, max_value=1.0),
           threads=st.integers(min_value=1, max_value=4))
    def test_energy_and_time_always_positive(self, mpki, ilp, threads):
        platform = odroid_xu3_like(n_big_levels=4, n_little_levels=3)
        space = ConfigurationSpace(platform)
        simulator = SoCSimulator(platform, noise_scale=0.0)
        snippet = Snippet(
            application="prop", index=0,
            characteristics=SnippetCharacteristics(
                memory_intensity=mpki, ilp_factor=ilp, thread_count=threads,
                parallel_fraction=0.5 if threads > 1 else 0.0,
            ),
        )
        result = simulator.evaluate_expected(snippet, space.default_configuration())
        assert result.execution_time_s > 0
        assert result.energy_j > 0
        assert 0.0 <= result.counters.big_cluster_utilization <= 1.0


class TestEnergyAccount:
    def test_accumulates_totals(self, simulator, space, compute_snippet, memory_snippet):
        account = EnergyAccount()
        config = space.default_configuration()
        r1 = simulator.evaluate_expected(compute_snippet, config)
        r2 = simulator.evaluate_expected(memory_snippet, config)
        account.extend([r1, r2])
        assert len(account) == 2
        assert account.total_energy_j == pytest.approx(r1.energy_j + r2.energy_j)
        assert account.application_energy_j("compute") == pytest.approx(r1.energy_j)
        assert account.average_power_w > 0
        assert account.energy_per_instruction_nj > 0
        assert set(account.per_component_energy()) >= {"base", "memory"}


class TestGovernors:
    def _counters_with_util(self, simulator, space, snippet):
        return simulator.evaluate_expected(snippet, space.default_configuration()).counters

    def test_performance_governor_max_frequency(self, space, simulator, compute_snippet):
        governor = PerformanceGovernor(space)
        counters = self._counters_with_util(simulator, space, compute_snippet)
        config = governor.decide(counters)
        assert config.opp_index("big") == len(space.platform.big.opps) - 1

    def test_powersave_governor_min_frequency(self, space, simulator, compute_snippet):
        governor = PowersaveGovernor(space)
        counters = self._counters_with_util(simulator, space, compute_snippet)
        config = governor.decide(counters)
        assert config.opp_index("big") == 0
        assert config.opp_index("little") == 0

    def test_ondemand_ramps_up_on_high_utilization(self, space, simulator, parallel_snippet):
        governor = OndemandGovernor(space, up_threshold=0.7)
        counters = self._counters_with_util(simulator, space, parallel_snippet)
        config = governor.decide(counters)
        assert config.opp_index("big") == len(space.platform.big.opps) - 1

    def test_ondemand_steps_down_when_idle(self, space, simulator, compute_snippet):
        governor = OndemandGovernor(space, down_threshold=0.3)
        start = governor.current.opp_index("big")
        counters = self._counters_with_util(simulator, space, compute_snippet)
        # Single-threaded workload leaves the 4-core big cluster under-utilised.
        config = governor.decide(counters)
        assert config.opp_index("big") <= start

    def test_ondemand_threshold_validation(self, space):
        with pytest.raises(ValueError):
            OndemandGovernor(space, up_threshold=0.2, down_threshold=0.5)

    def test_interactive_governor_moves_toward_target(self, space, simulator,
                                                      parallel_snippet):
        governor = InteractiveGovernor(space, target_utilization=0.5)
        counters = self._counters_with_util(simulator, space, parallel_snippet)
        before = governor.current.opp_index("big")
        config = governor.decide(counters)
        assert config.opp_index("big") >= before

    def test_governor_reset(self, space, simulator, compute_snippet):
        governor = PerformanceGovernor(space)
        governor.decide(self._counters_with_util(simulator, space, compute_snippet))
        governor.reset()
        assert governor.current == space.default_configuration()
