"""Tests for the resumable :class:`~repro.core.session.PolicySession`.

The session decomposes the policy run loop into explicit
decide -> clamp/throttle -> execute -> observe phases; these tests pin the
state-machine semantics (phase ordering, resumability, mid-run snapshots)
and the bitwise equivalence of session-driven runs with the historical
closed-loop behaviour (which the golden traces also gate end to end).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.policy import GovernorPolicy, StaticPolicy
from repro.core.framework import run_policy_on_snippets
from repro.core.session import PolicySession, SnapshotError
from repro.soc.governors import OndemandGovernor
from repro.workloads.suites import training_workloads


@pytest.fixture()
def snippet_trace(trace_generator):
    return trace_generator.generate(training_workloads()[0].scaled(0.3))


def _log_columns(result):
    return {key: result.log.column(key)
            for key in ("energy_j", "time_s", "power_w", "big_opp",
                        "little_opp")}


class TestPhases:
    def test_advance_equals_manual_phases(self, noisy_simulator, space,
                                          snippet_trace):
        auto = PolicySession(
            noisy_simulator, space, GovernorPolicy(OndemandGovernor(space)),
            snippet_trace, rng=np.random.default_rng(7),
        )
        auto_result = auto.run()

        manual = PolicySession(
            noisy_simulator, space, GovernorPolicy(OndemandGovernor(space)),
            snippet_trace, rng=np.random.default_rng(7),
        )
        while not manual.done:
            step = manual.decide()
            assert manual.pending is step
            result = manual.execute(step)
            manual.observe(step, result)
            assert manual.pending is None
        manual_result = manual.result()

        for key, column in _log_columns(auto_result).items():
            np.testing.assert_array_equal(column, manual_result.log.column(key))
        assert auto_result.total_energy_j == manual_result.total_energy_j

    def test_session_matches_run_policy_on_snippets(self, noisy_simulator,
                                                    space, snippet_trace):
        reference = run_policy_on_snippets(
            noisy_simulator, space, StaticPolicy(space), snippet_trace,
            rng=np.random.default_rng(3),
        )
        session = PolicySession(
            noisy_simulator, space, StaticPolicy(space), snippet_trace,
            rng=np.random.default_rng(3),
        )
        result = session.run()
        for key, column in _log_columns(reference).items():
            np.testing.assert_array_equal(column, result.log.column(key))
        assert reference.total_energy_j == result.total_energy_j

    def test_decide_on_done_session_raises(self, simulator, space,
                                           snippet_trace):
        session = PolicySession(simulator, space, StaticPolicy(space),
                                snippet_trace[:1])
        session.advance()
        assert session.done
        with pytest.raises(RuntimeError, match="already complete"):
            session.decide()

    def test_double_decide_raises(self, simulator, space, snippet_trace):
        session = PolicySession(simulator, space, StaticPolicy(space),
                                snippet_trace)
        session.decide()
        with pytest.raises(RuntimeError, match="unobserved pending step"):
            session.decide()

    def test_execute_without_decide_raises(self, simulator, space,
                                           snippet_trace):
        session = PolicySession(simulator, space, StaticPolicy(space),
                                snippet_trace)
        with pytest.raises(RuntimeError, match="no pending step"):
            session.execute()

    def test_double_observe_raises(self, simulator, space, snippet_trace):
        session = PolicySession(simulator, space, StaticPolicy(space),
                                snippet_trace)
        step = session.decide()
        result = session.execute(step)
        session.observe(step, result)
        with pytest.raises(RuntimeError, match="no pending step to observe"):
            session.observe(step, result)
        assert len(session.log) == 1  # nothing was double-counted

    def test_adopt_step_index_mismatch_raises(self, simulator, space,
                                              snippet_trace):
        session = PolicySession(simulator, space, StaticPolicy(space),
                                snippet_trace)
        step = session.decide()
        result = session.execute(step)
        session.observe(step, result)
        stale = step  # index 0, session cursor is now 1
        with pytest.raises(ValueError, match="does not match"):
            session.adopt_step(stale)


class TestResumability:
    def test_midrun_snapshot_tracks_session(self, noisy_simulator, space,
                                            snippet_trace):
        session = PolicySession(
            noisy_simulator, space, GovernorPolicy(OndemandGovernor(space)),
            snippet_trace, rng=np.random.default_rng(11),
        )
        half = len(snippet_trace) // 2
        for _ in range(half):
            session.advance()
        snapshot = session.result()
        assert len(snapshot.log) == half
        # The snapshot shares the session's log: it keeps growing.
        session.advance()
        assert len(snapshot.log) == half + 1

    def test_paused_and_resumed_run_is_bitwise_identical(
            self, noisy_simulator, space, snippet_trace):
        reference = run_policy_on_snippets(
            noisy_simulator, space, GovernorPolicy(OndemandGovernor(space)),
            snippet_trace, rng=np.random.default_rng(5),
        )
        session = PolicySession(
            noisy_simulator, space, GovernorPolicy(OndemandGovernor(space)),
            snippet_trace, rng=np.random.default_rng(5),
        )
        for _ in range(3):
            session.advance()
        resumed = session.run()  # continues from step 3
        for key, column in _log_columns(reference).items():
            np.testing.assert_array_equal(column, resumed.log.column(key))

    def test_step_index_and_len(self, simulator, space, snippet_trace):
        session = PolicySession(simulator, space, StaticPolicy(space),
                                snippet_trace)
        assert len(session) == len(snippet_trace)
        assert session.step_index == 0
        session.advance()
        assert session.step_index == 1


class TestThrottling:
    def test_space_schedule_throttles_and_flags(self, simulator, space,
                                                snippet_trace):
        restricted = space.restrict(max_opp_index=1)

        def schedule(step: int):
            return restricted if step % 2 == 0 else space

        policy = StaticPolicy(space, space[len(space) - 1])  # max everything
        session = PolicySession(simulator, space, policy, snippet_trace,
                                space_schedule=schedule)
        result = session.run()
        throttled = result.log.column("throttled")
        np.testing.assert_array_equal(
            throttled, [1.0 if i % 2 == 0 else 0.0
                        for i in range(len(snippet_trace))]
        )
        big_opps = result.log.column("big_opp")
        assert np.all(big_opps[::2] <= 1.0)


class TestDurableSnapshots:
    """Checksummed snapshot/restore of sessions (crash-recovery substrate)."""

    def _fresh(self, noisy_simulator, space, snippet_trace, seed=11):
        return PolicySession(
            noisy_simulator, space, GovernorPolicy(OndemandGovernor(space)),
            snippet_trace, rng=np.random.default_rng(seed),
        )

    def test_restore_midrun_is_bitwise_identical(self, noisy_simulator, space,
                                                 snippet_trace):
        reference = self._fresh(noisy_simulator, space, snippet_trace).run()
        session = self._fresh(noisy_simulator, space, snippet_trace)
        for _ in range(3):
            session.advance()
        data = session.snapshot_bytes()
        # Poison the original past the snapshot point: restoring must not
        # depend on the live session in any way.
        session.run()
        restored = PolicySession.restore(data, noisy_simulator)
        assert restored.step_index == 3
        resumed = restored.run()
        for key, column in _log_columns(reference).items():
            np.testing.assert_array_equal(column, resumed.log.column(key))
        assert reference.total_energy_j == resumed.total_energy_j

    def test_snapshot_with_pending_step_resumes_bitwise(
            self, noisy_simulator, space, snippet_trace):
        """A snapshot taken mid-step (decided, not yet observed) resumes."""
        reference = self._fresh(noisy_simulator, space, snippet_trace).run()
        session = self._fresh(noisy_simulator, space, snippet_trace)
        session.advance()
        step = session.decide()  # snapshot between decide and execute
        assert session.pending is step
        data = session.snapshot_bytes()
        session.execute(step)  # the original moves on
        restored = PolicySession.restore(data, noisy_simulator)
        assert restored.pending is not None
        assert restored.pending.index == 1
        pending = restored.pending
        result = restored.execute(pending)
        restored.observe(pending, result)
        resumed = restored.run()
        for key, column in _log_columns(reference).items():
            np.testing.assert_array_equal(column, resumed.log.column(key))

    def test_save_and_load_roundtrip(self, tmp_path, noisy_simulator, space,
                                     snippet_trace):
        reference = self._fresh(noisy_simulator, space, snippet_trace).run()
        session = self._fresh(noisy_simulator, space, snippet_trace)
        for _ in range(2):
            session.advance()
        path = session.save_snapshot(tmp_path / "nested" / "dev.snapshot")
        assert path.exists()
        restored = PolicySession.load_snapshot(path, noisy_simulator)
        resumed = restored.run()
        for key, column in _log_columns(reference).items():
            np.testing.assert_array_equal(column, resumed.log.column(key))

    def test_corrupted_snapshot_raises(self, tmp_path, noisy_simulator, space,
                                       snippet_trace):
        session = self._fresh(noisy_simulator, space, snippet_trace)
        session.advance()
        path = session.save_snapshot(tmp_path / "dev.snapshot")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF  # flip one payload bit
        with pytest.raises(SnapshotError, match="checksum"):
            PolicySession.unpack_snapshot(bytes(data))

    def test_truncated_and_foreign_snapshots_raise(self, noisy_simulator,
                                                   space, snippet_trace):
        session = self._fresh(noisy_simulator, space, snippet_trace)
        data = session.snapshot_bytes()
        with pytest.raises(SnapshotError):
            PolicySession.unpack_snapshot(data[: len(data) // 2])
        with pytest.raises(SnapshotError, match="magic"):
            PolicySession.unpack_snapshot(b"not a snapshot at all")

    def test_missing_snapshot_file_raises(self, tmp_path, noisy_simulator):
        with pytest.raises(SnapshotError, match="read"):
            PolicySession.load_snapshot(tmp_path / "absent.snapshot",
                                        noisy_simulator)

    def test_restore_preserves_policy_space_identity(
            self, noisy_simulator, space, snippet_trace):
        """The engine's group keys need ``policy.space is session.space``."""
        session = self._fresh(noisy_simulator, space, snippet_trace)
        session.advance()
        restored = PolicySession.restore(session.snapshot_bytes(),
                                         noisy_simulator)
        assert restored.policy.space is restored.space
