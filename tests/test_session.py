"""Tests for the resumable :class:`~repro.core.session.PolicySession`.

The session decomposes the policy run loop into explicit
decide -> clamp/throttle -> execute -> observe phases; these tests pin the
state-machine semantics (phase ordering, resumability, mid-run snapshots)
and the bitwise equivalence of session-driven runs with the historical
closed-loop behaviour (which the golden traces also gate end to end).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.policy import GovernorPolicy, StaticPolicy
from repro.core.framework import run_policy_on_snippets
from repro.core.session import PolicySession, SnapshotError
from repro.scenarios import get_scenario, make_space_schedule
from repro.soc.governors import (
    InteractiveGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.workloads.suites import training_workloads


@pytest.fixture()
def snippet_trace(trace_generator):
    return trace_generator.generate(training_workloads()[0].scaled(0.3))


def _log_columns(result):
    return {key: result.log.column(key)
            for key in ("energy_j", "time_s", "power_w", "big_opp",
                        "little_opp")}


class TestPhases:
    def test_advance_equals_manual_phases(self, noisy_simulator, space,
                                          snippet_trace):
        auto = PolicySession(
            noisy_simulator, space, GovernorPolicy(OndemandGovernor(space)),
            snippet_trace, rng=np.random.default_rng(7),
        )
        auto_result = auto.run()

        manual = PolicySession(
            noisy_simulator, space, GovernorPolicy(OndemandGovernor(space)),
            snippet_trace, rng=np.random.default_rng(7),
        )
        while not manual.done:
            step = manual.decide()
            assert manual.pending is step
            result = manual.execute(step)
            manual.observe(step, result)
            assert manual.pending is None
        manual_result = manual.result()

        for key, column in _log_columns(auto_result).items():
            np.testing.assert_array_equal(column, manual_result.log.column(key))
        assert auto_result.total_energy_j == manual_result.total_energy_j

    def test_session_matches_run_policy_on_snippets(self, noisy_simulator,
                                                    space, snippet_trace):
        reference = run_policy_on_snippets(
            noisy_simulator, space, StaticPolicy(space), snippet_trace,
            rng=np.random.default_rng(3),
        )
        session = PolicySession(
            noisy_simulator, space, StaticPolicy(space), snippet_trace,
            rng=np.random.default_rng(3),
        )
        result = session.run()
        for key, column in _log_columns(reference).items():
            np.testing.assert_array_equal(column, result.log.column(key))
        assert reference.total_energy_j == result.total_energy_j

    def test_decide_on_done_session_raises(self, simulator, space,
                                           snippet_trace):
        session = PolicySession(simulator, space, StaticPolicy(space),
                                snippet_trace[:1])
        session.advance()
        assert session.done
        with pytest.raises(RuntimeError, match="already complete"):
            session.decide()

    def test_double_decide_raises(self, simulator, space, snippet_trace):
        session = PolicySession(simulator, space, StaticPolicy(space),
                                snippet_trace)
        session.decide()
        with pytest.raises(RuntimeError, match="unobserved pending step"):
            session.decide()

    def test_execute_without_decide_raises(self, simulator, space,
                                           snippet_trace):
        session = PolicySession(simulator, space, StaticPolicy(space),
                                snippet_trace)
        with pytest.raises(RuntimeError, match="no pending step"):
            session.execute()

    def test_double_observe_raises(self, simulator, space, snippet_trace):
        session = PolicySession(simulator, space, StaticPolicy(space),
                                snippet_trace)
        step = session.decide()
        result = session.execute(step)
        session.observe(step, result)
        with pytest.raises(RuntimeError, match="no pending step to observe"):
            session.observe(step, result)
        assert len(session.log) == 1  # nothing was double-counted

    def test_adopt_step_index_mismatch_raises(self, simulator, space,
                                              snippet_trace):
        session = PolicySession(simulator, space, StaticPolicy(space),
                                snippet_trace)
        step = session.decide()
        result = session.execute(step)
        session.observe(step, result)
        stale = step  # index 0, session cursor is now 1
        with pytest.raises(ValueError, match="does not match"):
            session.adopt_step(stale)


class TestResumability:
    def test_midrun_snapshot_tracks_session(self, noisy_simulator, space,
                                            snippet_trace):
        session = PolicySession(
            noisy_simulator, space, GovernorPolicy(OndemandGovernor(space)),
            snippet_trace, rng=np.random.default_rng(11),
        )
        half = len(snippet_trace) // 2
        for _ in range(half):
            session.advance()
        snapshot = session.result()
        assert len(snapshot.log) == half
        # The snapshot shares the session's log: it keeps growing.
        session.advance()
        assert len(snapshot.log) == half + 1

    def test_paused_and_resumed_run_is_bitwise_identical(
            self, noisy_simulator, space, snippet_trace):
        reference = run_policy_on_snippets(
            noisy_simulator, space, GovernorPolicy(OndemandGovernor(space)),
            snippet_trace, rng=np.random.default_rng(5),
        )
        session = PolicySession(
            noisy_simulator, space, GovernorPolicy(OndemandGovernor(space)),
            snippet_trace, rng=np.random.default_rng(5),
        )
        for _ in range(3):
            session.advance()
        resumed = session.run()  # continues from step 3
        for key, column in _log_columns(reference).items():
            np.testing.assert_array_equal(column, resumed.log.column(key))

    def test_step_index_and_len(self, simulator, space, snippet_trace):
        session = PolicySession(simulator, space, StaticPolicy(space),
                                snippet_trace)
        assert len(session) == len(snippet_trace)
        assert session.step_index == 0
        session.advance()
        assert session.step_index == 1


class TestThrottling:
    def test_space_schedule_throttles_and_flags(self, simulator, space,
                                                snippet_trace):
        restricted = space.restrict(max_opp_index=1)

        def schedule(step: int):
            return restricted if step % 2 == 0 else space

        policy = StaticPolicy(space, space[len(space) - 1])  # max everything
        session = PolicySession(simulator, space, policy, snippet_trace,
                                space_schedule=schedule)
        result = session.run()
        throttled = result.log.column("throttled")
        np.testing.assert_array_equal(
            throttled, [1.0 if i % 2 == 0 else 0.0
                        for i in range(len(snippet_trace))]
        )
        big_opps = result.log.column("big_opp")
        assert np.all(big_opps[::2] <= 1.0)


class TestDurableSnapshots:
    """Checksummed snapshot/restore of sessions (crash-recovery substrate)."""

    def _fresh(self, noisy_simulator, space, snippet_trace, seed=11):
        return PolicySession(
            noisy_simulator, space, GovernorPolicy(OndemandGovernor(space)),
            snippet_trace, rng=np.random.default_rng(seed),
        )

    def test_restore_midrun_is_bitwise_identical(self, noisy_simulator, space,
                                                 snippet_trace):
        reference = self._fresh(noisy_simulator, space, snippet_trace).run()
        session = self._fresh(noisy_simulator, space, snippet_trace)
        for _ in range(3):
            session.advance()
        data = session.snapshot_bytes()
        # Poison the original past the snapshot point: restoring must not
        # depend on the live session in any way.
        session.run()
        restored = PolicySession.restore(data, noisy_simulator)
        assert restored.step_index == 3
        resumed = restored.run()
        for key, column in _log_columns(reference).items():
            np.testing.assert_array_equal(column, resumed.log.column(key))
        assert reference.total_energy_j == resumed.total_energy_j

    def test_snapshot_with_pending_step_resumes_bitwise(
            self, noisy_simulator, space, snippet_trace):
        """A snapshot taken mid-step (decided, not yet observed) resumes."""
        reference = self._fresh(noisy_simulator, space, snippet_trace).run()
        session = self._fresh(noisy_simulator, space, snippet_trace)
        session.advance()
        step = session.decide()  # snapshot between decide and execute
        assert session.pending is step
        data = session.snapshot_bytes()
        session.execute(step)  # the original moves on
        restored = PolicySession.restore(data, noisy_simulator)
        assert restored.pending is not None
        assert restored.pending.index == 1
        pending = restored.pending
        result = restored.execute(pending)
        restored.observe(pending, result)
        resumed = restored.run()
        for key, column in _log_columns(reference).items():
            np.testing.assert_array_equal(column, resumed.log.column(key))

    def test_save_and_load_roundtrip(self, tmp_path, noisy_simulator, space,
                                     snippet_trace):
        reference = self._fresh(noisy_simulator, space, snippet_trace).run()
        session = self._fresh(noisy_simulator, space, snippet_trace)
        for _ in range(2):
            session.advance()
        path = session.save_snapshot(tmp_path / "nested" / "dev.snapshot")
        assert path.exists()
        restored = PolicySession.load_snapshot(path, noisy_simulator)
        resumed = restored.run()
        for key, column in _log_columns(reference).items():
            np.testing.assert_array_equal(column, resumed.log.column(key))

    def test_corrupted_snapshot_raises(self, tmp_path, noisy_simulator, space,
                                       snippet_trace):
        session = self._fresh(noisy_simulator, space, snippet_trace)
        session.advance()
        path = session.save_snapshot(tmp_path / "dev.snapshot")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF  # flip one payload bit
        with pytest.raises(SnapshotError, match="checksum"):
            PolicySession.unpack_snapshot(bytes(data))

    def test_truncated_and_foreign_snapshots_raise(self, noisy_simulator,
                                                   space, snippet_trace):
        session = self._fresh(noisy_simulator, space, snippet_trace)
        data = session.snapshot_bytes()
        with pytest.raises(SnapshotError):
            PolicySession.unpack_snapshot(data[: len(data) // 2])
        with pytest.raises(SnapshotError, match="magic"):
            PolicySession.unpack_snapshot(b"not a snapshot at all")

    def test_missing_snapshot_file_raises(self, tmp_path, noisy_simulator):
        with pytest.raises(SnapshotError, match="read"):
            PolicySession.load_snapshot(tmp_path / "absent.snapshot",
                                        noisy_simulator)

    def test_restore_preserves_policy_space_identity(
            self, noisy_simulator, space, snippet_trace):
        """The engine's group keys need ``policy.space is session.space``."""
        session = self._fresh(noisy_simulator, space, snippet_trace)
        session.advance()
        restored = PolicySession.restore(session.snapshot_bytes(),
                                         noisy_simulator)
        assert restored.policy.space is restored.space


#: Every by-name policy the control plane can build (the governor zoo
#: plus static); the learned policies join via the trained_framework
#: fixture below.
NAMED_POLICY_BUILDERS = {
    "static": lambda space: StaticPolicy(space),
    "ondemand": lambda space: GovernorPolicy(OndemandGovernor(space)),
    "interactive": lambda space: GovernorPolicy(InteractiveGovernor(space)),
    "performance": lambda space: GovernorPolicy(PerformanceGovernor(space)),
    "powersave": lambda space: GovernorPolicy(PowersaveGovernor(space)),
}


class TestSnapshotEveryPolicy:
    """Snapshot -> restore -> continue is bitwise for EVERY policy type.

    The control-plane recovery invariant quantifies over whatever policy
    a device runs, so the property is pinned per policy kind — including
    under a scenario space schedule (which snapshots deliberately do NOT
    carry; it must be rebuilt over the restored space) and over a
    restricted configuration space.
    """

    def _check_roundtrip(self, tmp_path, simulator, build_session,
                         rebuild_schedule=None, steps=3):
        """reference vs snapshot-at-``steps``-then-continue, bitwise."""
        reference = build_session().run()
        session = build_session()
        for _ in range(steps):
            session.advance()
        path = session.save_snapshot(tmp_path / "dev.snapshot")
        session.run()  # poison the original past the snapshot point
        restored = PolicySession.load_snapshot(path, simulator)
        if rebuild_schedule is not None:
            restored.space_schedule = rebuild_schedule(restored.space)
        resumed = restored.run()
        for key, column in _log_columns(reference).items():
            np.testing.assert_array_equal(column, resumed.log.column(key))
        assert reference.total_energy_j == resumed.total_energy_j
        return restored

    @pytest.mark.parametrize("policy_name", sorted(NAMED_POLICY_BUILDERS))
    def test_named_policy_roundtrip_bitwise(self, tmp_path, noisy_simulator,
                                            space, snippet_trace,
                                            policy_name):
        build = NAMED_POLICY_BUILDERS[policy_name]

        def build_session():
            return PolicySession(
                noisy_simulator, space, build(space), snippet_trace,
                rng=np.random.default_rng(13),
            )

        self._check_roundtrip(tmp_path, noisy_simulator, build_session)

    @pytest.mark.parametrize("policy_name", ["ondemand", "static"])
    def test_roundtrip_under_scenario_schedule(self, tmp_path,
                                               noisy_simulator, space,
                                               snippet_trace, policy_name):
        """The schedule is rebuilt over the restored space, as documented."""
        # Seed 1 produces a throttle window on this short trace, so the
        # schedule is real (make_space_schedule returns None otherwise).
        trace = get_scenario("thermal_throttle").apply(snippet_trace, 1)
        assert trace.throttle_events
        build = NAMED_POLICY_BUILDERS[policy_name]

        def build_session():
            return PolicySession(
                noisy_simulator, space, build(space), trace.snippets,
                rng=np.random.default_rng(13),
                space_schedule=make_space_schedule(space, trace),
            )

        restored = self._check_roundtrip(
            tmp_path, noisy_simulator, build_session,
            rebuild_schedule=lambda restored_space: make_space_schedule(
                restored_space, trace),
        )
        # The schedule was live on the restored session: the throttled
        # column is recorded (it is absent/NaN when no schedule installed).
        assert restored.space_schedule is not None
        assert not np.all(np.isnan(restored.log.column("throttled")))

    def test_roundtrip_over_restricted_space(self, tmp_path, noisy_simulator,
                                             space, snippet_trace):
        restricted = space.restrict(max_opp_index=2)
        assert len(restricted) < len(space)

        def build_session():
            return PolicySession(
                noisy_simulator, restricted,
                GovernorPolicy(OndemandGovernor(restricted)), snippet_trace,
                rng=np.random.default_rng(13),
            )

        restored = self._check_roundtrip(tmp_path, noisy_simulator,
                                         build_session)
        assert len(restored.space) == len(restricted)

    def test_offline_il_roundtrip_bitwise(self, tmp_path, trained_framework,
                                          snippet_trace):
        import copy

        framework = trained_framework
        simulator = framework.simulator

        def build_session():
            policy = copy.deepcopy(framework.offline_policy)
            return PolicySession(
                simulator, policy.space, policy, snippet_trace,
                rng=np.random.default_rng(13),
            )

        self._check_roundtrip(tmp_path, simulator, build_session)

    def test_online_il_roundtrip_bitwise(self, tmp_path, trained_framework,
                                         snippet_trace):
        framework = trained_framework
        simulator = framework.simulator

        def build_session():
            policy = framework.build_online_il_policy(
                buffer_capacity=10, update_epochs=5, isolated=True,
            )
            return PolicySession(
                simulator, policy.space, policy, snippet_trace[:8],
                rng=np.random.default_rng(13),
            )

        self._check_roundtrip(tmp_path, simulator, build_session, steps=3)


class TestStateDigest:
    """``state_digest()`` — the recovery invariant's equality vehicle."""

    def _run(self, noisy_simulator, space, snippet_trace, seed=11, steps=None):
        session = PolicySession(
            noisy_simulator, space, GovernorPolicy(OndemandGovernor(space)),
            snippet_trace, rng=np.random.default_rng(seed),
        )
        if steps is None:
            session.run()
        else:
            for _ in range(steps):
                session.advance()
        return session

    def test_identical_runs_share_digest(self, noisy_simulator, space,
                                         snippet_trace):
        one = self._run(noisy_simulator, space, snippet_trace)
        two = self._run(noisy_simulator, space, snippet_trace)
        assert one.state_digest() == two.state_digest()

    def test_diverged_runs_differ(self, noisy_simulator, space,
                                  snippet_trace):
        one = self._run(noisy_simulator, space, snippet_trace, seed=11)
        two = self._run(noisy_simulator, space, snippet_trace, seed=12)
        assert one.state_digest() != two.state_digest()

    def test_progress_changes_digest(self, noisy_simulator, space,
                                     snippet_trace):
        partial = self._run(noisy_simulator, space, snippet_trace, steps=2)
        before = partial.state_digest()
        partial.advance()
        assert partial.state_digest() != before

    def test_snapshot_restore_continue_preserves_digest(
            self, noisy_simulator, space, snippet_trace):
        full = self._run(noisy_simulator, space, snippet_trace)
        partial = self._run(noisy_simulator, space, snippet_trace, steps=3)
        restored = PolicySession.restore(partial.snapshot_bytes(),
                                         noisy_simulator)
        restored.run()
        assert restored.state_digest() == full.state_digest()
