"""Batch-vs-scalar equivalence of the vectorized online decision loop.

The runtime Oracle's batched candidate sweep (``mode="batch"``) must decide
exactly like the retained scalar reference loop (``mode="scalar"``): same
candidate enumeration order, same predictions (execution-time predictions
bitwise, power within BLAS round-off), and the same first-minimum argmin
tie-breaking — including on exactly tied predicted energies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.runtime_oracle import RuntimeOracle
from repro.models.performance import CpuPerformanceModel
from repro.models.power import CpuPowerModel
from repro.soc.configuration import ConfigurationSpace
from repro.soc.platform import odroid_xu3_like
from repro.soc.simulator import SoCSimulator
from repro.workloads.generator import SnippetTraceGenerator
from repro.workloads.suites import training_workloads


@pytest.fixture(scope="module")
def platform():
    return odroid_xu3_like()


@pytest.fixture(scope="module")
def space(platform):
    return ConfigurationSpace(platform)


@pytest.fixture(scope="module")
def gated_space(platform):
    return ConfigurationSpace(platform, allow_core_gating=True,
                              gated_clusters=("big",))


def _decision_states(platform, space, n_states, seed):
    """Stream of (counters, current) pairs with progressively warmed models."""
    simulator = SoCSimulator(platform, seed=seed)
    power_model = CpuPowerModel(platform)
    performance_model = CpuPerformanceModel(platform)
    generator = SnippetTraceGenerator(seed=seed + 1)
    snippets = [
        snippet
        for workload in training_workloads()
        for snippet in generator.generate(workload.scaled(0.4))
    ]
    rng = np.random.default_rng(seed + 2)
    states = []
    current = space.default_configuration()
    for snippet in snippets[:n_states]:
        result = simulator.run_snippet(snippet, current, rng=rng)
        power_model.update(result.counters, current)
        performance_model.update(result.counters, current)
        states.append((result.counters, current))
        current = space.random_configuration(rng)
    return power_model, performance_model, states


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_same_decision_and_estimates(self, platform, space, radius):
        power_model, performance_model, states = _decision_states(
            platform, space, n_states=40, seed=29
        )
        batch_oracle = RuntimeOracle(space, power_model, performance_model,
                                     neighborhood_radius=radius, mode="batch")
        scalar_oracle = RuntimeOracle(space, power_model, performance_model,
                                      neighborhood_radius=radius, mode="scalar")
        for counters, current in states:
            best_b, est_b = batch_oracle.best_configuration(counters, current)
            best_s, est_s = scalar_oracle.best_configuration(counters, current)
            assert best_b == best_s
            assert est_b.configuration == est_s.configuration
            # Time predictions mirror the scalar arithmetic operation for
            # operation and must agree bitwise; power goes through one
            # matmul and may differ by BLAS summation-order round-off only.
            assert est_b.predicted_time_s == est_s.predicted_time_s
            np.testing.assert_allclose(est_b.predicted_power_w,
                                       est_s.predicted_power_w,
                                       rtol=1e-12, atol=1e-12)

    def test_candidate_enumeration_order_matches(self, platform, space):
        power_model, performance_model, states = _decision_states(
            platform, space, n_states=10, seed=31
        )
        oracle = RuntimeOracle(space, power_model, performance_model,
                               neighborhood_radius=2)
        for counters, current in states:
            batch = oracle.candidate_batch(counters, current)
            estimates = oracle.candidate_estimates(counters, current)
            assert [space[int(i)] for i in batch.candidate_indices] == [
                est.configuration for est in estimates
            ]
            np.testing.assert_array_equal(
                batch.predicted_time_s,
                np.array([est.predicted_time_s for est in estimates]),
            )

    def test_gated_space_equivalence(self, platform, gated_space):
        power_model, performance_model, states = _decision_states(
            platform, gated_space, n_states=25, seed=37
        )
        batch_oracle = RuntimeOracle(gated_space, power_model,
                                     performance_model, mode="batch")
        scalar_oracle = RuntimeOracle(gated_space, power_model,
                                      performance_model, mode="scalar")
        for counters, current in states:
            best_b, _ = batch_oracle.best_configuration(counters, current)
            best_s, _ = scalar_oracle.best_configuration(counters, current)
            assert best_b == best_s

    def test_edp_metric_equivalence(self, platform, space):
        power_model, performance_model, states = _decision_states(
            platform, space, n_states=20, seed=41
        )
        batch_oracle = RuntimeOracle(space, power_model, performance_model,
                                     metric="edp", mode="batch")
        scalar_oracle = RuntimeOracle(space, power_model, performance_model,
                                      metric="edp", mode="scalar")
        for counters, current in states:
            best_b, _ = batch_oracle.best_configuration(counters, current)
            best_s, _ = scalar_oracle.best_configuration(counters, current)
            assert best_b == best_s

    def test_argmin_tie_breaking_on_equal_energies(self, platform, space):
        """Exact ties must resolve to the first candidate in both modes.

        A fresh power model predicts exactly 0.0 W for every candidate
        (zero weights, clamped at zero), so every candidate's predicted
        energy ties at exactly 0.0 — the argmin must pick the first
        candidate of the neighbourhood enumeration in both modes.
        """
        power_model = CpuPowerModel(platform)  # never updated: weights are 0
        _, performance_model, states = _decision_states(
            platform, space, n_states=5, seed=43
        )
        batch_oracle = RuntimeOracle(space, power_model, performance_model,
                                     mode="batch")
        scalar_oracle = RuntimeOracle(space, power_model, performance_model,
                                      mode="scalar")
        for counters, current in states:
            estimates = scalar_oracle.candidate_estimates(counters, current)
            energies = [est.predicted_energy_j for est in estimates]
            assert energies.count(0.0) == len(energies)  # genuinely all tied
            best_b, est_b = batch_oracle.best_configuration(counters, current)
            best_s, _ = scalar_oracle.best_configuration(counters, current)
            first = estimates[0].configuration
            assert best_b == best_s == first
            assert est_b.predicted_energy_j == 0.0

    def test_batch_mode_falls_back_for_foreign_configuration(self, platform,
                                                             space):
        """A current config outside the space still gets a scalar decision."""
        restricted = space.restrict(max_opp_index=1)
        power_model, performance_model, states = _decision_states(
            platform, space, n_states=3, seed=47
        )
        oracle = RuntimeOracle(restricted, power_model, performance_model,
                               mode="batch")
        counters, _ = states[0]
        # A full-space configuration two OPP steps above the restriction cap
        # is not a member of the restricted space but its radius-2
        # neighbourhood still intersects it; the oracle must answer (via the
        # scalar fallback) with a candidate from the restricted space.
        from repro.soc.configuration import SoCConfiguration
        foreign = SoCConfiguration.from_dicts(
            {name: 3 for name in space.cluster_order},
            {name: space.platform.clusters[name].n_cores
             for name in space.cluster_order},
        )
        assert space.contains(foreign) and not restricted.contains(foreign)
        best, _ = oracle.best_configuration(counters, foreign)
        assert restricted.contains(best)


class TestModelBatchPaths:
    def test_power_features_match_scalar_build(self, platform, space):
        power_model, _, states = _decision_states(platform, space,
                                                  n_states=8, seed=53)
        features = power_model.features
        for counters, current in states:
            matrix = features.build_batch(counters, space.soa_view(),
                                          reference_config=current)
            for i, config in enumerate(space):
                row = features.build(counters, config, reference_config=current)
                np.testing.assert_array_equal(matrix[i], row)

    def test_power_features_default_reference_is_candidate(self, platform,
                                                           space):
        power_model, _, states = _decision_states(platform, space,
                                                  n_states=4, seed=59)
        features = power_model.features
        for counters, _ in states:
            matrix = features.build_batch(counters, space.soa_view())
            for i, config in enumerate(space):
                row = features.build(counters, config)
                np.testing.assert_array_equal(matrix[i], row)

    def test_time_batch_matches_scalar_bitwise(self, platform, space):
        _, performance_model, states = _decision_states(platform, space,
                                                        n_states=8, seed=61)
        for counters, current in states:
            times = performance_model.predict_time_s_batch(
                counters, space.soa_view(), reference_config=current
            )
            for i, config in enumerate(space):
                scalar = performance_model.predict_time_s(
                    counters, config, reference_config=current
                )
                assert times[i] == scalar

    def test_time_batch_requires_reference(self, platform, space):
        _, performance_model, states = _decision_states(platform, space,
                                                        n_states=1, seed=67)
        counters, _ = states[0]
        with pytest.raises(ValueError):
            performance_model.predict_time_s_batch(counters, space.soa_view())

    def test_time_batch_scales_with_instructions(self, platform, space):
        _, performance_model, states = _decision_states(platform, space,
                                                        n_states=4, seed=71)
        for counters, current in states:
            times = performance_model.predict_time_s_batch(
                counters, space.soa_view(), n_instructions=2e9,
                reference_config=current,
            )
            for i, config in enumerate(space):
                scalar = performance_model.predict_time_s(
                    counters, config, n_instructions=2e9,
                    reference_config=current,
                )
                assert times[i] == scalar

    def test_rls_predict_batch_matches_predict(self):
        rng = np.random.default_rng(73)
        from repro.ml.rls import RecursiveLeastSquares
        model = RecursiveLeastSquares(n_features=5)
        for _ in range(30):
            model.update(rng.normal(size=5), float(rng.normal()))
        queries = rng.normal(size=(50, 5))
        np.testing.assert_allclose(model.predict_batch(queries),
                                   model.predict(queries),
                                   rtol=1e-12, atol=1e-12)
        with pytest.raises(ValueError):
            model.predict_batch(np.zeros((3, 4)))


class TestSpaceIndexTables:
    def test_neighbor_indices_match_neighbors(self, space, gated_space):
        for test_space in (space, gated_space):
            for index in range(0, len(test_space), 7):
                config = test_space[index]
                for radius in (1, 2):
                    for include_self in (True, False):
                        via_indices = [
                            test_space[int(i)]
                            for i in test_space.neighbor_indices(
                                index, radius, include_self)
                        ]
                        assert via_indices == test_space.neighbors(
                            config, radius, include_self)

    def test_neighbor_tables_are_memoised(self, space):
        first = space.neighbor_indices(0, 2, True)
        second = space.neighbor_indices(0, 2, True)
        assert first is second
        view_a = space.neighborhood_view(0, 2, True)
        view_b = space.neighborhood_view(0, 2, True)
        assert view_a is view_b
        np.testing.assert_array_equal(view_a.indices, first)

    def test_neighborhood_view_arrays_match_configs(self, space):
        view = space.neighborhood_view(len(space) // 2, 2)
        for name in space.cluster_order:
            arrays = view.arrays.cluster(name)
            spec = space.platform.clusters[name]
            for row, index in enumerate(view.indices):
                config = space[int(index)]
                assert arrays.opp_index[row] == config.opp_index(name)
                assert arrays.active_cores[row] == config.cores(name)
                opp = spec.opps[config.opp_index(name)]
                assert arrays.voltage_v[row] == opp.voltage_v
                assert arrays.frequency_hz[row] == opp.frequency_hz
                assert arrays.frequency_ghz[row] == opp.frequency_hz / 1e9

    def test_clamp_is_memoised_and_correct(self, space):
        restricted = space.restrict(max_opp_index=1)
        full_top = space[len(space) - 1]
        clamped_once = restricted.clamp(full_top)
        clamped_again = restricted.clamp(full_top)
        assert clamped_once is clamped_again
        assert restricted.contains(clamped_once)
        for name in restricted.cluster_order:
            assert clamped_once.opp_index(name) <= 1

    def test_soa_view_covers_whole_space(self, space):
        soa = space.soa_view()
        for name in space.cluster_order:
            arrays = soa.cluster(name)
            assert arrays.opp_index.shape == (len(space),)
            expected = np.array([c.opp_index(name) for c in space])
            np.testing.assert_array_equal(arrays.opp_index, expected)
            np.testing.assert_array_equal(
                arrays.cores_f, np.array([float(c.cores(name)) for c in space])
            )
