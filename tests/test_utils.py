"""Tests for repro.utils (rng, records, tables)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.records import RunLog, RunRecord, as_float_dict, merge_logs
from repro.utils.rng import derive_seed, make_rng, spawn_rngs
from repro.utils.tables import format_mapping, format_table


class TestRng:
    def test_make_rng_from_int_is_deterministic(self):
        assert make_rng(7).integers(0, 100, 5).tolist() == \
            make_rng(7).integers(0, 100, 5).tolist()

    def test_make_rng_passthrough_generator(self):
        gen = np.random.default_rng(3)
        assert make_rng(gen) is gen

    def test_spawn_rngs_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert a.integers(0, 1000, 10).tolist() != b.integers(0, 1000, 10).tolist()

    def test_spawn_rngs_deterministic(self):
        first = [g.integers(0, 1000) for g in spawn_rngs(5, 3)]
        second = [g.integers(0, 1000) for g in spawn_rngs(5, 3)]
        assert first == second

    def test_spawn_rngs_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_rngs_from_generator(self):
        gens = spawn_rngs(np.random.default_rng(0), 2)
        assert len(gens) == 2

    def test_derive_seed_deterministic(self):
        assert derive_seed(42, [1, 2]) == derive_seed(42, [1, 2])
        assert derive_seed(42, [1, 2]) != derive_seed(42, [2, 1])


class TestRunLog:
    def test_append_and_column(self):
        log = RunLog()
        log.append(0, energy=1.0, power=2.0)
        log.append(1, energy=3.0)
        assert len(log) == 2
        assert log.column("energy").tolist() == [1.0, 3.0]
        assert np.isnan(log.column("power")[1])

    def test_steps_and_last(self):
        log = RunLog()
        log.append(0, x=1.0)
        log.append(5, x=2.0)
        assert log.steps().tolist() == [0, 5]
        assert log.last()["x"] == 2.0

    def test_last_on_empty_raises(self):
        with pytest.raises(IndexError):
            RunLog().last()

    def test_summary(self):
        log = RunLog()
        for i in range(5):
            log.append(i, value=float(i))
        summary = log.summary("value")
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 0.0 and summary["max"] == 4.0

    def test_to_dict_round_trip(self):
        log = RunLog()
        log.append(0, a=1.0, b=2.0)
        log.append(1, a=3.0, b=4.0)
        data = log.to_dict()
        assert data["a"] == [1.0, 3.0]
        assert data["step"] == [0.0, 1.0]

    def test_merge_logs(self):
        log_a, log_b = RunLog(), RunLog()
        log_a.append(0, y=1.0)
        log_b.append(0, y=9.0)
        merged = merge_logs({"a": log_a, "b": log_b}, "y")
        assert merged["a"].tolist() == [1.0]
        assert merged["b"].tolist() == [9.0]

    def test_record_get_default(self):
        record = RunRecord(step=0, values={"x": 1.0})
        assert record.get("missing", 7.0) == 7.0

    def test_as_float_dict(self):
        assert as_float_dict({"a": 1, "b": 2.5}) == {"a": 1.0, "b": 2.5}

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=30))
    def test_summary_bounds_property(self, values):
        log = RunLog()
        for i, value in enumerate(values):
            log.append(i, v=value)
        summary = log.summary("v")
        tolerance = 1e-12 + 1e-9 * abs(summary["mean"])
        assert summary["min"] - tolerance <= summary["mean"] <= summary["max"] + tolerance


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [3, 4.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_mapping(self):
        text = format_mapping({"metric": 1.23456}, precision=2)
        assert "1.23" in text

    def test_format_table_string_cells(self):
        text = format_table(["name", "v"], [["hello", 1]])
        assert "hello" in text
