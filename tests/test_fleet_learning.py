"""Property tests for the cross-device batched learning kernels.

The fleet's online-IL batching rests on three exact-equivalence claims:

* a stacked-RLS batch update equals N sequential rank-1 updates, bitwise,
  independent of device order;
* the stacked MLP stack (forward and minibatch SGD) equals per-device
  scalar training, bitwise, including the pre-drawn shuffle orders;
* the padded segmented argmin preserves the scalar first-minimum
  tie-break (exact ties resolve to the lowest candidate position, and
  padding can never win).

These tests pin each claim directly against the scalar reference
implementations, which stay in the codebase for exactly this purpose.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core.runtime_oracle import RuntimeOracle
from repro.fleet.kernels import ARGMIN_EMPTY, masked_first_argmin
from repro.ml.mlp import FleetMLPStack, MLPClassifier
from repro.ml.rls import RecursiveLeastSquares, rls_update_fleet
from repro.models.performance import (
    CpuPerformanceModel,
    fleet_update_performance_models,
)
from repro.models.power import CpuPowerModel, fleet_update_power_models
from repro.soc.simulator import SoCSimulator
from repro.workloads.generator import SnippetTraceGenerator
from repro.workloads.suites import training_workloads


def make_snippets(n, seed=11):
    generator = SnippetTraceGenerator(seed=seed)
    snippets = []
    for workload in training_workloads():
        snippets.extend(generator.generate(workload.scaled(0.2)))
    return snippets[:n]


# --------------------------------------------------------------------- #
# Stacked RLS == N sequential rank-1 updates
# --------------------------------------------------------------------- #
class TestFleetRLS:
    def _models(self, n=5, n_features=4):
        rng = np.random.default_rng(7)
        models = []
        for i in range(n):
            model = RecursiveLeastSquares(
                n_features=n_features,
                forgetting_factor=0.9 + 0.02 * i,  # heterogeneous lambdas
                delta=50.0 + 10.0 * i,
                initial_weights=rng.normal(size=n_features),
            )
            models.append(model)
        return models

    def test_batch_matches_sequential_updates_bitwise(self):
        rng = np.random.default_rng(3)
        batch = self._models()
        reference = copy.deepcopy(batch)
        for _ in range(6):
            features = rng.normal(size=(len(batch), 4))
            targets = rng.normal(size=len(batch))
            scalar_errors = [model.update(features[d], targets[d])
                             for d, model in enumerate(reference)]
            errors = rls_update_fleet(batch, features, targets)
            np.testing.assert_array_equal(errors, scalar_errors)
            for ref, model in zip(reference, batch):
                np.testing.assert_array_equal(ref.weights, model.weights)
                np.testing.assert_array_equal(ref.covariance,
                                              model.covariance)
                np.testing.assert_array_equal(ref.last_gain, model.last_gain)
                assert ref.last_error == model.last_error
                assert ref.n_updates == model.n_updates

    def test_device_order_cannot_matter(self):
        """Models share no state, so the scalar update order is free —
        the batch must equal ANY sequential ordering, not just 0..N-1."""
        rng = np.random.default_rng(4)
        batch = self._models()
        reference = copy.deepcopy(batch)
        features = rng.normal(size=(len(batch), 4))
        targets = rng.normal(size=len(batch))
        for d in reversed(range(len(reference))):
            reference[d].update(features[d], targets[d])
        rls_update_fleet(batch, features, targets)
        for ref, model in zip(reference, batch):
            np.testing.assert_array_equal(ref.weights, model.weights)
            np.testing.assert_array_equal(ref.covariance, model.covariance)

    def test_shared_model_instance_rejected(self):
        models = self._models(n=3)
        shared = [models[0], models[1], models[0]]
        with pytest.raises(ValueError, match="distinct model instances"):
            rls_update_fleet(shared, np.zeros((3, 4)), np.zeros(3))

    def test_heterogeneous_models_rejected(self):
        models = [RecursiveLeastSquares(n_features=4),
                  RecursiveLeastSquares(n_features=3)]
        with pytest.raises(ValueError, match="homogeneous"):
            rls_update_fleet(models, np.zeros((2, 4)), np.zeros(2))


# --------------------------------------------------------------------- #
# Segmented argmin: first-minimum tie-break, padding masked out
# --------------------------------------------------------------------- #
class TestMaskedFirstArgmin:
    def test_matches_scalar_first_minimum(self):
        rng = np.random.default_rng(9)
        costs = rng.normal(size=(20, 13))
        lengths = rng.integers(1, 14, size=20)
        lengths[0], lengths[3] = 6, 9  # keep the planted ties in-segment
        valid = np.arange(13)[None, :] < lengths[:, None]
        # Force exact ties inside the valid region of several rows.
        costs[0, :4] = -5.0
        costs[3, 2] = costs[3, 7] = costs[3].min() - 1.0
        # Padding carries the global minimum — it must never win.
        costs[~valid] = -1e9
        best = masked_first_argmin(costs, valid)
        for row in range(costs.shape[0]):
            expected, expected_cost = None, None
            for position in range(int(lengths[row])):
                cost = costs[row, position]
                if expected_cost is None or cost < expected_cost:
                    expected, expected_cost = position, cost
            assert best[row] == expected, f"row {row}"
        assert best[0] == 0  # first of the tied minima
        assert best[3] == 2

    def test_all_tied_row_selects_position_zero(self):
        costs = np.full((3, 5), 1.25)
        valid = np.ones((3, 5), dtype=bool)
        valid[1, 3:] = False
        np.testing.assert_array_equal(
            masked_first_argmin(costs, valid), [0, 0, 0]
        )

    def test_all_masked_row_raises_naming_rows(self):
        """An all-masked row has no argmin — silent position 0 is banned."""
        costs = np.zeros((4, 3))
        valid = np.ones((4, 3), dtype=bool)
        valid[1] = False
        valid[3] = False
        with pytest.raises(ValueError, match=r"rows \[1, 3\]"):
            masked_first_argmin(costs, valid)

    def test_sentinel_mode_marks_empty_rows_only(self):
        rng = np.random.default_rng(4)
        costs = rng.normal(size=(5, 6))
        valid = np.ones((5, 6), dtype=bool)
        valid[2] = False
        reference = masked_first_argmin(costs, np.ones_like(valid))
        best = masked_first_argmin(costs, valid, on_empty="sentinel")
        assert best[2] == ARGMIN_EMPTY
        for row in (0, 1, 3, 4):
            assert best[row] == reference[row]

    def test_valid_infinite_costs_still_win(self):
        """Only the mask defines emptiness — a valid +inf row is not empty."""
        costs = np.full((2, 3), np.inf)
        valid = np.ones((2, 3), dtype=bool)
        np.testing.assert_array_equal(
            masked_first_argmin(costs, valid), [0, 0]
        )

    def test_rejects_unknown_on_empty(self):
        with pytest.raises(ValueError, match="on_empty"):
            masked_first_argmin(np.zeros((1, 1)),
                                np.ones((1, 1), dtype=bool),
                                on_empty="ignore")


# --------------------------------------------------------------------- #
# Stacked MLP == per-device scalar training
# --------------------------------------------------------------------- #
class TestFleetMLPStack:
    N_CLASSES = 6
    N_FEATURES = 4

    def _classifiers(self, n=3):
        classifiers = []
        for i in range(n):
            classifier = MLPClassifier(hidden_sizes=(8,), learning_rate=1e-2,
                                       momentum=0.9, l2=1e-5, batch_size=4,
                                       seed=10 + i)
            classifier.ensure_classes(range(self.N_CLASSES), self.N_FEATURES)
            classifiers.append(classifier)
        return classifiers

    def _dataset(self, seed, n_samples=10):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n_samples, self.N_FEATURES))
        labels = rng.integers(0, self.N_CLASSES, size=n_samples)
        return data, labels

    def test_partial_fit_rows_matches_scalar_bitwise(self):
        batch = self._classifiers()
        reference = copy.deepcopy(batch)
        stack = FleetMLPStack(batch)
        rows = np.arange(len(batch))
        for round_seed in (20, 21):
            datasets, labels = zip(*(self._dataset(round_seed + 100 * i)
                                     for i in range(len(batch))))
            for classifier, data, labs in zip(reference, datasets, labels):
                classifier.partial_fit(data, labs, epochs=3)
            encoded = [classifier._encode(labs)
                       for classifier, labs in zip(batch, labels)]
            stack.partial_fit_rows(rows, list(datasets), encoded, epochs=3)
            for ref, actual in zip(reference, batch):
                for layer in range(len(ref._core.weights)):
                    np.testing.assert_array_equal(
                        ref._core.weights[layer], actual._core.weights[layer]
                    )
                    np.testing.assert_array_equal(
                        ref._core.biases[layer], actual._core.biases[layer]
                    )
                    np.testing.assert_array_equal(
                        ref._core._w_vel[layer], actual._core._w_vel[layer]
                    )
        probe = np.random.default_rng(5).normal(size=(7, self.N_FEATURES))
        for ref, actual in zip(reference, batch):
            np.testing.assert_array_equal(ref.predict(probe),
                                          actual.predict(probe))

    def test_subset_rows_leave_other_devices_untouched(self):
        batch = self._classifiers(n=4)
        reference = copy.deepcopy(batch)
        stack = FleetMLPStack(batch)
        rows = np.array([0, 2])
        data, labels = self._dataset(33)
        for row in rows:
            reference[row].partial_fit(data, labels, epochs=2)
        encoded = [batch[row]._encode(labels) for row in rows]
        stack.partial_fit_rows(rows, [data, data], encoded, epochs=2)
        for row, (ref, actual) in enumerate(zip(reference, batch)):
            for layer in range(len(ref._core.weights)):
                np.testing.assert_array_equal(
                    ref._core.weights[layer], actual._core.weights[layer],
                    err_msg=f"device {row} layer {layer}",
                )

    def test_predict_encoded_matches_scalar_and_breaks_ties_first(self):
        batch = self._classifiers()
        stack = FleetMLPStack(batch)
        rows = np.arange(len(batch))
        features = np.random.default_rng(6).normal(
            size=(len(batch), self.N_FEATURES))
        positions = stack.predict_encoded(rows, features)
        for i, classifier in enumerate(batch):
            assert (classifier.classes_[positions[i]]
                    == classifier.predict(features[i:i + 1])[0])
        # Zeroed weights/biases make every logit identical: the scalar
        # argmax and the stacked argmax must both pick position 0.
        for layer in range(len(stack.weights)):
            stack.weights[layer][:] = 0.0
            stack.biases[layer][:] = 0.0
        tied = stack.predict_encoded(rows, features)
        np.testing.assert_array_equal(tied, np.zeros(len(batch), dtype=int))
        for i, classifier in enumerate(batch):
            assert classifier.predict(features[i:i + 1])[0] == \
                classifier.classes_[0]

    def test_stack_rejects_shared_cores_and_ragged_architectures(self):
        batch = self._classifiers(n=2)
        batch[1]._core = batch[0]._core
        with pytest.raises(ValueError, match="distinct"):
            FleetMLPStack(batch)
        other = MLPClassifier(hidden_sizes=(16,), seed=0)
        other.ensure_classes(range(self.N_CLASSES), self.N_FEATURES)
        with pytest.raises(ValueError, match="architecture"):
            FleetMLPStack([self._classifiers(n=1)[0], other])


# --------------------------------------------------------------------- #
# Fleet model updates and oracle sweep vs scalar references
# --------------------------------------------------------------------- #
class TestFleetModelUpdates:
    @pytest.fixture()
    def observations(self, platform, space):
        """(counters, config_index) pairs from real simulator runs."""
        simulator = SoCSimulator(platform, noise_scale=0.0, seed=0)
        snippets = make_snippets(12)
        rng = np.random.default_rng(17)
        indices = rng.integers(0, len(space), size=len(snippets))
        pairs = []
        for snippet, index in zip(snippets, indices):
            config = space[int(index)]
            result = simulator.run_snippet(snippet, config)
            pairs.append((result.counters, int(index)))
        return pairs

    def _models(self, platform, n):
        powers = [CpuPowerModel(platform, forgetting_factor=0.99 + 0.001 * i)
                  for i in range(n)]
        perfs = [CpuPerformanceModel(platform,
                                     forgetting_factor=0.99 + 0.001 * i)
                 for i in range(n)]
        return powers, perfs

    def test_fleet_model_updates_match_scalar_bitwise(self, platform, space,
                                                      observations):
        n = 4
        powers, perfs = self._models(platform, n)
        ref_powers, ref_perfs = self._models(platform, n)
        soa = space.soa_view()
        for step in range(len(observations) // n):
            chunk = observations[step * n:(step + 1) * n]
            counters_list = [c for c, _ in chunk]
            indices = np.array([i for _, i in chunk], dtype=np.intp)
            for d in range(n):
                config = space[int(indices[d])]
                ref_powers[d].update(counters_list[d], config)
                ref_perfs[d].update(counters_list[d], config)
            candidates = soa.gather(indices)
            fleet_update_power_models(powers, counters_list, candidates)
            fleet_update_performance_models(perfs, counters_list, candidates)
            for ref, actual in zip(ref_powers + ref_perfs, powers + perfs):
                np.testing.assert_array_equal(ref.rls.weights,
                                              actual.rls.weights)
                np.testing.assert_array_equal(ref.rls.covariance,
                                              actual.rls.covariance)
                assert ref.rls.last_error == actual.rls.last_error
                assert ref.rls.n_updates == actual.rls.n_updates

    def test_fleet_best_indices_matches_scalar_including_exact_ties(
            self, platform, space, observations):
        n = 4
        powers, perfs = self._models(platform, n)
        oracles = [RuntimeOracle(space, powers[d], perfs[d],
                                 neighborhood_radius=2, metric="energy")
                   for d in range(n)]
        soa = space.soa_view()
        # First pass: freshly built models are identical across devices,
        # so many candidates predict identical costs — the fleet sweep
        # must still resolve every tie to the scalar first minimum.
        # Later passes diverge the models with per-device updates.
        for step in range(len(observations) // n):
            chunk = observations[step * n:(step + 1) * n]
            counters_list = [c for c, _ in chunk]
            indices = np.array([i for _, i in chunk], dtype=np.intp)
            best = RuntimeOracle.fleet_best_indices(
                oracles, counters_list, indices)
            for d, oracle in enumerate(oracles):
                config, _ = oracle.best_configuration(
                    counters_list[d], space[int(indices[d])])
                assert int(best[d]) == space.index_of(config), (
                    f"step {step} device {d}"
                )
            candidates = soa.gather(indices)
            fleet_update_power_models(powers, counters_list, candidates)
            fleet_update_performance_models(perfs, counters_list, candidates)

    def test_fleet_best_indices_degrades_empty_rows_to_scalar(
            self, platform, space, observations, monkeypatch):
        """A sentinel row from the sweep falls back to the scalar oracle.

        ``include_self=True`` means a real sweep always has at least one
        valid candidate per row, so the empty-row path is forced here by
        wrapping the segmented argmin to mark one row empty — the result
        must still equal every device's scalar ``best_configuration``.
        """
        import repro.fleet.kernels as kernels_module

        n = 4
        powers, perfs = self._models(platform, n)
        oracles = [RuntimeOracle(space, powers[d], perfs[d],
                                 neighborhood_radius=2, metric="energy")
                   for d in range(n)]
        chunk = observations[:n]
        counters_list = [c for c, _ in chunk]
        indices = np.array([i for _, i in chunk], dtype=np.intp)

        real_argmin = kernels_module.masked_first_argmin

        def forced_empty(costs, valid, on_empty="raise"):
            best = real_argmin(costs, valid, on_empty=on_empty)
            best[1] = ARGMIN_EMPTY
            return best

        # fleet_best_indices imports the kernel lazily (circular-import
        # avoidance), so the patch must land on the kernels module.
        monkeypatch.setattr(kernels_module, "masked_first_argmin",
                            forced_empty)
        best = RuntimeOracle.fleet_best_indices(oracles, counters_list,
                                                indices)
        for d, oracle in enumerate(oracles):
            config, _ = oracle.best_configuration(
                counters_list[d], space[int(indices[d])])
            assert int(best[d]) == space.index_of(config), f"device {d}"
