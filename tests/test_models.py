"""Tests for the online analytical models (power, performance, thermal, Kalman, skin)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models import (
    CpuPerformanceModel,
    CpuPowerModel,
    FrameTimeModel,
    KalmanFilter,
    SensitivityModel,
    LearnedSensitivityModel,
    SkinTemperatureEstimator,
    ThermalFixedPointAnalysis,
    ThermalRCModel,
    greedy_sensor_selection,
)
from repro.models.kalman import steady_state_covariance
from repro.models.thermal import two_node_mobile_thermal_model
from repro.soc.configuration import SoCConfiguration


def run_and_update(simulator, space, model_power, model_perf, snippet, configs):
    """Run a snippet over several configs, updating both models."""
    results = []
    for config in configs:
        result = simulator.run_snippet(snippet, config)
        model_power.update(result.counters, config)
        model_perf.update(result.counters, config)
        results.append(result)
    return results


class TestCpuPowerModel:
    def test_learns_power_within_ten_percent(self, simulator, space, compute_snippet):
        model = CpuPowerModel(simulator.platform)
        configs = list(space)[:: max(1, len(space) // 20)]
        perf = CpuPerformanceModel(simulator.platform)
        run_and_update(simulator, space, model, perf, compute_snippet, configs * 2)
        for config in configs[:5]:
            result = simulator.evaluate_expected(compute_snippet, config)
            predicted = model.predict(result.counters, config)
            assert predicted == pytest.approx(result.average_power_w, rel=0.10)

    def test_candidate_prediction_orders_frequencies(self, simulator, space,
                                                     compute_snippet):
        """Predicted power must increase with the candidate big frequency."""
        model = CpuPowerModel(simulator.platform)
        perf = CpuPerformanceModel(simulator.platform)
        configs = list(space)[:: max(1, len(space) // 25)]
        run_and_update(simulator, space, model, perf, compute_snippet, configs * 2)
        reference = space.default_configuration()
        counters = simulator.evaluate_expected(compute_snippet, reference).counters
        opps, cores = reference.as_dicts()
        low = SoCConfiguration.from_dicts({**opps, "big": 0}, cores)
        high = SoCConfiguration.from_dicts(
            {**opps, "big": len(simulator.platform.big.opps) - 1}, cores)
        assert (model.predict(counters, high, reference_config=reference)
                > model.predict(counters, low, reference_config=reference))

    def test_n_updates_tracked(self, simulator, space, compute_snippet):
        model = CpuPowerModel(simulator.platform)
        result = simulator.evaluate_expected(compute_snippet, space.default_configuration())
        model.update(result.counters, result.configuration)
        assert model.n_updates == 1


class TestCpuPerformanceModel:
    def test_candidate_time_prediction_accuracy(self, simulator, space, memory_snippet):
        """After warm-up the model predicts candidate-config times within ~15 %."""
        model = CpuPerformanceModel(simulator.platform)
        power = CpuPowerModel(simulator.platform)
        configs = list(space)[:: max(1, len(space) // 20)]
        run_and_update(simulator, space, power, model, memory_snippet, configs * 2)
        reference = space.default_configuration()
        counters = simulator.evaluate_expected(memory_snippet, reference).counters
        opps, cores = reference.as_dicts()
        for big_index in (0, len(simulator.platform.big.opps) - 1):
            candidate = SoCConfiguration.from_dicts({**opps, "big": big_index}, cores)
            truth = simulator.evaluate_expected(memory_snippet, candidate).execution_time_s
            predicted = model.predict_time_s(counters, candidate,
                                             reference_config=reference)
            assert predicted == pytest.approx(truth, rel=0.15)

    def test_latency_estimate_positive(self, simulator, space, memory_snippet):
        model = CpuPerformanceModel(simulator.platform)
        power = CpuPowerModel(simulator.platform)
        configs = list(space)[:: max(1, len(space) // 15)]
        run_and_update(simulator, space, power, model, memory_snippet, configs)
        assert model.latency_ns() > 0

    def test_prediction_scales_with_instruction_count(self, simulator, space,
                                                      compute_snippet):
        model = CpuPerformanceModel(simulator.platform)
        config = space.default_configuration()
        result = simulator.evaluate_expected(compute_snippet, config)
        model.update(result.counters, config)
        base = model.predict_time_s(result.counters, config)
        doubled = model.predict_time_s(result.counters, config,
                                       n_instructions=2 * compute_snippet.n_instructions)
        assert doubled == pytest.approx(2 * base, rel=1e-6)


class TestFrameTimeModel:
    def test_tracks_constant_workload(self):
        model = FrameTimeModel(forgetting_factor=0.98)
        work, memory, frequency = 5e7, 1e7, 8e8
        true_time = work / frequency + memory / 12e9
        for _ in range(50):
            model.update(work, memory, frequency, 1, true_time)
        assert model.predict_frame_time_s(work, memory, frequency, 1) == pytest.approx(
            true_time, rel=0.02)

    def test_prediction_decreases_with_frequency(self):
        model = FrameTimeModel()
        for _ in range(30):
            model.update(5e7, 1e7, 6e8, 2, 5e7 / (6e8 * 2**0.9))
        low = model.predict_frame_time_s(5e7, 1e7, 4e8, 2)
        high = model.predict_frame_time_s(5e7, 1e7, 1.1e9, 2)
        assert high < low

    def test_adaptive_variant_constructs(self):
        model = FrameTimeModel(adaptive=True)
        model.update(1e7, 1e6, 5e8, 1, 0.02)
        assert model.n_updates == 1

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            FrameTimeModel().predict_frame_time_s(1e7, 1e6, 0.0, 1)


class TestSensitivityModels:
    def test_finite_difference_gradient_of_quadratic(self):
        model = SensitivityModel(lambda u: float(u[0]**2 + 3 * u[1]), ["a", "b"])
        grad = model.sensitivities(np.array([2.0, 1.0]))
        assert grad["a"] == pytest.approx(4.0, rel=1e-3)
        assert grad["b"] == pytest.approx(3.0, rel=1e-3)

    def test_learned_sensitivity_recovers_linear_response(self, rng):
        model = LearnedSensitivityModel(["f", "s"])
        knobs = np.array([1.0, 1.0])
        for _ in range(100):
            delta = rng.normal(size=2) * 0.1
            knobs = knobs + delta
            objective = 2.0 * knobs[0] - 0.5 * knobs[1]
            model.observe(knobs, objective)
        sens = model.sensitivities()
        assert sens["f"] == pytest.approx(2.0, abs=0.1)
        assert sens["s"] == pytest.approx(-0.5, abs=0.1)

    def test_learned_sensitivity_ignores_repeated_points(self):
        model = LearnedSensitivityModel(["x"])
        assert model.observe([1.0], 5.0) is None
        assert model.observe([1.0], 5.0) is None  # no knob change: no update
        assert model.n_updates == 0

    def test_dimension_check(self):
        model = LearnedSensitivityModel(["x", "y"])
        with pytest.raises(ValueError):
            model.observe([1.0], 0.0)


class TestThermalModel:
    def test_fixed_point_reached_by_simulation(self):
        model = two_node_mobile_thermal_model()
        analysis = ThermalFixedPointAnalysis(model)
        fixed = analysis.fixed_point(np.array([3.0]))
        trajectory = model.simulate(np.array([25.0, 25.0]),
                                    np.tile([3.0], (600, 1)))
        assert np.allclose(trajectory[-1], fixed.temperatures, atol=0.1)
        assert fixed.stable

    def test_stability_condition(self):
        model = two_node_mobile_thermal_model()
        assert ThermalFixedPointAnalysis(model).is_stable()
        unstable = ThermalRCModel(
            state_matrix=np.array([[1.05]]), input_matrix=np.array([[1.0]]),
            ambient_vector=np.array([0.0]))
        assert not ThermalFixedPointAnalysis(unstable).is_stable()

    def test_higher_power_raises_fixed_point(self):
        analysis = ThermalFixedPointAnalysis(two_node_mobile_thermal_model())
        low = analysis.fixed_point(np.array([1.0])).max_temperature()
        high = analysis.fixed_point(np.array([5.0])).max_temperature()
        assert high > low

    def test_power_budget_respects_limit(self):
        model = two_node_mobile_thermal_model()
        analysis = ThermalFixedPointAnalysis(model)
        budget = analysis.power_budget(temperature_limit_c=70.0)
        assert budget > 0
        at_budget = analysis.fixed_point(np.array([budget]))
        assert at_budget.max_temperature() <= 70.0 + 0.01

    def test_power_budget_zero_when_ambient_exceeds_limit(self):
        model = two_node_mobile_thermal_model(ambient_c=80.0)
        analysis = ThermalFixedPointAnalysis(model)
        assert analysis.power_budget(temperature_limit_c=70.0) == 0.0

    def test_predict_future_converges_toward_fixed_point(self):
        model = two_node_mobile_thermal_model()
        analysis = ThermalFixedPointAnalysis(model)
        fixed = analysis.fixed_point(np.array([2.0]))
        prediction = model.predict_future(np.array([25.0, 25.0]), np.array([2.0]),
                                          horizon=500)
        assert np.allclose(prediction, fixed.temperatures, atol=0.1)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            ThermalRCModel(np.eye(2), np.ones((3, 1)), np.zeros(2))
        model = two_node_mobile_thermal_model()
        with pytest.raises(ValueError):
            model.step(np.zeros(3), np.zeros(1))


class TestKalman:
    def test_tracks_constant_scalar_state(self, rng):
        kalman = KalmanFilter(
            transition=[[1.0]], observation=[[1.0]],
            process_noise=[[1e-6]], measurement_noise=[[0.5]],
            initial_state=[0.0],
        )
        estimates = [kalman.step(np.array([5.0 + rng.normal(scale=0.5)]))[0]
                     for _ in range(100)]
        assert estimates[-1] == pytest.approx(5.0, abs=0.3)

    def test_covariance_decreases_with_updates(self):
        kalman = KalmanFilter([[1.0]], [[1.0]], [[1e-4]], [[1.0]],
                              initial_covariance=[[10.0]])
        initial = kalman.covariance[0, 0]
        for _ in range(20):
            kalman.step(np.array([1.0]))
        assert kalman.covariance[0, 0] < initial

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            KalmanFilter([[1.0, 0.0]], [[1.0]], [[1.0]], [[1.0]])

    def test_steady_state_covariance_converges(self):
        p = steady_state_covariance(
            np.array([[0.9]]), np.array([[1.0]]), np.array([[0.1]]),
            np.array([[0.5]]))
        assert p.shape == (1, 1)
        assert 0 < p[0, 0] < 1.0


class TestSensorSelection:
    def test_selects_most_informative_sensor(self):
        transition = np.diag([0.9, 0.5])
        pool = np.array([[1.0, 0.0], [0.0, 1.0], [0.2, 0.2]])
        noise = np.diag([0.01, 10.0, 10.0])
        result = greedy_sensor_selection(transition, pool, np.eye(2) * 0.1,
                                         measurement_noise_pool=noise, k=1)
        assert result.selected == [0]

    def test_more_sensors_never_hurt(self):
        transition = np.diag([0.9, 0.8])
        pool = np.eye(2)
        one = greedy_sensor_selection(transition, pool, np.eye(2) * 0.1, k=1)
        two = greedy_sensor_selection(transition, pool, np.eye(2) * 0.1, k=2)
        assert two.error_trace <= one.error_trace + 1e-9
        assert len(two.trace_history) == 2

    def test_k_validation(self):
        with pytest.raises(ValueError):
            greedy_sensor_selection(np.eye(2), np.eye(2), np.eye(2), k=3)


class TestSkinTemperature:
    def test_estimates_linear_sensor_combination(self, rng):
        estimator = SkinTemperatureEstimator(n_sensors=3, use_smoother=False)
        weights = np.array([0.3, 0.2, 0.1])
        for _ in range(300):
            sensors = rng.uniform(30, 70, size=3)
            skin = float(sensors @ weights + 5.0)
            estimator.update(sensors, skin)
        sensors = np.array([50.0, 45.0, 60.0])
        expected = float(sensors @ weights + 5.0)
        assert estimator.estimate(sensors) == pytest.approx(expected, rel=0.02)

    def test_smoother_reduces_estimate_jitter(self, rng):
        raw = SkinTemperatureEstimator(n_sensors=1, use_smoother=False)
        smooth = SkinTemperatureEstimator(n_sensors=1, use_smoother=True)
        for _ in range(200):
            sensor = rng.uniform(30, 60, size=1)
            skin = float(0.5 * sensor[0] + 10.0 + rng.normal(scale=0.5))
            raw.update(sensor, skin)
            smooth.update(sensor, skin)
        noisy_inputs = 45.0 + rng.normal(scale=2.0, size=50)
        raw_series = np.array([raw.estimate([v]) for v in noisy_inputs])
        smooth_series = np.array([smooth.estimate([v]) for v in noisy_inputs])
        assert np.std(np.diff(smooth_series)) < np.std(np.diff(raw_series))

    def test_sensor_count_validation(self):
        estimator = SkinTemperatureEstimator(n_sensors=2)
        with pytest.raises(ValueError):
            estimator.estimate([1.0])
        with pytest.raises(ValueError):
            SkinTemperatureEstimator(n_sensors=0)
