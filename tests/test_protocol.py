"""Tests for the control-plane message protocol.

The protocol is the journal's on-disk schema and the server's wire
format, so these tests pin strict round-trip behaviour: every registered
type survives ``dumps -> loads`` unchanged, decoding is strict about
types/versions/fields, and the canonical dump is deterministic (the
journal checksums it byte-for-byte).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.service.protocol import (
    DISPATCH_COMMANDS,
    DeviceRegistration,
    DispatchCommand,
    DispatchReceipt,
    ErrorReport,
    FlatlineAlert,
    ProtocolError,
    RunGenesis,
    ShutdownNotice,
    SnapshotManifest,
    SnapshotRequest,
    StepBoundary,
    TelemetryReport,
    decode_message,
    dumps_message,
    encode_message,
    loads_message,
    message_types,
)

#: One representative non-default instance of every registered type.
SAMPLES = [
    DeviceRegistration(device="device-00", policy="governor-Ondemand",
                       trace_steps=84, scenario="thermal_throttle",
                       supervised=True),
    TelemetryReport(device="device-01", round=7, steps_completed=21,
                    trace_steps=84, health="degraded",
                    total_energy_j=12.5, total_time_s=0.33,
                    state_digest="ab" * 32),
    SnapshotRequest(reason="client"),
    SnapshotManifest(round=5, files=(
        ("device-00", "snapshots/round-00000005/device-00.snapshot", "0" * 64),
        ("device-01", "snapshots/round-00000005/device-01.snapshot", "f" * 64),
    )),
    DispatchCommand(command="restrict-space", device="device-00", value=2,
                    idempotency_key="k-1", apply_round=4),
    DispatchCommand(command="set-policy", device="device-01",
                    value="powersave", idempotency_key="k-2"),
    DispatchCommand(command="pause"),
    DispatchReceipt(idempotency_key="k-1", apply_round=4,
                    status="duplicate", detail="seen before"),
    FlatlineAlert(device="device-02", round=9, stalled_rounds=3,
                  health="quarantined"),
    ErrorReport(context="dispatch", message="unknown device"),
    RunGenesis(config={"policy": "ondemand", "n_devices": 3,
                       "scenarios": ["thermal_throttle"]}),
    StepBoundary(round=12, advanced=3),
    ShutdownNotice(round=12, reason="sigterm"),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "message", SAMPLES, ids=lambda m: type(m).__name__)
    def test_dumps_loads_identity(self, message):
        assert loads_message(dumps_message(message)) == message

    @pytest.mark.parametrize(
        "message", SAMPLES, ids=lambda m: type(m).__name__)
    def test_canonical_dump_is_deterministic(self, message):
        assert dumps_message(message) == dumps_message(
            loads_message(dumps_message(message)))

    def test_every_registered_type_has_a_sample(self):
        assert {type(m) for m in SAMPLES} == set(message_types().values())

    def test_encode_carries_type_and_version(self):
        payload = encode_message(StepBoundary(round=1, advanced=2))
        assert payload["type"] == "step.boundary"
        assert payload["version"] == StepBoundary.VERSION

    def test_manifest_files_round_trip_as_tuples(self):
        manifest = loads_message(dumps_message(SAMPLES[3]))
        assert isinstance(manifest.files, tuple)
        assert all(isinstance(entry, tuple) for entry in manifest.files)

    def test_genesis_config_round_trips_as_dict(self):
        genesis = loads_message(dumps_message(SAMPLES[-3]))
        assert isinstance(genesis.config, dict)
        assert genesis.config["scenarios"] == ["thermal_throttle"]


class TestStrictness:
    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_message({"type": "no.such.thing", "version": 1})

    def test_version_mismatch_rejected(self):
        payload = encode_message(StepBoundary(round=1))
        payload["version"] = 99
        with pytest.raises(ProtocolError, match="schema version"):
            decode_message(payload)

    def test_unexpected_field_rejected(self):
        payload = encode_message(StepBoundary(round=1))
        payload["surprise"] = True
        with pytest.raises(ProtocolError, match="unexpected fields"):
            decode_message(payload)

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ProtocolError, match="must be a dict"):
            decode_message(["not", "a", "dict"])

    def test_invalid_json_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            loads_message("{half a payload")

    def test_unknown_dispatch_command_rejected(self):
        with pytest.raises(ProtocolError, match="unknown dispatch command"):
            DispatchCommand(command="reboot")
        payload = encode_message(DispatchCommand(command="pause"))
        payload["command"] = "reboot"
        with pytest.raises(ProtocolError, match="unknown dispatch command"):
            decode_message(payload)

    def test_known_commands_all_construct(self):
        for command in DISPATCH_COMMANDS:
            assert DispatchCommand(command=command).command == command

    def test_messages_are_frozen(self):
        boundary = StepBoundary(round=1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            boundary.round = 2

    def test_unregistered_message_cannot_encode(self):
        @dataclasses.dataclass(frozen=True)
        class Rogue:
            TYPE_NAME = "rogue"
            VERSION = 1

        with pytest.raises(ProtocolError, match="not a registered"):
            encode_message(Rogue())
