"""Tests for RLS, STAFF, the MLP networks, scalers and metrics."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.ml import (
    MLPClassifier,
    MLPRegressor,
    MinMaxScaler,
    RecursiveLeastSquares,
    StandardScaler,
    accuracy_score,
    mean_absolute_percentage_error,
    mean_squared_error,
    r2_score,
    root_mean_squared_error,
)
from repro.ml.metrics import energy_savings_percent, normalized_energy
from repro.models.staff import OnlineFeatureSelector, StabilizedAdaptiveForgettingRLS


class TestRecursiveLeastSquares:
    def test_converges_to_true_weights(self, rng):
        true_w = np.array([2.0, -1.0, 0.5])
        model = RecursiveLeastSquares(n_features=3, forgetting_factor=1.0)
        for _ in range(200):
            x = rng.normal(size=3)
            y = float(x @ true_w + 3.0)
            model.update(x, y)
        assert np.allclose(model.coef_, true_w, atol=1e-3)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-3)

    def test_tracks_changing_weights_with_forgetting(self, rng):
        model = RecursiveLeastSquares(n_features=1, forgetting_factor=0.9)
        for _ in range(100):
            x = rng.normal(size=1)
            model.update(x, float(2.0 * x[0]))
        for _ in range(150):
            x = rng.normal(size=1)
            model.update(x, float(-3.0 * x[0]))
        assert model.coef_[0] == pytest.approx(-3.0, abs=0.1)

    def test_initial_weights_used(self):
        model = RecursiveLeastSquares(n_features=2, initial_weights=np.array([1.0, 2.0]))
        assert model.predict_one(np.array([1.0, 1.0])) == pytest.approx(3.0)

    def test_error_returned_is_apriori(self):
        model = RecursiveLeastSquares(n_features=1)
        error = model.update(np.array([1.0]), 5.0)
        assert error == pytest.approx(5.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RecursiveLeastSquares(n_features=0)
        with pytest.raises(ValueError):
            RecursiveLeastSquares(n_features=1, forgetting_factor=0.0)
        with pytest.raises(ValueError):
            RecursiveLeastSquares(n_features=1, delta=-1.0)
        with pytest.raises(ValueError):
            RecursiveLeastSquares(n_features=2, initial_weights=np.zeros(5))

    def test_feature_dimension_checked(self):
        model = RecursiveLeastSquares(n_features=2)
        with pytest.raises(ValueError):
            model.update(np.zeros(3), 1.0)

    def test_predict_batch_shape(self, rng):
        model = RecursiveLeastSquares(n_features=2)
        out = model.predict(rng.normal(size=(5, 2)))
        assert out.shape == (5,)

    def test_covariance_stays_symmetric(self, rng):
        model = RecursiveLeastSquares(n_features=3, forgetting_factor=0.95)
        for _ in range(100):
            x = rng.normal(size=3)
            model.update(x, float(x.sum()))
        assert np.allclose(model.covariance, model.covariance.T)

    def test_reset_covariance(self):
        model = RecursiveLeastSquares(n_features=1)
        model.update(np.array([1.0]), 1.0)
        model.reset_covariance(delta=50.0)
        assert model.covariance[0, 0] == pytest.approx(50.0)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=-5, max_value=5), st.floats(min_value=-5, max_value=5))
    def test_exact_fit_of_noiseless_line(self, slope, intercept):
        model = RecursiveLeastSquares(n_features=1, forgetting_factor=1.0)
        rng = np.random.default_rng(0)
        for _ in range(80):
            x = rng.uniform(-2, 2)
            model.update(np.array([x]), slope * x + intercept)
        prediction = model.predict_one(np.array([1.5]))
        assert prediction == pytest.approx(slope * 1.5 + intercept, abs=1e-2)


class TestStaff:
    def test_forgetting_factor_drops_after_change(self, rng):
        model = StabilizedAdaptiveForgettingRLS(n_features=1,
                                                initial_forgetting_factor=0.98)
        for _ in range(60):
            x = rng.normal(size=1)
            model.update(x, float(x[0]))
        stable_lambda = model.forgetting_factor
        for _ in range(3):
            x = rng.normal(size=1)
            model.update(x, float(10.0 * x[0] + 5.0))
        assert model.forgetting_factor <= stable_lambda

    def test_forgetting_factor_stays_in_bounds(self, rng):
        model = StabilizedAdaptiveForgettingRLS(n_features=2, min_forgetting=0.9,
                                                max_forgetting=0.99)
        for _ in range(200):
            x = rng.normal(size=2)
            target = float(x.sum() + rng.normal(scale=5.0))
            model.update(x, target)
        history = np.array(model.forgetting_history)
        assert np.all(history >= 0.9 - 1e-12)
        assert np.all(history <= 0.99 + 1e-12)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            StabilizedAdaptiveForgettingRLS(n_features=1, min_forgetting=0.99,
                                            max_forgetting=0.9)

    def test_feature_selector_finds_informative_features(self, rng):
        selector = OnlineFeatureSelector(n_candidates=5, k=2, refresh_interval=10)
        for _ in range(100):
            x = rng.normal(size=5)
            y = 3.0 * x[1] - 2.0 * x[4] + rng.normal(scale=0.1)
            selector.update(x, y)
        assert set(selector.selected()) == {1, 4}

    def test_feature_selector_project(self, rng):
        selector = OnlineFeatureSelector(n_candidates=4, k=2, refresh_interval=5)
        for _ in range(20):
            x = rng.normal(size=4)
            selector.update(x, float(x[0]))
        projected = selector.project(np.arange(4.0))
        assert projected.shape == (2,)

    def test_feature_selector_validation(self):
        with pytest.raises(ValueError):
            OnlineFeatureSelector(n_candidates=3, k=4)
        selector = OnlineFeatureSelector(n_candidates=3, k=1)
        with pytest.raises(ValueError):
            selector.update([1.0, 2.0], 0.0)


class TestMLP:
    def test_regressor_fits_linear_function(self, rng):
        x = rng.uniform(-1, 1, size=(200, 2))
        y = 3.0 * x[:, 0] - 2.0 * x[:, 1]
        model = MLPRegressor(hidden_sizes=(16,), epochs=300, seed=0,
                             learning_rate=5e-3)
        model.fit(x, y)
        assert r2_score(y, model.predict(x)) > 0.95

    def test_regressor_partial_fit_improves(self, rng):
        x = rng.uniform(-1, 1, size=(100, 2))
        y = x[:, 0] + x[:, 1]
        model = MLPRegressor(hidden_sizes=(8,), epochs=5, seed=0)
        model.fit(x, y)
        before = mean_squared_error(y, model.predict(x))
        model.partial_fit(x, y, epochs=200)
        after = mean_squared_error(y, model.predict(x))
        assert after < before

    def test_regressor_multi_output(self, rng):
        x = rng.normal(size=(50, 3))
        y = np.column_stack([x[:, 0], x[:, 1] * 2])
        model = MLPRegressor(hidden_sizes=(16,), epochs=50, seed=0).fit(x, y)
        assert model.predict(x).shape == (50, 2)

    def test_regressor_parameter_count(self):
        model = MLPRegressor(hidden_sizes=(4,), epochs=1, seed=0)
        assert model.parameter_count() == 0
        model.fit(np.zeros((4, 3)), np.zeros(4))
        assert model.parameter_count() == 3 * 4 + 4 + 4 * 1 + 1

    def test_classifier_separates_clusters(self, rng):
        x = np.vstack([rng.normal(-2, 0.4, size=(60, 2)),
                       rng.normal(2, 0.4, size=(60, 2))])
        y = np.array([0] * 60 + [1] * 60)
        model = MLPClassifier(hidden_sizes=(16,), epochs=150, seed=0)
        model.fit(x, y)
        assert model.score(x, y) > 0.9

    def test_classifier_proba_sums_to_one(self, rng):
        x = rng.normal(size=(30, 2))
        y = rng.integers(0, 3, size=30)
        model = MLPClassifier(hidden_sizes=(8,), epochs=20, seed=0).fit(x, y)
        probs = model.predict_proba(x)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_classifier_ensure_classes_allows_unseen_labels(self, rng):
        model = MLPClassifier(hidden_sizes=(8,), epochs=10, seed=0)
        model.ensure_classes(range(5), n_features=3)
        x = rng.normal(size=(20, 3))
        y = rng.integers(0, 2, size=20)  # only labels 0/1 observed
        model.partial_fit(x, y, epochs=5)
        assert set(model.predict(x)).issubset(set(range(5)))

    def test_classifier_partial_fit_requires_registration(self, rng):
        model = MLPClassifier()
        with pytest.raises(RuntimeError):
            model.partial_fit(rng.normal(size=(5, 2)), np.zeros(5, dtype=int))

    def test_classifier_unknown_label_rejected(self, rng):
        model = MLPClassifier(hidden_sizes=(4,), epochs=5, seed=0)
        model.ensure_classes([0, 1], n_features=2)
        with pytest.raises(ValueError):
            model.partial_fit(rng.normal(size=(3, 2)), np.array([0, 1, 7]))

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            MLPRegressor(activation="sigmoid").fit(np.zeros((4, 2)), np.zeros(4))

    def test_encode_matches_dict_mapping(self, rng):
        """Vectorized searchsorted label encoding == the explicit dict map.

        Classes are sparse and unsorted on input; ``classes_`` is the sorted
        unique set, and every label must map to its position in it.
        """
        model = MLPClassifier(hidden_sizes=(4,), epochs=1, seed=0)
        classes = [30, 4, 17, 0, 255]
        model.ensure_classes(classes, n_features=2)
        labels = np.array(rng.choice(classes, size=200))
        encoded = model._encode(labels)
        index = {int(c): i for i, c in enumerate(model.classes_)}
        np.testing.assert_array_equal(
            encoded, np.array([index[int(label)] for label in labels])
        )
        assert encoded.dtype == np.dtype(int)


class TestScalers:
    def test_standard_scaler_zero_mean_unit_variance(self, rng):
        x = rng.normal(5.0, 3.0, size=(500, 4))
        scaled = StandardScaler().fit_transform(x)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-6)

    def test_standard_scaler_inverse_round_trip(self, rng):
        x = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(x)
        assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_standard_scaler_partial_fit_matches_batch(self, rng):
        x = rng.normal(size=(100, 2))
        batch = StandardScaler().fit(x)
        incremental = StandardScaler()
        incremental.partial_fit(x[:40])
        incremental.partial_fit(x[40:])
        assert np.allclose(batch.mean_, incremental.mean_, atol=1e-9)
        assert np.allclose(batch.var_, incremental.var_, atol=1e-9)

    def test_standard_scaler_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((1, 2)))

    def test_minmax_scaler_range(self, rng):
        x = rng.normal(size=(100, 3))
        scaled = MinMaxScaler().fit_transform(x)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0

    def test_minmax_partial_fit_extends_bounds(self):
        scaler = MinMaxScaler()
        scaler.partial_fit(np.array([[0.0], [1.0]]))
        scaler.partial_fit(np.array([[5.0]]))
        assert scaler.max_[0] == 5.0


class TestMetrics:
    def test_mse_rmse_relationship(self):
        y_true = np.array([1.0, 2.0, 3.0])
        y_pred = np.array([1.5, 2.5, 2.0])
        assert root_mean_squared_error(y_true, y_pred) == pytest.approx(
            np.sqrt(mean_squared_error(y_true, y_pred))
        )

    def test_perfect_prediction_metrics(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mean_squared_error(y, y) == 0.0
        assert r2_score(y, y) == 1.0
        assert mean_absolute_percentage_error(y, y) == 0.0

    def test_accuracy(self):
        assert accuracy_score([1, 2, 3, 4], [1, 2, 0, 4]) == pytest.approx(0.75)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mean_squared_error(np.zeros(3), np.zeros(4))

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_normalized_energy(self):
        assert normalized_energy(2.0, 1.0) == 2.0
        with pytest.raises(ValueError):
            normalized_energy(1.0, 0.0)

    def test_energy_savings_percent(self):
        assert energy_savings_percent(10.0, 7.5) == pytest.approx(25.0)
        with pytest.raises(ValueError):
            energy_savings_percent(0.0, 1.0)

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=2, max_size=20))
    def test_r2_of_mean_prediction_is_zero(self, values):
        y = np.array(values)
        assume(float(y.max() - y.min()) > 1e-3)
        mean_prediction = np.full_like(y, y.mean())
        assert r2_score(y, mean_prediction) == pytest.approx(0.0, abs=1e-9)
