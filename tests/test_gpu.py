"""Tests for the GPU subsystem: hardware model, frame traces, simulator, baseline governor."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import (
    BaselineGPUGovernor,
    Frame,
    FrameTrace,
    GPUConfiguration,
    GPUSimulator,
    GPUSpec,
    default_integrated_gpu,
)
from repro.gpu.frames import generate_frame_trace
from repro.workloads.graphics import get_graphics_workload


@pytest.fixture(scope="module")
def gpu():
    return default_integrated_gpu()


@pytest.fixture()
def gpu_simulator(gpu):
    return GPUSimulator(gpu, noise_scale=0.0, seed=0)


class TestGPUSpec:
    def test_configuration_enumeration(self, gpu):
        configs = gpu.configurations()
        assert len(configs) == len(gpu.opps) * gpu.n_slices
        assert all(1 <= c.active_slices <= gpu.n_slices for c in configs)

    def test_busy_time_decreases_with_frequency_and_slices(self, gpu):
        work, memory = 5e7, 1e7
        slow = gpu.busy_time_s(GPUConfiguration(0, 1), work, memory)
        fast = gpu.busy_time_s(GPUConfiguration(len(gpu.opps) - 1, 1), work, memory)
        more_slices = gpu.busy_time_s(GPUConfiguration(0, gpu.n_slices), work, memory)
        assert fast < slow
        assert more_slices < slow

    def test_slice_scaling_sublinear(self, gpu):
        assert gpu.slice_throughput_factor(3) < 3.0
        assert gpu.slice_throughput_factor(1) == 1.0

    def test_active_power_increases_with_knobs(self, gpu):
        low = gpu.active_power_w(GPUConfiguration(0, 1))
        high_freq = gpu.active_power_w(GPUConfiguration(len(gpu.opps) - 1, 1))
        more_slices = gpu.active_power_w(GPUConfiguration(0, gpu.n_slices))
        assert high_freq > low
        assert more_slices > low

    def test_idle_power_below_active_power(self, gpu):
        config = GPUConfiguration(len(gpu.opps) - 1, gpu.n_slices)
        assert gpu.idle_power_w_at(config) < gpu.active_power_w(config)

    def test_gating_slices_reduces_idle_power(self, gpu):
        all_on = gpu.idle_power_w_at(GPUConfiguration(0, gpu.n_slices))
        one_on = gpu.idle_power_w_at(GPUConfiguration(0, 1))
        assert one_on < all_on

    def test_invalid_inputs(self, gpu):
        with pytest.raises(ValueError):
            GPUConfiguration(opp_index=-1, active_slices=1)
        with pytest.raises(ValueError):
            GPUConfiguration(opp_index=0, active_slices=0)
        with pytest.raises(ValueError):
            gpu.busy_time_s(GPUConfiguration(0, 1), -1.0, 0.0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            GPUSpec(opps=default_integrated_gpu().opps, n_slices=0)
        with pytest.raises(ValueError):
            GPUSpec(opps=default_integrated_gpu().opps, slice_scaling_alpha=1.5)


class TestFrames:
    def test_frame_validation(self):
        with pytest.raises(ValueError):
            Frame(index=0, work_cycles=0.0, memory_bytes=0.0)
        with pytest.raises(ValueError):
            Frame(index=0, work_cycles=1.0, memory_bytes=-1.0)

    def test_trace_generation_properties(self):
        trace = generate_frame_trace("t", n_frames=100, mean_work_cycles=1e7,
                                     seed=0, target_fps=30.0)
        assert len(trace) == 100
        assert trace.deadline_s == pytest.approx(1 / 30.0)
        assert trace.mean_work_cycles() == pytest.approx(1e7, rel=0.2)
        assert trace.peak_work_cycles() >= trace.mean_work_cycles()

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            FrameTrace(name="x", frames=[], target_fps=30.0)
        with pytest.raises(ValueError):
            generate_frame_trace("x", n_frames=0, mean_work_cycles=1e7)


class TestGPUSimulator:
    def test_frame_result_energy_accounting(self, gpu, gpu_simulator):
        frame = Frame(index=0, work_cycles=2e7, memory_bytes=5e6)
        config = GPUConfiguration(len(gpu.opps) - 1, gpu.n_slices)
        result = gpu_simulator.render_frame(frame, config, deadline_s=1 / 30.0,
                                            deterministic=True)
        assert result.gpu_energy_j > 0
        assert result.package_energy_j > result.gpu_energy_j
        assert result.package_dram_energy_j > result.package_energy_j
        assert result.met_deadline
        assert result.frame_time_s == pytest.approx(1 / 30.0)

    def test_overloaded_frame_misses_deadline(self, gpu, gpu_simulator):
        heavy = Frame(index=0, work_cycles=1e10, memory_bytes=0.0)
        config = GPUConfiguration(0, 1)
        result = gpu_simulator.render_frame(heavy, config, deadline_s=1 / 30.0,
                                            deterministic=True)
        assert not result.met_deadline
        assert result.frame_time_s > 1 / 30.0

    def test_run_fixed_summary(self, gpu, gpu_simulator):
        trace = get_graphics_workload("angrybirds", gpu=gpu, n_frames=60, seed=0)
        config = GPUConfiguration(len(gpu.opps) - 1, gpu.n_slices)
        summary = gpu_simulator.run_fixed(trace, config)
        assert summary.n_frames == 60
        assert summary.deadline_miss_rate == 0.0
        assert summary.achieved_fps == pytest.approx(trace.target_fps, rel=0.01)
        assert summary.gpu_energy_j > 0
        assert summary.frame_time_series_s().shape == (60,)

    def test_lower_frequency_saves_energy_for_light_load(self, gpu, gpu_simulator):
        trace = get_graphics_workload("angrybirds", gpu=gpu, n_frames=60, seed=0)
        high = gpu_simulator.run_fixed(trace, GPUConfiguration(len(gpu.opps) - 1,
                                                               gpu.n_slices))
        low = gpu_simulator.run_fixed(trace, GPUConfiguration(2, 1))
        if low.deadline_miss_rate == 0.0:
            assert low.gpu_energy_j < high.gpu_energy_j


class TestBaselineGovernor:
    def test_meets_fps_on_every_benchmark(self, gpu):
        simulator = GPUSimulator(gpu, noise_scale=0.01, seed=1)
        for name in ("angrybirds", "gfxbench-trex", "sharkdash"):
            trace = get_graphics_workload(name, gpu=gpu, n_frames=120, seed=0)
            governor = BaselineGPUGovernor(gpu, target_fps=trace.target_fps)
            summary = simulator.run(trace, governor)
            assert summary.deadline_miss_rate < 0.05
            assert summary.achieved_fps >= trace.target_fps * 0.97

    def test_keeps_all_slices_active(self, gpu):
        governor = BaselineGPUGovernor(gpu, target_fps=30.0)
        simulator = GPUSimulator(gpu, noise_scale=0.0, seed=0)
        trace = get_graphics_workload("fruitninja", gpu=gpu, n_frames=40, seed=0)
        summary = simulator.run(trace, governor)
        assert all(r.active_slices == gpu.n_slices for r in summary.frame_results)

    def test_scales_frequency_with_load(self, gpu):
        simulator = GPUSimulator(gpu, noise_scale=0.0, seed=0)
        light_trace = get_graphics_workload("angrybirds", gpu=gpu, n_frames=60, seed=0)
        heavy_trace = get_graphics_workload("gfxbench-trex", gpu=gpu, n_frames=60, seed=0)
        light = simulator.run(light_trace, BaselineGPUGovernor(gpu, 30.0))
        heavy = simulator.run(heavy_trace, BaselineGPUGovernor(gpu, 30.0))
        light_mean_opp = np.mean([r.opp_index for r in light.frame_results[20:]])
        heavy_mean_opp = np.mean([r.opp_index for r in heavy.frame_results[20:]])
        assert heavy_mean_opp > light_mean_opp

    def test_parameter_validation(self, gpu):
        with pytest.raises(ValueError):
            BaselineGPUGovernor(gpu, target_fps=0.0)
        with pytest.raises(ValueError):
            BaselineGPUGovernor(gpu, target_fps=30.0, headroom=-0.1)
        with pytest.raises(ValueError):
            BaselineGPUGovernor(gpu, target_fps=30.0, window=0)

    def test_reset_restores_max_configuration(self, gpu):
        governor = BaselineGPUGovernor(gpu, target_fps=30.0)
        governor.reset()
        assert governor.current.opp_index == len(gpu.opps) - 1
        assert governor.current.active_slices == gpu.n_slices

    @settings(max_examples=10, deadline=None)
    @given(work=st.floats(min_value=1e6, max_value=5e8),
           memory=st.floats(min_value=0.0, max_value=1e8))
    def test_busy_time_monotone_in_work_property(self, work, memory):
        gpu = default_integrated_gpu()
        config = GPUConfiguration(3, 2)
        base = gpu.busy_time_s(config, work, memory)
        more = gpu.busy_time_s(config, work * 1.5, memory)
        assert more > base
