"""Tests for the crash-safe fleet control-plane service.

The headline property — the **recovery invariant** — is pinned here:
``kill -9`` at any fleet-round boundary, then recover from the journal,
and the completed run's per-device state digests are bitwise identical
to an uninterrupted run.  The suite proves it in-process across kill
points, dispatch histories and damaged snapshots, and end-to-end over
HTTP with a real SIGKILL'd server subprocess.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.fleet.device import build_fleet
from repro.service.journal import read_journal
from repro.service.protocol import (
    DispatchCommand,
    RunGenesis,
    ShutdownNotice,
    SnapshotManifest,
    StepBoundary,
)
from repro.service.run import RunConfig, ServiceRun, build_config_devices

CONFIG = RunConfig(policy="ondemand", scale="tiny", n_devices=2, seed=7,
                   snapshot_every=3)


def _run_reference(config=CONFIG, script=None):
    """Uninterrupted run (optionally with scripted dispatches)."""
    run = ServiceRun.start(config=config)
    _drive(run, script=dict(script or {}))
    return run


def _drive(run, script=None, stop_at=None):
    """Step to completion, issuing ``script[round]`` dispatches on the way."""
    script = script if script is not None else {}
    while not run.done:
        if run.rounds in script:
            receipt = run.dispatch(script.pop(run.rounds))
            assert receipt.status in ("accepted", "duplicate")
        run.step_round()
        if stop_at is not None and run.rounds >= stop_at:
            return


class TestZeroJournalIdentity:
    def test_matches_bare_fleet_engine(self):
        """The journal-free path adds nothing to the hot loop's results."""
        service = ServiceRun.start(config=CONFIG)
        service.run_to_completion()

        devices, simulator, space = build_config_devices(CONFIG)
        engine = build_fleet(devices, simulator, space)
        engine.run()
        bare = {device.name: session.state_digest()
                for device, session in zip(devices, engine.sessions)}
        assert service.digests() == bare

    def test_journaled_run_matches_unjournaled(self, tmp_path):
        """Journaling is pure observation: identical results either way."""
        plain = ServiceRun.start(config=CONFIG)
        plain.run_to_completion()
        journaled = ServiceRun.start(config=CONFIG, journal_dir=tmp_path)
        journaled.run_to_completion()
        assert journaled.digests() == plain.digests()


class TestRecoveryInvariant:
    @pytest.mark.parametrize("kill_at", [1, 3, 5, 40])
    def test_kill_and_recover_is_bitwise(self, tmp_path, kill_at):
        reference = _run_reference()
        run = ServiceRun.start(config=CONFIG, journal_dir=tmp_path)
        _drive(run, stop_at=kill_at)
        del run  # kill -9: no shutdown, no close, journal left as-is
        recovered = ServiceRun.recover(tmp_path)
        _drive(recovered)
        assert recovered.digests() == reference.digests()

    @pytest.mark.parametrize("kill_at", [2, 4, 7])
    def test_recovery_replays_dispatches_bitwise(self, tmp_path, kill_at):
        """Dispatches journal-before-apply: caps and policy swaps survive
        the crash and re-apply at their recorded boundaries."""
        script = {
            1: DispatchCommand(command="restrict-space", device="device-00",
                               value=1, idempotency_key="cap-on"),
            3: DispatchCommand(command="set-policy", device="device-01",
                               value="powersave", idempotency_key="swap"),
            6: DispatchCommand(command="restrict-space", device="device-00",
                               value=None, idempotency_key="cap-off"),
        }
        reference = _run_reference(script=script)
        run = ServiceRun.start(config=CONFIG, journal_dir=tmp_path)
        _drive(run, script=dict(script), stop_at=kill_at)
        del run
        recovered = ServiceRun.recover(tmp_path)
        _drive(recovered, script=dict(script))  # redelivery: keys dedupe
        assert recovered.digests() == reference.digests()

    def test_recovery_survives_corrupt_newest_snapshot(self, tmp_path):
        """A bit-rotted snapshot fails its manifest sha256 and recovery
        falls back to the previous rotation — still bitwise identical."""
        reference = _run_reference()
        run = ServiceRun.start(config=CONFIG, journal_dir=tmp_path)
        _drive(run, stop_at=2 * CONFIG.snapshot_every)
        del run
        manifests = [m for m in read_journal(tmp_path / "journal.bin")[0]
                     if isinstance(m, SnapshotManifest)]
        newest = manifests[-1]
        victim = tmp_path / newest.files[0][1]
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0xFF
        victim.write_bytes(bytes(data))
        recovered = ServiceRun.recover(tmp_path)
        assert recovered.rounds < newest.round  # fell back
        _drive(recovered)
        assert recovered.digests() == reference.digests()

    def test_recovery_with_no_usable_snapshots_rebuilds_fresh(self, tmp_path):
        """All rotations destroyed: recovery replays from round 0."""
        import shutil

        reference = _run_reference()
        run = ServiceRun.start(config=CONFIG, journal_dir=tmp_path)
        _drive(run, stop_at=4)
        del run
        shutil.rmtree(tmp_path / "snapshots")
        recovered = ServiceRun.recover(tmp_path)
        assert recovered.rounds == 0
        _drive(recovered)
        assert recovered.digests() == reference.digests()

    def test_external_fleet_mode_recovers(self, tmp_path):
        """A caller-built fleet journals too; the caller rebuilds the same
        fleet for recovery (the genesis records external mode)."""
        devices, simulator, space = build_config_devices(CONFIG)
        reference_engine = build_fleet(devices, simulator, space)
        reference_engine.run()
        expected = {device.name: session.state_digest()
                    for device, session in
                    zip(devices, reference_engine.sessions)}

        devices2, simulator2, space2 = build_config_devices(CONFIG)
        run = ServiceRun.start(devices=devices2, simulator=simulator2,
                               space=space2, journal_dir=tmp_path,
                               snapshot_every=3)
        _drive(run, stop_at=4)
        del run
        with pytest.raises(ValueError, match="externally built"):
            ServiceRun.recover(tmp_path)
        devices3, simulator3, space3 = build_config_devices(CONFIG)
        recovered = ServiceRun.recover(tmp_path, devices=devices3,
                                       simulator=simulator3, space=space3)
        _drive(recovered)
        assert recovered.digests() == expected


class TestDispatchSemantics:
    def test_journal_before_apply(self, tmp_path):
        """An accepted dispatch is durable before it mutates anything."""
        run = ServiceRun.start(config=CONFIG, journal_dir=tmp_path)
        run.step_round()
        receipt = run.dispatch(DispatchCommand(
            command="pause", idempotency_key="p1",
        ))
        assert receipt.status == "accepted"
        # Not yet applied (applies at the next boundary)...
        assert run.paused is False
        # ...but already journaled.
        journaled = [m for m in read_journal(tmp_path / "journal.bin")[0]
                     if isinstance(m, DispatchCommand)]
        assert journaled and journaled[-1].idempotency_key == "p1"
        run.step_round()
        assert run.paused is True
        run.close()

    def test_idempotent_redelivery(self):
        run = ServiceRun.start(config=CONFIG)
        command = DispatchCommand(command="restrict-space",
                                  device="device-00", value=1,
                                  idempotency_key="once")
        first = run.dispatch(command)
        second = run.dispatch(command)
        assert first.status == "accepted"
        assert second.status == "duplicate"
        assert second.apply_round == first.apply_round

    def test_idempotency_survives_restart(self, tmp_path):
        run = ServiceRun.start(config=CONFIG, journal_dir=tmp_path)
        run.step_round()
        command = DispatchCommand(command="restrict-space",
                                  device="device-00", value=1,
                                  idempotency_key="durable-key")
        assert run.dispatch(command).status == "accepted"
        del run
        recovered = ServiceRun.recover(tmp_path)
        assert recovered.dispatch(command).status == "duplicate"

    def test_rejected_dispatches(self):
        run = ServiceRun.start(config=CONFIG)
        unknown = run.dispatch(DispatchCommand(
            command="restrict-space", device="no-such-device", value=1,
        ))
        assert unknown.status == "rejected"
        bad_policy = run.dispatch(DispatchCommand(
            command="set-policy", device="device-00", value="online-il",
        ))
        assert bad_policy.status == "rejected"
        assert run.errors  # surfaced as ErrorReports

    def test_pause_resume_and_recovery_while_paused(self, tmp_path):
        reference = _run_reference()
        run = ServiceRun.start(config=CONFIG, journal_dir=tmp_path)
        run.dispatch(DispatchCommand(command="pause", idempotency_key="p"))
        run.step_round()  # applies the pause; no fleet progress
        assert run.paused
        run.run_to_completion()  # must terminate immediately, not spin
        assert not run.done
        del run
        recovered = ServiceRun.recover(tmp_path)  # paused state replays
        recovered.dispatch(DispatchCommand(command="resume",
                                           idempotency_key="r"))
        _drive(recovered)
        assert recovered.done
        assert recovered.digests() == reference.digests()


class TestTelemetry:
    def test_status_and_reports(self, tmp_path):
        run = ServiceRun.start(config=CONFIG, journal_dir=tmp_path)
        _drive(run, stop_at=3)
        status = run.status()
        assert status["rounds"] == 3
        assert status["journaled"] is True
        assert len(status["devices"]) == CONFIG.n_devices
        reports = run.reports()
        assert [r.device for r in reports] == ["device-00", "device-01"]
        assert all(r.round == 3 for r in reports)
        assert all(r.state_digest for r in reports)
        run.close()

    def test_journal_records_genesis_boundaries_shutdown(self, tmp_path):
        run = ServiceRun.start(config=CONFIG, journal_dir=tmp_path)
        _drive(run, stop_at=2)
        run.shutdown("test-drain")
        messages, truncated = read_journal(tmp_path / "journal.bin")
        assert truncated is False
        assert isinstance(messages[0], RunGenesis)
        boundaries = [m for m in messages if isinstance(m, StepBoundary)]
        assert [b.round for b in boundaries] == [1, 2]
        assert isinstance(messages[-1], ShutdownNotice)

    def test_flatline_alert_emitted_for_stalled_device(self):
        config = RunConfig(
            policy="ondemand", scale="tiny", n_devices=2, seed=7,
            snapshot_every=5,
            faults=({"type": "StragglerStall",
                     "params": {"device": "device-00", "step": 2,
                                "rounds": 8}},),
        )
        run = ServiceRun.start(config=config)
        run.run_to_completion()
        assert any(alert.device == "device-00" for alert in run.alerts)


# --------------------------------------------------------------------- #
# End-to-end over HTTP (subprocess server)
# --------------------------------------------------------------------- #
def _service_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def _wait_port(journal: Path, process, timeout=60.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"server died early with code {process.returncode}"
            )
        port_file = journal / "server.port"
        if port_file.exists() and port_file.read_text().strip():
            return int(port_file.read_text().strip())
        time.sleep(0.05)
    raise AssertionError("server never published its port")


class TestServerSubprocess:
    def test_sigterm_drains_gracefully(self, tmp_path):
        """SIGTERM: finish the round, journal the drain, exit 0."""
        journal = tmp_path / "run"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--journal", str(journal), "--devices", "2", "--seed", "7",
             "--snapshot-every", "3", "--step-delay", "0.05"],
            env=_service_env(), stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            port = _wait_port(journal, process)
            from repro.service.client import ServiceClient

            client = ServiceClient(port=port)
            status = client.wait_rounds(2)
            assert status["rounds"] >= 2
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        assert process.returncode == 0
        messages, truncated = read_journal(journal / "journal.bin")
        assert truncated is False
        assert isinstance(messages[-1], ShutdownNotice)
        assert messages[-1].reason == "SIGTERM"

    def test_demo_kill9_resume_bitwise(self):
        """The full CI exercise: serve -> dispatch -> kill -9 -> resume ->
        digests match an uninterrupted reference.  Exit 0 is the proof."""
        result = subprocess.run(
            [sys.executable, "-m", "repro.service", "demo",
             "--devices", "2", "--seed", "7", "--kill-after-rounds", "4"],
            env=_service_env(), capture_output=True, text=True, timeout=420,
        )
        assert result.returncode == 0, result.stderr
        assert "bitwise identical" in result.stderr
