"""Benchmarks regenerating Table I and Table II."""

from __future__ import annotations

import pytest

from repro.experiments import (
    format_table1,
    format_table2,
    run_table1,
    run_table2,
)


@pytest.mark.benchmark(group="table1")
def test_bench_table1(benchmark):
    """Table I: per-snippet counter collection."""
    result = benchmark(run_table1)
    print()
    print(format_table1(result))
    assert result.covered


@pytest.mark.benchmark(group="table2")
def test_bench_table2(benchmark, bench_scale):
    """Table II: offline IL generalisation across suites."""
    result = benchmark.pedantic(run_table2, args=(bench_scale,),
                                kwargs={"seed": 0}, rounds=1, iterations=1)
    print()
    print(format_table2(result))
    # Shape assertions mirroring the paper: training suite near the Oracle,
    # unseen suites clearly worse.
    assert result.suite_mean("Mi-Bench") < 1.10
    assert result.suite_mean("Cortex") > result.suite_mean("Mi-Bench")
    assert result.suite_mean("PARSEC") > result.suite_mean("Mi-Bench")
    assert result.generalization_gap > 0.02
