"""Benchmarks for the vectorized ML kernels: tree training and inference.

Gates the PR-2 perf work the same way ``test_bench_engine.py`` gates the
PR-1 Oracle sweep: the vectorized split search and batch predict must (a)
reproduce the scalar reference kernels bitwise and (b) train at least
``MIN_FIT_SPEEDUP``x faster on the BENCH fixture (measured well above that
in practice — classification is ~20x).  Bitwise parity is asserted on every
run; the timing floors only on timing-enabled runs (``--benchmark-disable``
— the CI smoke job — skips them so the smoke run stays insensitive to
runner load).

Each run also emits ``BENCH_ml_kernels.json`` at the repository root — a
small machine-readable perf record (fixture shape, per-kernel timings,
speedups) that CI uploads as an artifact so the kernel-performance
trajectory is tracked from this PR onward.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.ml.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    trees_identical,
)

#: Acceptance floor for vectorized-vs-scalar training time on the fixture.
#: Regression is the tight case (its scalar kernel is already cumsum-based);
#: classification lands at ~20x.
MIN_FIT_SPEEDUP = 3.0

#: Acceptance floor for batch predict vs the per-row reference walk.
MIN_PREDICT_SPEEDUP = 3.0

#: BENCH fixture shape.  Large enough that per-node vectorization overheads
#: amortise (the regression speedup grows with n); small enough that the
#: scalar reference still finishes in single-digit seconds on CI.
N_SAMPLES = 3000
N_FEATURES = 8
N_CLASSES = 12
N_QUERIES = 20000

#: Where the perf record is written (repository root, committed + uploaded).
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_ml_kernels.json"


def _best_of(repeats: int, fn, *args, **kwargs) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def ml_fixture():
    rng = np.random.default_rng(2020)
    x = rng.normal(size=(N_SAMPLES, N_FEATURES))
    y_reg = x @ rng.normal(size=N_FEATURES) + 0.1 * rng.normal(size=N_SAMPLES)
    y_clf = rng.integers(0, N_CLASSES, size=N_SAMPLES)
    queries = rng.normal(size=(N_QUERIES, N_FEATURES))
    return x, y_reg, y_clf, queries


@pytest.fixture(scope="module")
def speedup_gate(request):
    """Whether the timing floors are asserted on this run.

    With ``--benchmark-disable`` (the CI smoke job) only the bitwise-parity
    checks run: asserting wall-clock ratios there would duplicate the
    dedicated ``ml-kernel-benchmark`` job and make the smoke job
    timing-sensitive on loaded shared runners.
    """
    return not request.config.getoption("benchmark_disable", False)


@pytest.fixture(scope="module")
def perf_record(speedup_gate):
    """Collects per-benchmark measurements; written to disk at teardown.

    The record is only written on timing-enabled runs — smoke runs with
    ``--benchmark-disable`` must not overwrite the committed record with
    throwaway numbers.
    """
    record = {
        "benchmark": "ml_kernels",
        "fixture": {
            "n_samples": N_SAMPLES,
            "n_features": N_FEATURES,
            "n_classes": N_CLASSES,
            "n_queries": N_QUERIES,
            "max_depth": 8,
        },
        "thresholds": {
            "min_fit_speedup": MIN_FIT_SPEEDUP,
            "min_predict_speedup": MIN_PREDICT_SPEEDUP,
        },
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": {},
    }
    yield record
    if speedup_gate and record["results"]:
        RECORD_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote perf record to {RECORD_PATH}")


@pytest.mark.benchmark(group="ml-kernels")
def test_bench_regression_tree_training(ml_fixture, perf_record, speedup_gate):
    """Vectorized regression split search: identical tree, >=3x faster."""
    x, y_reg, _, _ = ml_fixture
    assert trees_identical(
        DecisionTreeRegressor(max_depth=8, split_search="vectorized").fit(x, y_reg),
        DecisionTreeRegressor(max_depth=8, split_search="scalar").fit(x, y_reg),
    )
    if not speedup_gate:
        return
    scalar_s = _best_of(
        2, lambda: DecisionTreeRegressor(max_depth=8,
                                         split_search="scalar").fit(x, y_reg)
    )
    vectorized_s = _best_of(
        3, lambda: DecisionTreeRegressor(max_depth=8,
                                         split_search="vectorized").fit(x, y_reg)
    )
    speedup = scalar_s / vectorized_s
    perf_record["results"]["regression_fit"] = {
        "scalar_s": scalar_s, "vectorized_s": vectorized_s, "speedup": speedup,
    }
    print(f"\nregression fit: scalar={scalar_s:.3f}s "
          f"vectorized={vectorized_s:.3f}s speedup={speedup:.1f}x")
    assert speedup >= MIN_FIT_SPEEDUP


@pytest.mark.benchmark(group="ml-kernels")
def test_bench_classification_tree_training(ml_fixture, perf_record,
                                            speedup_gate):
    """Vectorized Gini split search: identical tree, >=3x faster."""
    x, _, y_clf, _ = ml_fixture
    assert trees_identical(
        DecisionTreeClassifier(max_depth=8, split_search="vectorized").fit(x, y_clf),
        DecisionTreeClassifier(max_depth=8, split_search="scalar").fit(x, y_clf),
    )
    if not speedup_gate:
        return
    scalar_s = _best_of(
        1, lambda: DecisionTreeClassifier(max_depth=8,
                                          split_search="scalar").fit(x, y_clf)
    )
    vectorized_s = _best_of(
        3, lambda: DecisionTreeClassifier(max_depth=8,
                                          split_search="vectorized").fit(x, y_clf)
    )
    speedup = scalar_s / vectorized_s
    perf_record["results"]["classification_fit"] = {
        "scalar_s": scalar_s, "vectorized_s": vectorized_s, "speedup": speedup,
    }
    print(f"\nclassification fit: scalar={scalar_s:.3f}s "
          f"vectorized={vectorized_s:.3f}s speedup={speedup:.1f}x")
    assert speedup >= MIN_FIT_SPEEDUP


@pytest.mark.benchmark(group="ml-kernels")
def test_bench_batch_predict(ml_fixture, perf_record, speedup_gate):
    """Level-by-level batch predict: identical outputs, >=3x faster."""
    x, y_reg, y_clf, queries = ml_fixture
    regressor = DecisionTreeRegressor(max_depth=8).fit(x, y_reg)
    classifier = DecisionTreeClassifier(max_depth=8).fit(x, y_clf)

    np.testing.assert_array_equal(
        regressor.predict(queries),
        np.array([regressor._predict_row(r) for r in queries]),
    )
    np.testing.assert_array_equal(
        classifier.predict(queries),
        classifier.classes_[
            np.array([int(classifier._predict_row(r)) for r in queries])
        ],
    )
    if not speedup_gate:
        return
    row_walk_s = _best_of(
        1, lambda: np.array([regressor._predict_row(r) for r in queries])
    )
    batch_s = _best_of(3, regressor.predict, queries)
    speedup = row_walk_s / batch_s
    perf_record["results"]["batch_predict"] = {
        "row_walk_s": row_walk_s, "batch_s": batch_s, "speedup": speedup,
    }
    print(f"\nbatch predict ({N_QUERIES} rows): row-walk={row_walk_s:.3f}s "
          f"batch={batch_s:.4f}s speedup={speedup:.1f}x")
    assert speedup >= MIN_PREDICT_SPEEDUP
