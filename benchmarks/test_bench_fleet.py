"""Benchmarks for the lockstep fleet engine.

Gates the PR-5 scaling work the way ``test_bench_policy_loop.py`` gates
the decision kernel: a 64-device lockstep fleet must (a) produce per-device
run logs bitwise identical to 64 independent sequential runs (asserted on
every run, including ``--benchmark-disable`` smoke runs) and (b) achieve at
least ``MIN_FLEET_SPEEDUP``x the aggregate steps/second of the sequential
runs (asserted only on timing-enabled runs).

Three fleets are gated.  The ondemand-governor fleet — the classic
per-device baseline the paper's motivation names — isolates the lockstep
engine (batched decides + batched executions + pre-drawn noise streams).
The online-IL fleet (the paper's actual rollout) exercises the whole
batched learning path on top of it: fleet-wide runtime-Oracle candidate
sweeps, stacked RLS model updates with persistent cross-step precision
tensors, and stacked MLP policy training — each bitwise identical to the
per-device loops, asserted against 64 sequential runs on every run.
The sharded fleet routes the governor fleet through the worker-pool
:class:`~repro.fleet.sharding.ShardedFleetEngine` (shared-memory step
tensors, streamed O(devices) summaries) and must beat the single-process
engine's aggregate steps/s while reproducing its logs bitwise.

Each timing-enabled run emits ``BENCH_fleet.json`` at the repository root;
CI uploads it as an artifact so the fleet-throughput trajectory is tracked
from this PR onward.
"""

from __future__ import annotations

import gc
import json
import platform as platform_module
import time
from pathlib import Path

import numpy as np
import pytest

import os

from repro.control.policy import GovernorPolicy
from repro.core.framework import run_policy_on_snippets
from repro.experiments.common import build_trained_framework
from repro.experiments.scales import TINY
from repro.fleet import DeviceSpec, ShardedFleetEngine, build_fleet
from repro.soc.configuration import ConfigurationSpace
from repro.soc.governors import OndemandGovernor
from repro.soc.platform import odroid_xu3_like
from repro.soc.simulator import SoCSimulator
from repro.workloads.generator import SnippetTraceGenerator
from repro.workloads.sequences import build_online_sequence
from repro.workloads.suites import training_workloads, unseen_workloads

#: Acceptance floor: lockstep fleet vs sequential aggregate steps/s.
MIN_FLEET_SPEEDUP = 3.0

#: Acceptance floor for the online-IL fleet (batched learning included).
#: The measured ratio sits around 3.5-4x on the reference box; the floor
#: leaves the same kind of noise margin as ``MIN_FLEET_SPEEDUP`` does for
#: the governor fleet (single-core hosts time noisily).
MIN_ONLINE_IL_FLEET_SPEEDUP = 2.5

#: Devices in the gated fleet.
N_DEVICES = 64

#: Workload repetitions per device trace (~96 steps each).
TRACE_REPEATS = 4

#: Where the perf record is written (repository root, uploaded by CI).
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

LOG_KEYS = ("energy_j", "time_s", "power_w", "big_opp", "little_opp")


def _device_policy(space, index: int):
    """Ondemand-governor devices: the classic per-device baseline."""
    return GovernorPolicy(OndemandGovernor(space))


def _device_trace(index: int):
    generator = SnippetTraceGenerator(seed=100 + index)
    workloads = training_workloads()
    trace = []
    for repeat in range(TRACE_REPEATS):
        spec = workloads[(index + repeat) % len(workloads)]
        trace.extend(generator.generate(spec))
    return trace


@pytest.fixture(scope="module")
def fleet_fixture():
    """Shared platform/space/simulator plus the 64 per-device traces."""
    soc = odroid_xu3_like()
    space = ConfigurationSpace(soc)
    simulator = SoCSimulator(soc, noise_scale=0.01, seed=0)
    traces = [_device_trace(i) for i in range(N_DEVICES)]
    # Warm every shared memoised table (SoA view, OPP lookup, sweep tables)
    # before timing either side, so the measured ratio is about the
    # stepping, not one-time memoisation.
    space.soa_view()
    space.opp_lookup_table()
    run_policy_on_snippets(
        simulator, space, GovernorPolicy(OndemandGovernor(space)),
        traces[0][:4], rng=np.random.default_rng(0),
    )
    return space, simulator, traces


@pytest.fixture(scope="module")
def speedup_gate(request):
    """Whether the timing floor is asserted on this run (see module docs)."""
    return not request.config.getoption("benchmark_disable", False)


@pytest.fixture(scope="module")
def perf_record(speedup_gate):
    """Collects measurements; written to disk at teardown on timed runs."""
    record = {
        "benchmark": "fleet",
        "fixture": {
            "n_devices": N_DEVICES,
            "trace_repeats": TRACE_REPEATS,
        },
        "thresholds": {
            "min_fleet_speedup": MIN_FLEET_SPEEDUP,
            "min_online_il_fleet_speedup": MIN_ONLINE_IL_FLEET_SPEEDUP,
            # The sharded gate is relative: strictly more aggregate
            # steps/s than the single-process engine in the same session.
            "min_sharded_speedup": 1.0,
        },
        "host": {
            "python": platform_module.python_version(),
            "numpy": np.__version__,
            "machine": platform_module.machine(),
        },
        "results": {},
    }
    yield record
    if speedup_gate and record["results"]:
        RECORD_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote perf record to {RECORD_PATH}")


def _sequential_runs(space, simulator, traces):
    return [
        run_policy_on_snippets(
            simulator, space, _device_policy(space, i),
            traces[i], rng=np.random.default_rng(1000 + i),
        )
        for i in range(len(traces))
    ]


def _fleet_engine(space, simulator, traces):
    devices = [
        DeviceSpec(
            name=f"device-{i:02d}",
            policy=_device_policy(space, i),
            snippets=traces[i],
            rng=np.random.default_rng(1000 + i),
        )
        for i in range(len(traces))
    ]
    return build_fleet(devices, simulator, space)


@pytest.mark.benchmark(group="fleet")
def test_bench_fleet_lockstep(fleet_fixture, perf_record, speedup_gate):
    """64-device lockstep fleet: identical logs, >=3x aggregate steps/s."""
    space, simulator, traces = fleet_fixture
    total_steps = sum(len(trace) for trace in traces)

    # Equivalence on every run: the lockstep fleet must reproduce the 64
    # sequential runs bitwise, per device.
    sequential = _sequential_runs(space, simulator, traces)
    engine = _fleet_engine(space, simulator, traces)
    fleet = engine.run()
    assert engine.steps_executed == total_steps
    assert engine.batched_executions == total_steps
    for reference, actual in zip(sequential, fleet):
        for key in LOG_KEYS:
            np.testing.assert_array_equal(
                reference.log.column(key), actual.log.column(key), err_msg=key
            )
        assert reference.total_energy_j == actual.total_energy_j
    if not speedup_gate:
        return

    # Drop the equivalence-phase result graphs before timing: ~800k live
    # objects would otherwise inflate every GC pass inside the timed runs.
    del sequential, fleet, engine
    gc.collect()

    sequential_s = float("inf")
    fleet_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        runs = _sequential_runs(space, simulator, traces)
        sequential_s = min(sequential_s, time.perf_counter() - start)
        del runs
        gc.collect()

        timed_engine = _fleet_engine(space, simulator, traces)
        # prepare() is per-fleet setup (trace tensors, pre-drawn noise),
        # analogous to the policy/generator construction both sides do
        # outside the timers; the timed region is the lockstep stepping.
        timed_engine.prepare()
        start = time.perf_counter()
        timed_engine.run()
        fleet_s = min(fleet_s, time.perf_counter() - start)
        del timed_engine
        gc.collect()

    speedup = sequential_s / fleet_s
    perf_record["results"]["governor_fleet"] = {
        "devices": N_DEVICES,
        "total_steps": total_steps,
        "sequential_s": sequential_s,
        "fleet_s": fleet_s,
        "sequential_steps_per_s": total_steps / sequential_s,
        "fleet_steps_per_s": total_steps / fleet_s,
        "speedup": speedup,
    }
    print(f"\nfleet lockstep ({N_DEVICES} devices, {total_steps} steps): "
          f"sequential={sequential_s:.3f}s fleet={fleet_s:.3f}s "
          f"speedup={speedup:.2f}x "
          f"({total_steps / fleet_s:.0f} steps/s aggregate)")
    assert speedup >= MIN_FLEET_SPEEDUP


def _sharded_engine(space, simulator, traces, n_shards, collect):
    devices = [
        DeviceSpec(
            name=f"device-{i:02d}",
            policy=_device_policy(space, i),
            snippets=traces[i],
            rng=np.random.default_rng(1000 + i),
        )
        for i in range(len(traces))
    ]
    return ShardedFleetEngine(devices, simulator, space,
                              n_shards=n_shards, collect=collect)


@pytest.mark.benchmark(group="fleet")
def test_bench_sharded_fleet(fleet_fixture, perf_record, speedup_gate):
    """Worker-pool sharded fleet: identical logs, beats single-process.

    The bitwise phase (every run, smoke included) checks the sharded
    engine against the in-process engine on the full 64-device fleet.
    The timed phase mirrors the other gates' prepare-outside-timer
    convention — :meth:`~repro.fleet.sharding.ShardedFleetEngine.prepare`
    ships shards, builds worker engines and positions noise streams;
    only the go→done stepping region is measured.  Streaming summaries
    keep worker memory O(devices), which (with the cycle collector idle)
    is what lets a sharded run beat the single-process engine even on a
    single-core host; multi-core hosts add true parallelism on top.
    """
    space, simulator, traces = fleet_fixture
    total_steps = sum(len(trace) for trace in traces)

    reference = _fleet_engine(space, simulator, traces).run()
    sharded = _sharded_engine(space, simulator, traces,
                              n_shards=2, collect="logs")
    summaries = sharded.run()
    assert sharded.steps_executed == total_steps
    assert sharded.batched_executions == total_steps
    for run, summary in zip(reference, summaries):
        columns = run.log.to_dict()
        for key in LOG_KEYS:
            np.testing.assert_array_equal(
                np.asarray(columns[key]), np.asarray(summary.log[key]),
                err_msg=key,
            )
        assert run.total_energy_j == summary.total_energy_j
    if not speedup_gate:
        return

    del reference, sharded, summaries
    gc.collect()

    # Baseline: the single-process engine's aggregate steps/s, reused
    # from the lockstep gate when it ran in this session.
    governor_row = perf_record["results"].get("governor_fleet")
    if governor_row is not None:
        baseline_s = governor_row["fleet_s"]
    else:
        baseline_s = float("inf")
        for _ in range(3):
            timed_engine = _fleet_engine(space, simulator, traces)
            timed_engine.prepare()
            start = time.perf_counter()
            timed_engine.run()
            baseline_s = min(baseline_s, time.perf_counter() - start)
            del timed_engine
            gc.collect()

    n_shards = max(1, min(4, os.cpu_count() or 1))
    sharded_s = float("inf")
    for _ in range(5):
        timed_engine = _sharded_engine(space, simulator, traces,
                                       n_shards=n_shards,
                                       collect="summaries")
        timed_engine.prepare()
        start = time.perf_counter()
        timed_engine.execute()
        sharded_s = min(sharded_s, time.perf_counter() - start)
        gc.collect()

    speedup = baseline_s / sharded_s
    perf_record["results"]["sharded_fleet"] = {
        "devices": N_DEVICES,
        "total_steps": total_steps,
        "n_shards": n_shards,
        "single_process_s": baseline_s,
        "sharded_s": sharded_s,
        "single_process_steps_per_s": total_steps / baseline_s,
        "fleet_steps_per_s": total_steps / sharded_s,
        "speedup_vs_single_process": speedup,
    }
    print(f"\nsharded fleet ({N_DEVICES} devices, {n_shards} shards, "
          f"{total_steps} steps): single-process={baseline_s:.3f}s "
          f"sharded={sharded_s:.3f}s speedup={speedup:.2f}x "
          f"({total_steps / sharded_s:.0f} steps/s aggregate)")
    assert total_steps / sharded_s > total_steps / baseline_s, (
        "sharded fleet must exceed the single-process engine's "
        "aggregate steps/s"
    )


IL_LOG_KEYS = ("energy_j", "time_s", "power_w", "configuration", "accuracy")


@pytest.fixture(scope="module")
def online_il_fixture():
    """Trained TINY framework plus the 64 per-device online sequences.

    Sequences (and their ground-truth Oracle tables, served from the
    persistent ``.oracle-store``) are deterministic per seed and read-only,
    so they are built once and shared by the sequential and fleet sides;
    the *policies* are stateful learners and are rebuilt fresh for every
    run by :func:`_online_il_devices`.
    """
    framework = build_trained_framework(TINY, seed=0)
    sequences = [
        build_online_sequence(
            specs=unseen_workloads(),
            snippet_factor=TINY.sequence_snippet_factor,
            seed=i,
        ).snippets
        for i in range(N_DEVICES)
    ]
    oracle_tables = [framework.build_oracle_for(s) for s in sequences]
    return framework, sequences, oracle_tables


def _online_il_devices(framework, sequences, oracle_tables):
    """Fresh policies + fresh rng streams: one run's worth of devices."""
    return [
        DeviceSpec(
            name=f"il-{i:02d}",
            policy=framework.build_online_il_policy(
                buffer_capacity=TINY.buffer_capacity,
                update_epochs=TINY.update_epochs,
                isolated=True,
            ),
            snippets=sequences[i],
            rng=np.random.default_rng(2000 + i),
            oracle_table=oracle_tables[i],
        )
        for i in range(len(sequences))
    ]


def _online_il_sequential(framework, sequences, oracle_tables):
    devices = _online_il_devices(framework, sequences, oracle_tables)
    return [
        run_policy_on_snippets(
            framework.simulator, framework.space, device.policy,
            device.snippets, rng=np.random.default_rng(2000 + i),
            oracle_table=device.oracle_table,
        )
        for i, device in enumerate(devices)
    ]


@pytest.mark.benchmark(group="fleet")
def test_bench_online_il_fleet(online_il_fixture, perf_record, speedup_gate):
    """64-device online-IL fleet: identical logs, gated aggregate speedup.

    The same shape as the governor gate, but every step now runs the full
    adaptive pipeline — candidate sweep, two RLS model updates, buffer
    maintenance and periodic MLP training — batched fleet-wide.  The
    bitwise-equivalence phase runs on every invocation (including
    ``--benchmark-disable`` smoke runs); the timing floor only on timed
    runs.
    """
    framework, sequences, oracle_tables = online_il_fixture
    total_steps = sum(len(s) for s in sequences)

    sequential = _online_il_sequential(framework, sequences, oracle_tables)
    engine = build_fleet(
        _online_il_devices(framework, sequences, oracle_tables),
        framework.simulator, framework.space,
    )
    fleet = engine.run()
    assert engine.steps_executed == total_steps
    assert engine.batched_executions == total_steps
    # The batched learning path must actually engage: every step's decide
    # and observe should take the fleet path, none the scalar fallback.
    assert engine.batched_decisions == total_steps
    assert engine.batched_observes == total_steps
    for reference, actual in zip(sequential, fleet):
        for key in IL_LOG_KEYS:
            np.testing.assert_array_equal(
                reference.log.column(key), actual.log.column(key), err_msg=key
            )
        assert reference.total_energy_j == actual.total_energy_j
    if not speedup_gate:
        return

    del sequential, fleet, engine
    gc.collect()

    sequential_s = float("inf")
    fleet_s = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        runs = _online_il_sequential(framework, sequences, oracle_tables)
        sequential_s = min(sequential_s, time.perf_counter() - start)
        del runs
        gc.collect()

        timed_engine = build_fleet(
            _online_il_devices(framework, sequences, oracle_tables),
            framework.simulator, framework.space,
        )
        timed_engine.prepare()
        start = time.perf_counter()
        timed_engine.run()
        fleet_s = min(fleet_s, time.perf_counter() - start)
        del timed_engine
        gc.collect()

    speedup = sequential_s / fleet_s
    perf_record["results"]["online_il_fleet"] = {
        "devices": N_DEVICES,
        "total_steps": total_steps,
        "sequential_s": sequential_s,
        "fleet_s": fleet_s,
        "sequential_steps_per_s": total_steps / sequential_s,
        "fleet_steps_per_s": total_steps / fleet_s,
        "speedup": speedup,
    }
    print(f"\nonline-IL fleet ({N_DEVICES} devices, {total_steps} steps): "
          f"sequential={sequential_s:.3f}s fleet={fleet_s:.3f}s "
          f"speedup={speedup:.2f}x "
          f"({total_steps / fleet_s:.0f} steps/s aggregate)")
    assert speedup >= MIN_ONLINE_IL_FLEET_SPEEDUP
