"""Benchmarks for the unified engine layer: vectorized Oracle sweep.

The vectorized ``evaluate_expected_batch`` sweep must (a) reproduce the
scalar reference loop bitwise and (b) be at least 5x faster on the
``FULL``-scale Oracle construction (in practice it is ~10x).  Both are
asserted here so a regression in either direction fails the benchmark run
even with ``--benchmark-disable``.
"""

from __future__ import annotations

import time

import pytest

from repro.core.objectives import ENERGY
from repro.core.oracle import OracleCache, build_oracle
from repro.experiments.scales import FULL
from repro.soc.configuration import ConfigurationSpace
from repro.soc.platform import odroid_xu3_like
from repro.soc.simulator import SoCSimulator
from repro.workloads.generator import SnippetTraceGenerator
from repro.workloads.suites import training_workloads

#: Acceptance floor for the vectorized sweep (measured ~10x on CI hardware).
MIN_SPEEDUP = 5.0


def _full_scale_snippets():
    """The FULL-scale offline training trace (every Mi-Bench workload)."""
    generator = SnippetTraceGenerator(seed=0)
    snippets = []
    for workload in training_workloads():
        snippets.extend(
            generator.generate(workload.scaled(FULL.train_snippet_factor))
        )
    return snippets


@pytest.fixture(scope="module")
def sweep_setup():
    platform = odroid_xu3_like()
    space = ConfigurationSpace(platform)
    simulator = SoCSimulator(platform, noise_scale=0.0, seed=0)
    snippets = _full_scale_snippets()
    # Warm the space/simulator lookup tables so timing measures the sweep.
    build_oracle(simulator, space, snippets[:2], ENERGY)
    return simulator, space, snippets


@pytest.mark.benchmark(group="engine-sweep")
def test_bench_vectorized_oracle_sweep(benchmark, sweep_setup):
    """FULL-scale Oracle sweep: vectorized vs scalar, identical and >=5x."""
    simulator, space, snippets = sweep_setup

    scalar_start = time.perf_counter()
    scalar_table = build_oracle(simulator, space, snippets, ENERGY,
                                use_batch=False)
    scalar_elapsed = time.perf_counter() - scalar_start

    batch_table = benchmark.pedantic(
        build_oracle, args=(simulator, space, snippets, ENERGY),
        kwargs={"use_batch": True}, rounds=1, iterations=1,
    )
    batch_elapsed = min(
        _timed(build_oracle, simulator, space, snippets, ENERGY)
        for _ in range(3)
    )

    assert scalar_table.entries.keys() == batch_table.entries.keys()
    for name in scalar_table.entries:
        scalar_entry = scalar_table.entries[name]
        batch_entry = batch_table.entries[name]
        assert scalar_entry.best_configuration == batch_entry.best_configuration
        assert scalar_entry.best_cost == batch_entry.best_cost
        assert (scalar_entry.best_result.energy_j
                == batch_entry.best_result.energy_j)

    speedup = scalar_elapsed / batch_elapsed
    print(f"\nOracle sweep ({len(snippets)} snippets x {len(space)} configs): "
          f"scalar={scalar_elapsed:.3f}s vectorized={batch_elapsed:.3f}s "
          f"speedup={speedup:.1f}x")
    assert speedup >= MIN_SPEEDUP


def _timed(fn, *args, **kwargs) -> float:
    start = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - start


@pytest.mark.benchmark(group="engine-cache")
def test_bench_oracle_cache_amortizes_resweeps(benchmark, sweep_setup):
    """A warm OracleCache makes repeated sweeps effectively free."""
    simulator, space, snippets = sweep_setup
    cache = OracleCache()
    build_oracle(simulator, space, snippets, ENERGY, cache=cache)

    cold_elapsed = _timed(build_oracle, simulator, space, snippets, ENERGY)
    warm_table = benchmark.pedantic(
        build_oracle, args=(simulator, space, snippets, ENERGY),
        kwargs={"cache": cache}, rounds=1, iterations=1,
    )
    warm_elapsed = min(
        _timed(build_oracle, simulator, space, snippets, ENERGY, cache=cache)
        for _ in range(3)
    )

    assert cache.hits >= len(snippets)
    assert len(warm_table.entries) == len(
        {entry.snippet_name for entry in warm_table.entries.values()}
    )
    print(f"\nOracle re-sweep: cold={cold_elapsed*1e3:.1f}ms "
          f"cached={warm_elapsed*1e3:.1f}ms")
    assert warm_elapsed < cold_elapsed
