"""Ablation benchmarks for design choices discussed in the paper's text."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    run_buffer_size_ablation,
    run_config_space_ablation,
    run_explicit_nmpc_ablation,
    run_forgetting_factor_ablation,
    run_noc_model_comparison,
)
from repro.utils.tables import format_table


@pytest.mark.benchmark(group="ablation-buffer")
def test_bench_buffer_size(benchmark, bench_scale):
    """Online-IL adaptation vs aggregation-buffer size (Sec. IV-A3)."""
    rows = benchmark.pedantic(run_buffer_size_ablation,
                              kwargs={"buffer_sizes": (10, 25, 50),
                                      "scale": bench_scale, "seed": 0},
                              rounds=1, iterations=1)
    print()
    print(format_table(
        ["buffer", "norm energy", "final acc %", "updates", "storage bytes"],
        [(r.buffer_capacity, r.normalized_energy, r.final_accuracy_percent,
          r.policy_updates, r.storage_bytes) for r in rows],
        title="Ablation — aggregation buffer size"))
    assert all(r.storage_bytes < 20 * 1024 for r in rows)


@pytest.mark.benchmark(group="ablation-forgetting")
def test_bench_forgetting_factor(benchmark, bench_scale):
    """Frame-time model error vs RLS forgetting factor (Sec. III-B)."""
    rows = benchmark.pedantic(run_forgetting_factor_ablation,
                              kwargs={"factors": (0.85, 0.95, 0.99, 1.0),
                                      "scale": bench_scale, "seed": 0},
                              rounds=1, iterations=1)
    print()
    print(format_table(
        ["forgetting factor", "adaptive", "MAPE %"],
        [("adaptive" if r.adaptive else f"{r.forgetting_factor:.2f}",
          r.adaptive, r.error_percent) for r in rows],
        title="Ablation — forgetting factor"))
    assert all(r.error_percent > 0 for r in rows)


@pytest.mark.benchmark(group="ablation-enmpc")
def test_bench_explicit_nmpc_models(benchmark, bench_scale):
    """Explicit-NMPC surface fidelity vs approximator choice (Sec. IV-B)."""
    rows = benchmark.pedantic(run_explicit_nmpc_ablation,
                              kwargs={"scale": bench_scale, "seed": 0},
                              rounds=1, iterations=1)
    print()
    print(format_table(
        ["surface model", "disagreement vs NMPC", "samples"],
        [(r.model_name, r.surface_disagreement, r.surface_samples) for r in rows],
        title="Ablation — explicit NMPC approximators"))
    tree = next(r for r in rows if r.model_name == "decision-tree")
    assert tree.surface_disagreement < 0.4


@pytest.mark.benchmark(group="ablation-space")
def test_bench_config_space(benchmark, bench_scale):
    """Offline-IL generalisation gap vs configuration-space richness."""
    rows = benchmark.pedantic(run_config_space_ablation,
                              kwargs={"scale": bench_scale, "seed": 0},
                              rounds=1, iterations=1)
    print()
    print(format_table(
        ["space", "configs", "Mi-Bench mean", "unseen mean", "gap"],
        [(r.space_name, r.n_configurations, r.mibench_mean, r.unseen_mean,
          r.generalization_gap) for r in rows],
        title="Ablation — configuration-space richness"))
    assert rows[1].n_configurations > rows[0].n_configurations


@pytest.mark.benchmark(group="ablation-noc")
def test_bench_noc_models(benchmark):
    """NoC latency: analytical vs SVR models against the simulator (Sec. III-C)."""
    result = benchmark.pedantic(run_noc_model_comparison,
                                kwargs={"mesh_width": 4, "seed": 0},
                                rounds=1, iterations=1)
    print()
    print(format_table(
        ["model", "MAPE % vs simulator"],
        [("analytical (queuing)", result.analytical_mape_percent),
         ("SVR (learned)", result.svr_mape_percent)],
        title="Ablation — NoC latency models"))
    assert result.svr_mape_percent > 0
