"""Benchmarks for the vectorized online decision loop (runtime Oracle).

Gates the PR-4 perf work the way ``test_bench_engine.py`` gates the Oracle
sweep and ``test_bench_ml_kernels.py`` gates the tree kernels: the batched
runtime-Oracle candidate sweep must (a) choose exactly the configurations
the scalar per-candidate loop chooses (same argmin, same tie-breaking) and
(b) run at least ``MIN_SWEEP_SPEEDUP``x faster over a representative
decision workload.  Equivalence is asserted on every run; the timing floor
only on timing-enabled runs (``--benchmark-disable`` — the CI smoke job —
skips it so the smoke run stays insensitive to runner load).

The end-to-end benchmark additionally measures online-IL steps/second over
a real policy run (decision + simulation + model updates + periodic
back-prop), which is the paper's "runtime decision cost stays low" claim at
system level; it is recorded, not gated, because most of its time is spent
outside the decision kernel.

Each timing-enabled run emits ``BENCH_policy_loop.json`` at the repository
root; CI uploads it as an artifact so the decision-loop performance
trajectory is tracked from this PR onward.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.runtime_oracle import RuntimeOracle
from repro.experiments.scales import TINY
from repro.models.performance import CpuPerformanceModel
from repro.models.power import CpuPowerModel
from repro.soc.configuration import ConfigurationSpace
from repro.soc.platform import odroid_xu3_like
from repro.soc.simulator import SoCSimulator
from repro.workloads.generator import SnippetTraceGenerator
from repro.workloads.suites import training_workloads

#: Acceptance floor for the batched candidate sweep vs the scalar loop.
MIN_SWEEP_SPEEDUP = 5.0

#: Decision steps per timing repetition (distinct counters/current configs).
N_DECISION_STEPS = 200

#: Where the perf record is written (repository root, uploaded by CI).
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_policy_loop.json"


def _best_of(repeats: int, fn, *args, **kwargs) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def decision_fixture():
    """Warmed models plus a stream of (counters, current) decision states."""
    soc = odroid_xu3_like()
    space = ConfigurationSpace(soc)
    simulator = SoCSimulator(soc, seed=7)
    power_model = CpuPowerModel(soc)
    performance_model = CpuPerformanceModel(soc)
    generator = SnippetTraceGenerator(seed=11)
    snippets = [
        snippet
        for workload in training_workloads()
        for snippet in generator.generate(workload.scaled(0.5))
    ]
    rng = np.random.default_rng(13)
    states = []
    current = space.default_configuration()
    while len(states) < N_DECISION_STEPS:
        for snippet in snippets:
            result = simulator.run_snippet(snippet, current, rng=rng)
            power_model.update(result.counters, current)
            performance_model.update(result.counters, current)
            states.append((result.counters, current))
            current = space.random_configuration(rng)
            if len(states) >= N_DECISION_STEPS:
                break
    return space, power_model, performance_model, states


@pytest.fixture(scope="module")
def speedup_gate(request):
    """Whether the timing floor is asserted on this run (see module docs)."""
    return not request.config.getoption("benchmark_disable", False)


@pytest.fixture(scope="module")
def perf_record(speedup_gate):
    """Collects measurements; written to disk at teardown on timed runs."""
    record = {
        "benchmark": "policy_loop",
        "fixture": {
            "n_decision_steps": N_DECISION_STEPS,
            "neighborhood_radius": 2,
        },
        "thresholds": {"min_sweep_speedup": MIN_SWEEP_SPEEDUP},
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": {},
    }
    yield record
    if speedup_gate and record["results"]:
        RECORD_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote perf record to {RECORD_PATH}")


@pytest.mark.benchmark(group="policy-loop")
def test_bench_candidate_sweep(decision_fixture, perf_record, speedup_gate):
    """Batched runtime-Oracle sweep: identical decisions, >=5x faster."""
    space, power_model, performance_model, states = decision_fixture
    batch_oracle = RuntimeOracle(space, power_model, performance_model,
                                 neighborhood_radius=2, mode="batch")
    scalar_oracle = RuntimeOracle(space, power_model, performance_model,
                                  neighborhood_radius=2, mode="scalar")

    # Decision equivalence on every state: same best configuration and
    # matching estimates (time predictions are bitwise equal; power goes
    # through one matmul, identical up to BLAS summation-order round-off).
    for counters, current in states:
        best_batch, est_batch = batch_oracle.best_configuration(counters, current)
        best_scalar, est_scalar = scalar_oracle.best_configuration(counters, current)
        assert best_batch == best_scalar
        assert est_batch.predicted_time_s == est_scalar.predicted_time_s
        np.testing.assert_allclose(est_batch.predicted_power_w,
                                   est_scalar.predicted_power_w,
                                   rtol=1e-12, atol=1e-12)
    if not speedup_gate:
        return

    def run_decisions(oracle: RuntimeOracle) -> None:
        for counters, current in states:
            oracle.best_configuration(counters, current)

    # Warm the neighbourhood index tables before timing either mode (both
    # paths share them; the scalar loop also benefits, which keeps the
    # measured ratio about the prediction kernel, not the memoisation).
    run_decisions(batch_oracle)
    scalar_s = _best_of(2, run_decisions, scalar_oracle)
    batch_s = _best_of(3, run_decisions, batch_oracle)
    speedup = scalar_s / batch_s
    per_decision_us = batch_s / N_DECISION_STEPS * 1e6
    perf_record["results"]["candidate_sweep"] = {
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": speedup,
        "batch_decision_us": per_decision_us,
    }
    print(f"\ncandidate sweep ({N_DECISION_STEPS} decisions): "
          f"scalar={scalar_s:.3f}s batch={batch_s:.4f}s "
          f"speedup={speedup:.1f}x ({per_decision_us:.0f}us/decision)")
    assert speedup >= MIN_SWEEP_SPEEDUP


@pytest.mark.benchmark(group="policy-loop")
def test_bench_online_il_steps_per_second(perf_record, speedup_gate):
    """End-to-end online-IL throughput (decision + simulate + learn)."""
    from repro.experiments.common import build_trained_framework
    from repro.workloads.sequences import build_online_sequence
    from repro.workloads.suites import unseen_workloads

    framework = build_trained_framework(TINY, seed=0)
    sequence = build_online_sequence(
        specs=unseen_workloads(),
        snippet_factor=2.0 * TINY.sequence_snippet_factor,
        seed=0,
    )
    policy = framework.build_online_il_policy(
        buffer_capacity=TINY.buffer_capacity,
        update_epochs=TINY.update_epochs,
    )
    start = time.perf_counter()
    run = framework.evaluate_policy_on_snippets(policy, sequence.snippets,
                                                with_oracle=False)
    elapsed = time.perf_counter() - start
    steps = len(run.results)
    assert steps == len(sequence.snippets)
    if not speedup_gate:
        return
    steps_per_s = steps / elapsed
    perf_record["results"]["online_il_end_to_end"] = {
        "steps": steps,
        "elapsed_s": elapsed,
        "steps_per_s": steps_per_s,
    }
    print(f"\nonline-IL end to end: {steps} steps in {elapsed:.2f}s "
          f"({steps_per_s:.0f} steps/s)")
