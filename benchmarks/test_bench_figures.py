"""Benchmarks regenerating Figures 2-5."""

from __future__ import annotations

import pytest

from repro.experiments import (
    format_figure2,
    format_figure3,
    format_figure4,
    format_figure5,
    run_figure2,
    run_figure5,
)
from repro.experiments.common import run_online_adaptation_study
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4


@pytest.fixture(scope="module")
def adaptation_study(bench_scale):
    """Shared Mi-Bench-offline / Cortex+PARSEC-online study (Figs. 3 and 4)."""
    return run_online_adaptation_study(bench_scale, seed=0)


@pytest.mark.benchmark(group="figure2")
def test_bench_figure2(benchmark, bench_scale):
    """Figure 2: online RLS frame-time prediction for Nenamark2."""
    result = benchmark.pedantic(run_figure2, args=(bench_scale,),
                                kwargs={"seed": 0}, rounds=1, iterations=1)
    print()
    print(format_figure2(result))
    # The paper reports < 5 % on real hardware; the synthetic trace plus the
    # periodic DVFS steps leave a somewhat larger residual in simulation.
    assert result.error_percent() < 12.0


@pytest.mark.benchmark(group="figure3")
def test_bench_figure3(benchmark, bench_scale, adaptation_study):
    """Figure 3: online-IL vs RL convergence to the Oracle."""
    result = benchmark.pedantic(run_figure3, args=(bench_scale,),
                                kwargs={"study": adaptation_study},
                                rounds=1, iterations=1)
    print()
    print(format_figure3(result))
    finals = result.final_accuracies()
    assert finals["online_il_near_optimal"] > finals["rl_near_optimal"]


@pytest.mark.benchmark(group="figure4")
def test_bench_figure4(benchmark, bench_scale, adaptation_study):
    """Figure 4: per-application energy normalised to the Oracle."""
    result = benchmark.pedantic(run_figure4, args=(bench_scale,),
                                kwargs={"study": adaptation_study},
                                rounds=1, iterations=1)
    print()
    print(format_figure4(result))
    assert result.mean("il") < result.mean("rl")
    assert result.worst("rl") > 1.05


@pytest.mark.benchmark(group="figure5")
def test_bench_figure5(benchmark, bench_scale):
    """Figure 5: explicit-NMPC energy savings over the baseline GPU governor."""
    result = benchmark.pedantic(run_figure5, args=(bench_scale,),
                                kwargs={"seed": 0}, rounds=1, iterations=1)
    print()
    print(format_figure5(result))
    assert result.average("gpu_savings_percent") > 8.0
    assert result.average("gpu_savings_percent") > result.average("pkg_savings_percent")
    assert result.average("fps_overhead_percent") < 5.0
