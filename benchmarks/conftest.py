"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures through the
drivers in :mod:`repro.experiments` and prints the corresponding rows/series,
so ``pytest benchmarks/ --benchmark-only`` doubles as the reproduction report.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentScale

#: Scale used by the benchmark harness: larger than the unit-test scale but
#: still minutes (not hours) end to end.
BENCH = ExperimentScale(
    name="bench",
    train_snippet_factor=0.5,
    eval_snippet_factor=0.5,
    sequence_snippet_factor=2.0,
    offline_epochs=120,
    buffer_capacity=25,
    update_epochs=80,
    rl_offline_episodes=2,
    gpu_frames=400,
    nmpc_surface_samples=300,
)


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return BENCH
