"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures through the
drivers in :mod:`repro.experiments` and prints the corresponding rows/series,
so ``pytest benchmarks/ --benchmark-only`` doubles as the reproduction report.
"""

from __future__ import annotations

import pytest

from repro.experiments.scales import BENCH, ExperimentScale


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return BENCH
