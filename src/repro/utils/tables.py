"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows/columns the paper reports; this
module renders them as aligned ASCII tables so the output is readable both in
terminals and in EXPERIMENTS.md code blocks.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

Cell = Union[str, float, int]


def _format_cell(value: Cell, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int,)):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table string."""
    rendered_rows: List[List[str]] = [
        [_format_cell(cell, precision) for cell in row] for row in rows
    ]
    header_row = [str(h) for h in headers]
    widths = [len(h) for h in header_row]
    for row in rendered_rows:
        if len(row) != len(header_row):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(header_row)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(header_row))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_mapping(values: Mapping[str, Cell], precision: int = 3,
                   title: Optional[str] = None) -> str:
    """Render a flat mapping as a two-column key/value table."""
    rows = [(key, value) for key, value in values.items()]
    return format_table(["metric", "value"], rows, precision=precision, title=title)
