"""Vectorized streaming-statistics helpers.

The experiments smooth several 0/1 decision series with a trailing moving
average (Fig. 3 accuracy curves, near-optimal rates).  The naive
``for i: nanmean(values[max(0, i - window + 1):i + 1])`` loop is
O(n * window) in Python; :func:`trailing_nanmean` computes the same series
with two cumulative sums in O(n).
"""

from __future__ import annotations

import numpy as np


def trailing_nanmean(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing moving average of the last ``window`` values, ignoring NaNs.

    Element ``i`` is ``nanmean(values[max(0, i - window + 1):i + 1])``:
    windows at the head of the series shrink instead of being padded, NaN
    entries are excluded from both the numerator and the denominator, and a
    window containing only NaNs yields NaN (without the ``RuntimeWarning``
    the scalar ``np.nanmean`` loop used to emit).

    For 0/1 indicator series — every caller in the experiments — the
    cumulative sums are exact integer arithmetic in float64, so the result is
    bitwise identical to the scalar loop.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {arr.shape}")
    n = arr.shape[0]
    if n == 0:
        return np.empty(0, dtype=float)
    valid = ~np.isnan(arr)
    padded_sums = np.concatenate(([0.0], np.cumsum(np.where(valid, arr, 0.0))))
    padded_counts = np.concatenate(([0], np.cumsum(valid.astype(np.int64))))
    upper = np.arange(1, n + 1)
    lower = np.maximum(0, upper - window)
    sums = padded_sums[upper] - padded_sums[lower]
    counts = padded_counts[upper] - padded_counts[lower]
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(counts > 0, sums / counts, np.nan)
