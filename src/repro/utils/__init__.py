"""Shared utilities: deterministic RNG handling, run records and table rendering."""

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.records import RunRecord, RunLog
from repro.utils.stats import trailing_nanmean
from repro.utils.tables import format_table

__all__ = [
    "make_rng",
    "spawn_rngs",
    "RunRecord",
    "RunLog",
    "trailing_nanmean",
    "format_table",
]
