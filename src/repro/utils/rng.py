"""Deterministic random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the conversion here keeps the
experiments reproducible end-to-end: a single top-level seed deterministically
derives independent child generators for the SoC simulator, the workload
generators, and the learning algorithms.
"""

from __future__ import annotations

import zlib
from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def stable_name_id(name: str) -> int:
    """Process-independent integer id for a name (CRC32 of its UTF-8 bytes).

    Use this — never built-in ``hash()`` — when deriving seed-stream keys
    from strings: str hashing is randomised per interpreter
    (``PYTHONHASHSEED``), which silently breaks cross-process
    reproducibility and the ``--jobs``-invariance guarantees.
    """
    return zlib.crc32(name.encode("utf-8"))


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, or an existing
    generator (returned unchanged so callers can share streams explicitly).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from a single ``seed``.

    Independence is provided by :class:`numpy.random.SeedSequence` spawning,
    so the children do not overlap even for adjacent seeds.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Use the generator itself to produce child seeds deterministically.
        child_seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(count)]


def derive_seed(seed: SeedLike, stream: Iterable[int]) -> int:
    """Deterministically derive an integer seed from ``seed`` and a key path."""
    key = list(stream)
    if isinstance(seed, np.random.Generator):
        base: Optional[int] = int(seed.integers(0, 2**31 - 1))
    else:
        base = seed
    seq = np.random.SeedSequence(entropy=base, spawn_key=tuple(key))
    return int(seq.generate_state(1)[0])
