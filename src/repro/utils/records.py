"""Light-weight run records used by simulators, controllers and experiments.

A :class:`RunRecord` is a single named observation (a dict of scalars), and a
:class:`RunLog` is an append-only sequence of records with convenience
accessors for turning the log into column arrays.  Experiments use these to
collect time series (accuracy over time, per-app energies, ...) without
depending on pandas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Sequence

import numpy as np


@dataclass
class RunRecord:
    """One observation: a step index plus a mapping of named scalar values."""

    step: int
    values: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def _from_values(cls, step: int, values: Dict[str, float]) -> "RunRecord":
        """Hot-path constructor bypassing the generated ``__init__``.

        ``values`` must already be plain floats (the coercion
        :meth:`RunLog.append` would apply is the caller's job).
        """
        record = cls.__new__(cls)
        record.step = step
        record.values = values
        return record

    def __getitem__(self, key: str) -> float:
        return self.values[key]

    def get(self, key: str, default: float = float("nan")) -> float:
        return self.values.get(key, default)


class RunLog:
    """Append-only log of :class:`RunRecord` objects."""

    def __init__(self) -> None:
        self._records: List[RunRecord] = []

    def append(self, step: int, **values: float) -> RunRecord:
        record = RunRecord(step=step, values={k: float(v) for k, v in values.items()})
        self._records.append(record)
        return record

    def append_record(self, record: RunRecord) -> RunRecord:
        """Append a pre-built record.

        Fast path for hot loops that already hold a values dict of plain
        floats (the coercion :meth:`append` would apply must have been
        done by the caller).
        """
        self._records.append(record)
        return record

    def extend(self, records: Sequence[RunRecord]) -> None:
        self._records.extend(records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> RunRecord:
        return self._records[index]

    @property
    def records(self) -> List[RunRecord]:
        return list(self._records)

    def column(self, key: str, default: float = float("nan")) -> np.ndarray:
        """Return the values of ``key`` across all records as an array."""
        return np.array([r.get(key, default) for r in self._records], dtype=float)

    def steps(self) -> np.ndarray:
        return np.array([r.step for r in self._records], dtype=int)

    def last(self) -> RunRecord:
        if not self._records:
            raise IndexError("RunLog is empty")
        return self._records[-1]

    def to_dict(self) -> Dict[str, List[float]]:
        """Return the log as a column-oriented dictionary."""
        keys: List[str] = []
        for record in self._records:
            for key in record.values:
                if key not in keys:
                    keys.append(key)
        out: Dict[str, List[float]] = {"step": [float(r.step) for r in self._records]}
        for key in keys:
            out[key] = [r.get(key) for r in self._records]
        return out

    def summary(self, key: str) -> Dict[str, float]:
        """Return mean/min/max/std summary statistics for one column."""
        col = self.column(key)
        col = col[~np.isnan(col)]
        if col.size == 0:
            return {"mean": float("nan"), "min": float("nan"),
                    "max": float("nan"), "std": float("nan")}
        return {
            "mean": float(np.mean(col)),
            "min": float(np.min(col)),
            "max": float(np.max(col)),
            "std": float(np.std(col)),
        }


def merge_logs(logs: Mapping[str, RunLog], key: str) -> Dict[str, np.ndarray]:
    """Extract column ``key`` from several named logs into one mapping."""
    return {name: log.column(key) for name, log in logs.items()}


def as_float_dict(values: Mapping[str, Any]) -> Dict[str, float]:
    """Coerce a mapping of scalars to plain floats (useful for records)."""
    return {k: float(v) for k, v in values.items()}
