"""``python -m repro.experiments`` — run the paper's experiments from the CLI.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments table2 --scale quick
    python -m repro.experiments figure3 figure4 --scale bench --seeds 3
    python -m repro.experiments --scale quick --jobs 4 --seeds 4
    python -m repro.experiments --tag ablation --scale tiny
"""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
