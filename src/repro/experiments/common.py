"""Shared experiment infrastructure: scale presets and the adaptation study.

``ExperimentScale`` controls how long the synthetic traces are and how much
offline training is performed, so the same experiment code serves both the
fast unit/benchmark runs (``QUICK``) and the full reproduction (``FULL``).
``OnlineAdaptationStudy`` performs the shared heavy lifting behind Figures 3
and 4: train the IL and RL policies offline on Mi-Bench, then adapt both
online over a Cortex+PARSEC application sequence while tracking accuracy and
energy against the Oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.control.rl import QLearningController
from repro.core.framework import OnlineLearningFramework, PolicyRunResult
from repro.core.online_il import OnlineILPolicy
from repro.utils.rng import SeedLike
from repro.workloads.sequences import ApplicationSequence, build_online_sequence
from repro.workloads.suites import (
    figure4_workloads,
    training_workloads,
    unseen_workloads,
)


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling experiment runtime vs fidelity."""

    name: str
    train_snippet_factor: float = 0.5
    eval_snippet_factor: float = 0.5
    sequence_snippet_factor: float = 2.0
    offline_epochs: int = 120
    buffer_capacity: int = 25
    update_epochs: int = 80
    rl_offline_episodes: int = 2
    gpu_frames: int = 300
    nmpc_surface_samples: int = 250

    def __post_init__(self) -> None:
        for attr in ("train_snippet_factor", "eval_snippet_factor",
                     "sequence_snippet_factor"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")


#: Fast preset used by unit tests and smoke runs (tens of seconds end to end).
QUICK = ExperimentScale(
    name="quick",
    train_snippet_factor=0.25,
    eval_snippet_factor=0.25,
    sequence_snippet_factor=1.0,
    offline_epochs=60,
    buffer_capacity=15,
    update_epochs=60,
    rl_offline_episodes=1,
    gpu_frames=150,
    nmpc_surface_samples=150,
)

#: Full preset used by the benchmark harness (minutes end to end).
FULL = ExperimentScale(
    name="full",
    train_snippet_factor=1.0,
    eval_snippet_factor=1.0,
    sequence_snippet_factor=4.0,
    offline_epochs=150,
    buffer_capacity=50,
    update_epochs=80,
    rl_offline_episodes=3,
    gpu_frames=600,
    nmpc_surface_samples=400,
)


def build_trained_framework(scale: ExperimentScale = QUICK,
                            seed: SeedLike = 0,
                            allow_core_gating: bool = False) -> OnlineLearningFramework:
    """Framework with the offline IL policy trained on the Mi-Bench suite."""
    framework = OnlineLearningFramework(seed=seed,
                                        allow_core_gating=allow_core_gating)
    workloads = [w.scaled(scale.train_snippet_factor) for w in training_workloads()]
    framework.train_offline(workloads, epochs=scale.offline_epochs)
    return framework


@dataclass
class OnlineAdaptationStudy:
    """Shared Figure-3 / Figure-4 study results."""

    framework: OnlineLearningFramework
    sequence: ApplicationSequence
    online_il_run: PolicyRunResult
    rl_run: PolicyRunResult
    offline_il_per_app: Dict[str, float] = field(default_factory=dict)
    rl_offline_per_app: Dict[str, float] = field(default_factory=dict)
    oracle_offline_per_app: Dict[str, float] = field(default_factory=dict)

    def online_per_app_normalized(self, run: PolicyRunResult) -> Dict[str, float]:
        """Per-application energy of an online run normalised to the Oracle."""
        per_app: Dict[str, float] = {}
        oracle_per_app: Dict[str, float] = {}
        for record, result in zip(run.log, run.results):
            app = result.snippet.application
            per_app[app] = per_app.get(app, 0.0) + result.energy_j
            oracle_per_app[app] = (
                oracle_per_app.get(app, 0.0) + record.get("oracle_energy_j")
            )
        return {app: per_app[app] / oracle_per_app[app] for app in per_app}


def run_online_adaptation_study(
    scale: ExperimentScale = QUICK,
    seed: SeedLike = 0,
    include_offline_apps: bool = True,
) -> OnlineAdaptationStudy:
    """Train offline on Mi-Bench, adapt online over Cortex + PARSEC.

    Returns the per-policy sequence runs (for Fig. 3 accuracy curves) and the
    per-application energies (for Fig. 4), including the Mi-Bench "offline"
    group evaluated with the design-time policies when requested.
    """
    framework = build_trained_framework(scale, seed=seed)

    online_policy: OnlineILPolicy = framework.build_online_il_policy(
        buffer_capacity=scale.buffer_capacity,
        update_epochs=scale.update_epochs,
    )
    rl_policy: QLearningController = framework.build_rl_policy()
    framework.train_rl_offline(
        rl_policy,
        [w.scaled(scale.train_snippet_factor) for w in training_workloads()],
        episodes=scale.rl_offline_episodes,
    )

    offline_il_per_app: Dict[str, float] = {}
    rl_offline_per_app: Dict[str, float] = {}
    oracle_offline_per_app: Dict[str, float] = {}
    if include_offline_apps:
        for workload in training_workloads():
            spec = workload.scaled(scale.eval_snippet_factor)
            il_run = framework.evaluate_policy(framework.offline_policy, spec)
            rl_eval = framework.evaluate_policy(rl_policy, spec,
                                                reset_policy=False)
            offline_il_per_app[workload.name] = il_run.total_energy_j
            rl_offline_per_app[workload.name] = rl_eval.total_energy_j
            oracle_offline_per_app[workload.name] = float(il_run.oracle_energy_j)

    sequence = build_online_sequence(
        specs=unseen_workloads(),
        snippet_factor=scale.sequence_snippet_factor,
        seed=seed,
    )
    online_run = framework.evaluate_policy_on_snippets(online_policy,
                                                       sequence.snippets)
    rl_run = framework.evaluate_policy_on_snippets(rl_policy, sequence.snippets,
                                                   reset_policy=False)
    return OnlineAdaptationStudy(
        framework=framework,
        sequence=sequence,
        online_il_run=online_run,
        rl_run=rl_run,
        offline_il_per_app=offline_il_per_app,
        rl_offline_per_app=rl_offline_per_app,
        oracle_offline_per_app=oracle_offline_per_app,
    )


def figure4_application_order() -> List[str]:
    """Application names in the paper's Figure-4 x-axis order."""
    return [w.name for w in figure4_workloads()]
