"""Shared experiment infrastructure: the online adaptation study.

Scale presets live in :mod:`repro.experiments.scales` (re-exported here for
backwards compatibility).  ``OnlineAdaptationStudy`` performs the shared
heavy lifting behind Figures 3 and 4: train the IL and RL policies offline on
Mi-Bench, then adapt both online over a Cortex+PARSEC application sequence
while tracking accuracy and energy against the Oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.control.rl import QLearningController
from repro.core.framework import OnlineLearningFramework, PolicyRunResult
from repro.core.online_il import OnlineILPolicy
from repro.experiments.scales import (  # noqa: F401  (re-exported)
    BENCH,
    FULL,
    QUICK,
    TINY,
    ExperimentScale,
)
from repro.utils.rng import SeedLike
from repro.workloads.sequences import ApplicationSequence, build_online_sequence
from repro.workloads.suites import (
    figure4_workloads,
    training_workloads,
    unseen_workloads,
)


def build_trained_framework(scale: ExperimentScale = QUICK,
                            seed: SeedLike = 0,
                            allow_core_gating: bool = False) -> OnlineLearningFramework:
    """Framework with the offline IL policy trained on the Mi-Bench suite."""
    framework = OnlineLearningFramework(seed=seed,
                                        allow_core_gating=allow_core_gating)
    workloads = [w.scaled(scale.train_snippet_factor) for w in training_workloads()]
    framework.train_offline(workloads, epochs=scale.offline_epochs)
    return framework


@dataclass
class OnlineAdaptationStudy:
    """Shared Figure-3 / Figure-4 study results."""

    framework: OnlineLearningFramework
    sequence: ApplicationSequence
    online_il_run: PolicyRunResult
    rl_run: PolicyRunResult
    offline_il_per_app: Dict[str, float] = field(default_factory=dict)
    rl_offline_per_app: Dict[str, float] = field(default_factory=dict)
    oracle_offline_per_app: Dict[str, float] = field(default_factory=dict)

    def online_per_app_normalized(self, run: PolicyRunResult) -> Dict[str, float]:
        """Per-application energy of an online run normalised to the Oracle.

        Records whose snippet was missing from the Oracle table carry no
        ``oracle_energy_j`` value; those snippets are excluded from the
        denominator, and applications with no Oracle energy at all are
        dropped from the result rather than producing NaN/None arithmetic.
        """
        per_app: Dict[str, float] = {}
        oracle_per_app: Dict[str, float] = {}
        for record, result in zip(run.log, run.results):
            app = result.snippet.application
            oracle_energy = record.get("oracle_energy_j")
            if oracle_energy is None or not np.isfinite(oracle_energy):
                continue
            per_app[app] = per_app.get(app, 0.0) + result.energy_j
            oracle_per_app[app] = oracle_per_app.get(app, 0.0) + oracle_energy
        return {
            app: per_app[app] / oracle_per_app[app]
            for app in per_app
            if oracle_per_app.get(app, 0.0) > 0.0
        }


def run_online_adaptation_study(
    scale: ExperimentScale = QUICK,
    seed: SeedLike = 0,
    include_offline_apps: bool = True,
) -> OnlineAdaptationStudy:
    """Train offline on Mi-Bench, adapt online over Cortex + PARSEC.

    Returns the per-policy sequence runs (for Fig. 3 accuracy curves) and the
    per-application energies (for Fig. 4), including the Mi-Bench "offline"
    group evaluated with the design-time policies when requested.
    """
    framework = build_trained_framework(scale, seed=seed)

    online_policy: OnlineILPolicy = framework.build_online_il_policy(
        buffer_capacity=scale.buffer_capacity,
        update_epochs=scale.update_epochs,
    )
    rl_policy: QLearningController = framework.build_rl_policy()
    framework.train_rl_offline(
        rl_policy,
        [w.scaled(scale.train_snippet_factor) for w in training_workloads()],
        episodes=scale.rl_offline_episodes,
    )

    offline_il_per_app: Dict[str, float] = {}
    rl_offline_per_app: Dict[str, float] = {}
    oracle_offline_per_app: Dict[str, float] = {}
    if include_offline_apps:
        for workload in training_workloads():
            spec = workload.scaled(scale.eval_snippet_factor)
            il_run = framework.evaluate_policy(framework.offline_policy, spec)
            rl_eval = framework.evaluate_policy(rl_policy, spec,
                                                reset_policy=False)
            offline_il_per_app[workload.name] = il_run.total_energy_j
            rl_offline_per_app[workload.name] = rl_eval.total_energy_j
            oracle_offline_per_app[workload.name] = float(il_run.oracle_energy_j)

    sequence = build_online_sequence(
        specs=unseen_workloads(),
        snippet_factor=scale.sequence_snippet_factor,
        seed=seed,
    )
    online_run = framework.evaluate_policy_on_snippets(online_policy,
                                                       sequence.snippets)
    rl_run = framework.evaluate_policy_on_snippets(rl_policy, sequence.snippets,
                                                   reset_policy=False)
    return OnlineAdaptationStudy(
        framework=framework,
        sequence=sequence,
        online_il_run=online_run,
        rl_run=rl_run,
        offline_il_per_app=offline_il_per_app,
        rl_offline_per_app=rl_offline_per_app,
        oracle_offline_per_app=oracle_offline_per_app,
    )


def figure4_application_order() -> List[str]:
    """Application names in the paper's Figure-4 x-axis order."""
    return [w.name for w in figure4_workloads()]
