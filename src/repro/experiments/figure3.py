"""Figure 3 — convergence of online-IL vs RL to the Oracle policy.

Both policies are trained offline on Mi-Bench, then run over a sequence of
Cortex + PARSEC applications.  The paper plots the accuracy of the
big-cluster frequency decisions with respect to the Oracle against time: the
online-IL policy converges to ~100 % within ~6 s (about 4 % of the sequence)
while the RL policy does not converge over the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.experiments.common import (
    ExperimentScale,
    QUICK,
    OnlineAdaptationStudy,
    run_online_adaptation_study,
)
from repro.utils.rng import SeedLike
from repro.utils.stats import trailing_nanmean
from repro.utils.tables import format_table


@dataclass
class Figure3Result:
    """Accuracy-vs-time series for the online-IL and RL policies."""

    time_axis_s: np.ndarray
    online_il_accuracy: np.ndarray
    rl_accuracy: np.ndarray
    online_il_near_optimal: np.ndarray
    rl_near_optimal: np.ndarray

    def final_accuracies(self) -> Dict[str, float]:
        return {
            "online_il": float(self.online_il_accuracy[-1]),
            "rl": float(self.rl_accuracy[-1]),
            "online_il_near_optimal": float(self.online_il_near_optimal[-1]),
            "rl_near_optimal": float(self.rl_near_optimal[-1]),
        }

    def convergence_fraction(self, threshold: float = 80.0) -> float:
        """Fraction of the sequence time after which online-IL stays above threshold.

        Returns 1.0 if the threshold is never reached (no convergence).
        """
        total = float(self.time_axis_s[-1])
        above = self.online_il_accuracy >= threshold
        for i in range(len(above)):
            if bool(np.all(above[i:])):
                return float(self.time_axis_s[i]) / total
        return 1.0


def _near_optimal_series(study: OnlineAdaptationStudy, run, window: int,
                         tolerance: float = 0.02) -> np.ndarray:
    """Moving-average rate of decisions within ``tolerance`` of Oracle energy."""
    framework = study.framework
    flags = []
    for record, result in zip(run.log, run.results):
        oracle_energy = record.get("oracle_energy_j")
        achieved = framework.simulator.evaluate_expected(
            result.snippet, result.configuration
        ).energy_j
        flags.append(1.0 if achieved <= oracle_energy * (1.0 + tolerance) else 0.0)
    return trailing_nanmean(np.array(flags), window) * 100.0


def run_figure3(scale: ExperimentScale = QUICK, seed: SeedLike = 0,
                window: int = 15,
                study: OnlineAdaptationStudy = None) -> Figure3Result:
    """Produce the accuracy-vs-time series of Figure 3."""
    if study is None:
        study = run_online_adaptation_study(scale, seed=seed,
                                            include_offline_apps=False)
    il_run = study.online_il_run
    rl_run = study.rl_run
    return Figure3Result(
        time_axis_s=il_run.time_axis_s(),
        online_il_accuracy=il_run.accuracy_series(window=window),
        rl_accuracy=rl_run.accuracy_series(window=window),
        online_il_near_optimal=_near_optimal_series(study, il_run, window),
        rl_near_optimal=_near_optimal_series(study, rl_run, window),
    )


def format_figure3(result: Figure3Result, n_points: int = 10) -> str:
    indices = np.linspace(0, len(result.time_axis_s) - 1, n_points).astype(int)
    rows = [
        (
            float(result.time_axis_s[i]),
            float(result.online_il_accuracy[i]),
            float(result.rl_accuracy[i]),
            float(result.online_il_near_optimal[i]),
            float(result.rl_near_optimal[i]),
        )
        for i in indices
    ]
    return format_table(
        ["time (s)", "online-IL acc (%)", "RL acc (%)",
         "online-IL near-opt (%)", "RL near-opt (%)"],
        rows, precision=1,
        title="Figure 3 — accuracy w.r.t. Oracle over the online sequence",
    )
