"""Fault-tolerance experiment — supervised fleets under injected faults.

The robustness question behind the paper's deployment story: when the
online-IL governor ships to a fleet of real devices, telemetry drops out,
sensors saturate, devices crash mid-run and stragglers hang.  This driver
sweeps a deterministic fault rate over a mixed fleet (online-IL and
ondemand devices, baseline and thermally-throttled scenarios) driven by
the :class:`~repro.fleet.supervisor.FleetSupervisor`, and reports what an
operator would watch: survival fraction, recovery counts, replay overhead
and the energy cost of supervision — per fault-rate cell, with fleet
percentiles of Oracle-normalised energy over the surviving devices.

Determinism: every stochastic input is derived from the experiment seed
via named streams — per-device trace/noise/scenario seeds are shared
across fault-rate cells (so Oracle tables are computed once and a cell
differs from its neighbour *only* by the injected faults), and each cell's
:class:`~repro.fleet.faults.FaultPlan` comes from its own derived seed.
Identical plan seeds produce identical fault schedules regardless of
``--jobs`` fan-out or host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.control.policy import GovernorPolicy
from repro.experiments.common import build_trained_framework
from repro.experiments.scales import ExperimentScale, get_scale
from repro.fleet import (DeviceSpec, FaultPlan, FleetSupervisor,
                         ShardedFleetEngine)
from repro.scenarios import get_scenario
from repro.scenarios.runtime import build_scenario_oracle
from repro.soc.governors import OndemandGovernor
from repro.utils.rng import SeedLike, derive_seed, make_rng, stable_name_id
from repro.workloads.sequences import build_online_sequence
from repro.workloads.suites import unseen_workloads

#: Devices simulated when ``--devices`` is not given.
DEFAULT_FT_DEVICES = 4

#: Fault rates swept by default: fault-free control, half the fleet
#: faulted in expectation, and every device faulted.
DEFAULT_FAULT_RATES: Tuple[float, ...] = (0.0, 0.5, 1.0)

#: Scenario assigned to the throttled half of the rotation.
_THROTTLE_SCENARIO = "thermal_throttle"

#: Seed-stream key of everything this driver derives.
_FT_STREAM = stable_name_id("fault-tolerance-experiment")


@dataclass
class FaultDeviceOutcome:
    """One device's fate in one fault-rate cell."""

    name: str
    policy: str
    scenario: str
    health: str
    completed: bool
    steps: int
    trace_steps: int
    crashes: int
    stalls: int
    restarts: int
    replayed_steps: int
    corrupted_observations: int
    watchdog_flags: int
    total_energy_j: float
    wasted_energy_j: float
    normalized_energy: Optional[float]


@dataclass
class FaultRateCell:
    """Fleet outcome at one injected fault rate."""

    fault_rate: float
    n_faults: int
    survival_fraction: float
    recovered: int
    quarantined: int
    crashes: int
    stalls: int
    restarts: int
    replayed_steps: int
    corrupted_observations: int
    watchdog_flags: int
    devices: List[FaultDeviceOutcome] = field(default_factory=list)
    aggregates: Dict[str, float] = field(default_factory=dict)


@dataclass
class FaultToleranceStudy:
    """Result of the ``fault-tolerance`` experiment."""

    scale_name: str
    n_devices: int
    fault_rates: List[float] = field(default_factory=list)
    cells: List[FaultRateCell] = field(default_factory=list)

    def seed_run_metadata(self) -> Dict[str, float]:
        """Worst-case robustness numbers for ``SeedRun.metadata``."""
        if not self.cells:
            return {}
        worst = self.cells[-1]
        return {
            "fault_survival_fraction": worst.survival_fraction,
            "fault_recovered_devices": float(worst.recovered),
            "fault_replayed_steps": float(worst.replayed_steps),
        }


def _cell_aggregates(outcomes: Sequence[FaultDeviceOutcome],
                     total_steps: int) -> Dict[str, float]:
    """Operator-facing percentiles for one fault-rate cell.

    Energy overhead is the supervision tax: ``(final + wasted) / final``
    per device, where *wasted* is energy spent on steps later replayed
    from a snapshot.  Normalised-energy percentiles cover only devices
    that completed their trace (partial runs would skew the quality
    numbers that the survival fraction already captures).
    """
    overhead = np.array([
        (outcome.total_energy_j + outcome.wasted_energy_j)
        / outcome.total_energy_j
        for outcome in outcomes if outcome.total_energy_j > 0
    ])
    completed = [outcome.normalized_energy for outcome in outcomes
                 if outcome.completed and outcome.normalized_energy is not None]
    aggregates = {
        "energy_overhead_mean": float(np.mean(overhead)) if overhead.size else 1.0,
        "energy_overhead_p50": (
            float(np.percentile(overhead, 50)) if overhead.size else 1.0
        ),
        "energy_overhead_p90": (
            float(np.percentile(overhead, 90)) if overhead.size else 1.0
        ),
        "replay_overhead": (
            sum(outcome.replayed_steps for outcome in outcomes) / total_steps
            if total_steps else 0.0
        ),
    }
    if completed:
        normalized = np.array(completed)
        aggregates.update({
            "normalized_energy_p50": float(np.percentile(normalized, 50)),
            "normalized_energy_p90": float(np.percentile(normalized, 90)),
        })
    return aggregates


def run_fault_tolerance(
    scale: ExperimentScale,
    seed: SeedLike = 0,
    n_devices: Optional[int] = None,
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    n_shards: Optional[int] = None,
) -> FaultToleranceStudy:
    """Sweep fault rate over a supervised mixed fleet.

    Device ``i`` rotates policy (even: isolated online-IL, odd: ondemand
    governor) and scenario (first half of each policy pair: baseline,
    second half: thermal throttling).  Traces, noise streams and scenario
    perturbations are identical across cells; only the fault plan varies.

    ``n_shards`` accelerates the *fault-free* cells only: a cell whose
    plan injects nothing is, by the supervisor's documented zero-fault
    identity, bitwise equal to a bare engine run — so it can route
    through the :class:`~repro.fleet.sharding.ShardedFleetEngine` worker
    pool with synthesized all-healthy outcomes.  Cells with injected
    faults need the supervisor's step-by-step intervention machinery and
    stay single-process.
    """
    scale = get_scale(scale)
    n = int(n_devices) if n_devices is not None else DEFAULT_FT_DEVICES
    if n < 1:
        raise ValueError(f"fault-tolerance needs at least one device, got {n}")
    rates = [float(rate) for rate in fault_rates]
    if not rates:
        raise ValueError("fault_rates must not be empty")
    framework = build_trained_framework(scale, seed=seed)
    simulator = framework.simulator
    space = framework.space

    # Per-device inputs, fixed across every fault-rate cell.
    blueprints = []
    for i in range(n):
        trace_seed = derive_seed(seed, (_FT_STREAM, 0, i))
        sequence = build_online_sequence(
            specs=unseen_workloads(),
            snippet_factor=scale.sequence_snippet_factor,
            seed=trace_seed,
        )
        scenario_name = _THROTTLE_SCENARIO if (i // 2) % 2 else ""
        if scenario_name:
            scenario = get_scenario(scenario_name).apply(
                sequence.snippets, derive_seed(seed, (_FT_STREAM, 2, i))
            )
            oracle = build_scenario_oracle(
                simulator, space, scenario, framework.objective,
                cache=framework.oracle_cache,
            )
            snippets: Sequence = scenario.snippets
        else:
            scenario = None
            oracle = framework.build_oracle_for(sequence.snippets)
            snippets = sequence.snippets
        blueprints.append({
            "name": f"device-{i:02d}",
            "index": i,
            "scenario_name": scenario_name,
            "scenario": scenario,
            "snippets": sequence.snippets,
            "oracle": oracle,
            "steps": len(snippets),
        })
    names = [blueprint["name"] for blueprint in blueprints]
    horizon = min(blueprint["steps"] for blueprint in blueprints)

    study = FaultToleranceStudy(scale_name=scale.name, n_devices=n,
                                fault_rates=rates)
    for j, rate in enumerate(rates):
        plan = FaultPlan.generate(
            names, rate,
            seed=derive_seed(seed, (_FT_STREAM, 3, j)),
            horizon=max(horizon, 2),
        )
        devices: List[DeviceSpec] = []
        policy_of: Dict[str, str] = {}
        for blueprint in blueprints:
            i = blueprint["index"]
            if i % 2 == 0:
                policy = framework.build_online_il_policy(
                    buffer_capacity=scale.buffer_capacity,
                    update_epochs=scale.update_epochs,
                    isolated=True,
                )
            else:
                policy = GovernorPolicy(OndemandGovernor(space))
            policy_of[blueprint["name"]] = policy.name
            noise_rng = make_rng(derive_seed(seed, (_FT_STREAM, 1, i)))
            if blueprint["scenario"] is not None:
                devices.append(DeviceSpec(
                    name=blueprint["name"], policy=policy,
                    scenario=blueprint["scenario"], rng=noise_rng,
                    oracle_table=blueprint["oracle"],
                ))
            else:
                devices.append(DeviceSpec(
                    name=blueprint["name"], policy=policy,
                    snippets=blueprint["snippets"], rng=noise_rng,
                    oracle_table=blueprint["oracle"],
                ))
        outcomes: List[FaultDeviceOutcome] = []
        if n_shards is not None and len(plan) == 0:
            # Zero-fault identity: an empty plan makes the supervisor a
            # bitwise pass-through over the bare engine, so the cell can
            # run sharded; every device trivially completes healthy.
            engine = ShardedFleetEngine(devices, simulator, space,
                                        n_shards=n_shards,
                                        collect="summaries")
            for blueprint, summary in zip(blueprints, engine.run()):
                outcomes.append(FaultDeviceOutcome(
                    name=summary.name,
                    policy=policy_of[summary.name],
                    scenario=blueprint["scenario_name"],
                    health="healthy",
                    completed=True,
                    steps=summary.steps,
                    trace_steps=blueprint["steps"],
                    crashes=0,
                    stalls=0,
                    restarts=0,
                    replayed_steps=0,
                    corrupted_observations=0,
                    watchdog_flags=0,
                    total_energy_j=summary.total_energy_j,
                    wasted_energy_j=0.0,
                    normalized_energy=(summary.normalized_energy
                                       if summary.oracle_energy_j
                                       else None),
                ))
            survival_fraction = 1.0
        else:
            supervisor = FleetSupervisor(
                devices, simulator, space, plan=plan,
                snapshot_every=4, watchdog_rounds=2, max_restarts=2,
            )
            runs = supervisor.run()
            reports = supervisor.reports()
            for blueprint, run, report in zip(blueprints, runs, reports):
                outcomes.append(FaultDeviceOutcome(
                    name=report.name,
                    policy=policy_of[report.name],
                    scenario=blueprint["scenario_name"],
                    health=report.health,
                    completed=report.completed,
                    steps=report.steps_completed,
                    trace_steps=report.trace_steps,
                    crashes=report.crashes,
                    stalls=report.stalls,
                    restarts=report.restarts,
                    replayed_steps=report.replayed_steps,
                    corrupted_observations=report.corrupted_observations,
                    watchdog_flags=report.watchdog_flags,
                    total_energy_j=run.total_energy_j,
                    wasted_energy_j=report.wasted_energy_j,
                    normalized_energy=(run.normalized_energy
                                       if report.completed
                                       and run.oracle_energy_j else None),
                ))
            survival_fraction = supervisor.survival_fraction
        total_steps = sum(outcome.steps for outcome in outcomes)
        study.cells.append(FaultRateCell(
            fault_rate=rate,
            n_faults=len(plan),
            survival_fraction=survival_fraction,
            recovered=sum(1 for o in outcomes if o.health == "recovered"),
            quarantined=sum(1 for o in outcomes if o.health == "quarantined"),
            crashes=sum(o.crashes for o in outcomes),
            stalls=sum(o.stalls for o in outcomes),
            restarts=sum(o.restarts for o in outcomes),
            replayed_steps=sum(o.replayed_steps for o in outcomes),
            corrupted_observations=sum(o.corrupted_observations
                                       for o in outcomes),
            watchdog_flags=sum(o.watchdog_flags for o in outcomes),
            devices=outcomes,
            aggregates=_cell_aggregates(outcomes, total_steps),
        ))
    return study


def format_fault_tolerance(study: FaultToleranceStudy) -> str:
    """Human-readable fault-tolerance report (CLI output)."""
    lines = [
        f"fault-tolerance sweep over {study.n_devices} devices, "
        f"rates {', '.join(f'{rate:.2f}' for rate in study.fault_rates)}",
    ]
    for cell in study.cells:
        agg = cell.aggregates
        lines.append(
            f"  rate={cell.fault_rate:4.2f}  faults={cell.n_faults:2d} "
            f"survival={cell.survival_fraction:5.0%} "
            f"recovered={cell.recovered} quarantined={cell.quarantined} "
            f"replayed={cell.replayed_steps:3d} "
            f"overhead p90={agg['energy_overhead_p90']:.3f}"
        )
        for outcome in cell.devices:
            scenario = outcome.scenario or "baseline"
            lines.append(
                f"    {outcome.name}  {outcome.policy:12s} {scenario:16s} "
                f"{outcome.health:11s} steps={outcome.steps:3d}/"
                f"{outcome.trace_steps:3d} restarts={outcome.restarts} "
                f"corrupted={outcome.corrupted_observations}"
            )
    return "\n".join(lines)
