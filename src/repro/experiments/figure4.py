"""Figure 4 — per-application energy of online-IL and RL, normalised to Oracle.

The paper evaluates all sixteen applications: the Mi-Bench group ("offline")
is executed with the design-time policies, while the Cortex + PARSEC group
("online") is executed while the policies adapt over the application
sequence.  Online-IL stays within a few percent of the Oracle everywhere; RL
reaches up to 1.4x the Oracle energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.experiments.common import (
    ExperimentScale,
    QUICK,
    OnlineAdaptationStudy,
    figure4_application_order,
    run_online_adaptation_study,
)
from repro.utils.rng import SeedLike
from repro.utils.tables import format_table
from repro.workloads.suites import MIBENCH_APPS


@dataclass
class Figure4Result:
    """Per-application normalised energies for the IL and RL policies."""

    il_normalized: Dict[str, float] = field(default_factory=dict)
    rl_normalized: Dict[str, float] = field(default_factory=dict)
    groups: Dict[str, str] = field(default_factory=dict)

    def applications(self) -> List[str]:
        order = figure4_application_order()
        return [app for app in order if app in self.il_normalized]

    def worst(self, policy: str = "rl") -> float:
        table = self.rl_normalized if policy == "rl" else self.il_normalized
        return max(table.values())

    def mean(self, policy: str = "il") -> float:
        table = self.rl_normalized if policy == "rl" else self.il_normalized
        return sum(table.values()) / len(table)


def run_figure4(scale: ExperimentScale = QUICK, seed: SeedLike = 0,
                study: OnlineAdaptationStudy = None) -> Figure4Result:
    """Produce the per-application normalised energy bars of Figure 4."""
    if study is None:
        study = run_online_adaptation_study(scale, seed=seed,
                                            include_offline_apps=True)
    result = Figure4Result()
    # Offline group: Mi-Bench applications under the design-time policies.
    for app, energy in study.offline_il_per_app.items():
        oracle = study.oracle_offline_per_app[app]
        result.il_normalized[app] = energy / oracle
        result.groups[app] = "offline"
    for app, energy in study.rl_offline_per_app.items():
        oracle = study.oracle_offline_per_app[app]
        result.rl_normalized[app] = energy / oracle
    # Online group: Cortex + PARSEC applications during the adaptation run.
    il_online = study.online_per_app_normalized(study.online_il_run)
    rl_online = study.online_per_app_normalized(study.rl_run)
    for app, value in il_online.items():
        result.il_normalized[app] = value
        result.groups[app] = "online"
    for app, value in rl_online.items():
        result.rl_normalized[app] = value
    return result


def format_figure4(result: Figure4Result) -> str:
    rows = []
    for app in result.applications():
        rows.append(
            (
                app,
                result.groups.get(app, "?"),
                result.il_normalized.get(app, float("nan")),
                result.rl_normalized.get(app, float("nan")),
            )
        )
    rows.append(("(mean)", "", result.mean("il"), result.mean("rl")))
    return format_table(
        ["application", "group", "online-IL / Oracle", "RL / Oracle"],
        rows, precision=3,
        title="Figure 4 — energy normalised to the Oracle policy",
    )
