"""Ablation studies for design choices called out in the paper's text.

* Buffer size — "the size of this buffer determines the training accuracy and
  implementation overhead ... 100 epochs provides close to 100 % accuracy"
  and "the corresponding storage overhead ... is less than 20 KB".
* RLS forgetting factor — how the frame-time model's tracking error depends
  on the forgetting factor (and the STAFF adaptive variant).
* Explicit-NMPC approximation — how closely the regression surface matches
  the exact NMPC law and how the approximator choice affects it.
* Configuration-space richness — how the offline-IL generalisation gap grows
  when the core-gating knob is added to the control space.
* NoC model comparison — analytical vs SVR-learned latency models against the
  cycle-level simulator (Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.control.explicit_nmpc import ExplicitNMPCGpuController
from repro.experiments.common import (
    ExperimentScale,
    QUICK,
    build_trained_framework,
)
from repro.experiments.figure2 import run_figure2
from repro.experiments.table2 import run_table2
from repro.gpu.gpu import default_integrated_gpu
from repro.ml.linear import LinearRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.metrics import mean_absolute_percentage_error
from repro.ml.tree import DecisionTreeRegressor
from repro.noc.analytical import AnalyticalNoCModel
from repro.noc.svr_model import SVRNoCLatencyModel, build_noc_training_set
from repro.noc.topology import MeshTopology
from repro.utils.rng import SeedLike
from repro.workloads.sequences import build_online_sequence
from repro.workloads.suites import unseen_workloads


@dataclass
class BufferAblationRow:
    buffer_capacity: int
    normalized_energy: float
    final_accuracy_percent: float
    policy_updates: int
    storage_bytes: int


def run_buffer_size_ablation(
    buffer_sizes: Sequence[int] = (10, 25, 50, 100),
    scale: ExperimentScale = QUICK,
    seed: SeedLike = 0,
) -> List[BufferAblationRow]:
    """Online-IL adaptation quality versus aggregation-buffer size."""
    rows: List[BufferAblationRow] = []
    for capacity in buffer_sizes:
        framework = build_trained_framework(scale, seed=seed)
        policy = framework.build_online_il_policy(
            buffer_capacity=int(capacity), update_epochs=scale.update_epochs
        )
        sequence = build_online_sequence(
            specs=unseen_workloads(),
            snippet_factor=scale.sequence_snippet_factor,
            seed=seed,
        )
        run = framework.evaluate_policy_on_snippets(policy, sequence.snippets)
        rows.append(
            BufferAblationRow(
                buffer_capacity=int(capacity),
                normalized_energy=run.normalized_energy,
                final_accuracy_percent=run.final_accuracy(),
                policy_updates=policy.n_policy_updates,
                storage_bytes=policy.buffer.storage_bytes(),
            )
        )
    return rows


@dataclass
class ForgettingAblationRow:
    forgetting_factor: Optional[float]
    adaptive: bool
    error_percent: float


def run_forgetting_factor_ablation(
    factors: Sequence[float] = (0.85, 0.92, 0.95, 0.99, 1.0),
    include_adaptive: bool = True,
    scale: ExperimentScale = QUICK,
    seed: SeedLike = 0,
) -> List[ForgettingAblationRow]:
    """Frame-time model error versus the RLS forgetting factor."""
    rows: List[ForgettingAblationRow] = []
    for factor in factors:
        result = run_figure2(scale=scale, seed=seed, adaptive_forgetting=False)
        # run_figure2 constructs its own model; rebuild with the factor by
        # re-running the prediction loop through the same helper.
        result = _figure2_with_factor(scale, seed, forgetting_factor=float(factor))
        rows.append(
            ForgettingAblationRow(
                forgetting_factor=float(factor),
                adaptive=False,
                error_percent=result,
            )
        )
    if include_adaptive:
        adaptive_error = _figure2_with_factor(scale, seed, adaptive=True)
        rows.append(
            ForgettingAblationRow(
                forgetting_factor=None, adaptive=True, error_percent=adaptive_error
            )
        )
    return rows


def _figure2_with_factor(scale: ExperimentScale, seed: SeedLike,
                         forgetting_factor: float = 0.95,
                         adaptive: bool = False) -> float:
    """Helper: Figure-2 style run returning only the post-warm-up MAPE."""
    from repro.gpu.gpu import GPUConfiguration
    from repro.gpu.simulator import GPUSimulator
    from repro.models.performance import FrameTimeModel
    from repro.workloads.graphics import get_graphics_workload

    gpu = default_integrated_gpu()
    trace = get_graphics_workload("nenamark2", gpu=gpu,
                                  n_frames=scale.gpu_frames, seed=seed)
    simulator = GPUSimulator(gpu, noise_scale=0.01, seed=seed)
    model = FrameTimeModel(forgetting_factor=forgetting_factor, adaptive=adaptive,
                           slice_scaling_alpha=gpu.slice_scaling_alpha)
    schedule = [len(gpu.opps) - 1, len(gpu.opps) // 2, len(gpu.opps) - 2]
    measured: List[float] = []
    predicted: List[float] = []
    prev_cycles = trace.frames[0].work_cycles
    prev_bytes = trace.frames[0].memory_bytes
    for i, frame in enumerate(trace.frames):
        opp = schedule[(i // 60) % len(schedule)]
        config = GPUConfiguration(opp_index=opp, active_slices=gpu.n_slices)
        frequency = gpu.opps[opp].frequency_hz
        predicted.append(model.predict_frame_time_s(prev_cycles, prev_bytes,
                                                    frequency, gpu.n_slices))
        rendered = simulator.render_frame(frame, config, trace.deadline_s)
        model.update(prev_cycles, prev_bytes, frequency, gpu.n_slices,
                     rendered.busy_time_s)
        measured.append(rendered.busy_time_s)
        prev_cycles, prev_bytes = frame.work_cycles, frame.memory_bytes
    warmup = max(10, scale.gpu_frames // 20)
    return mean_absolute_percentage_error(np.array(measured[warmup:]),
                                          np.array(predicted[warmup:]))


@dataclass
class ExplicitNMPCAblationRow:
    model_name: str
    surface_disagreement: float
    surface_samples: int


def run_explicit_nmpc_ablation(
    scale: ExperimentScale = QUICK,
    seed: SeedLike = 0,
    target_fps: float = 30.0,
) -> List[ExplicitNMPCAblationRow]:
    """Explicit-NMPC surface fidelity for different approximator models."""
    gpu = default_integrated_gpu()
    models = {
        "decision-tree": (DecisionTreeRegressor(max_depth=10, min_samples_leaf=1,
                                                min_samples_split=2),
                          DecisionTreeRegressor(max_depth=10, min_samples_leaf=1,
                                                min_samples_split=2)),
        "linear": (LinearRegressor(), LinearRegressor()),
        "knn": (KNeighborsRegressor(n_neighbors=3),
                KNeighborsRegressor(n_neighbors=3)),
    }
    rows: List[ExplicitNMPCAblationRow] = []
    for name, (opp_model, slice_model) in models.items():
        controller = ExplicitNMPCGpuController(
            gpu, target_fps=target_fps,
            n_surface_samples=scale.nmpc_surface_samples,
            opp_model=opp_model, slice_model=slice_model,
        )
        controller.fit()
        rows.append(
            ExplicitNMPCAblationRow(
                model_name=name,
                surface_disagreement=controller.surface_disagreement(n_probe=100),
                surface_samples=scale.nmpc_surface_samples,
            )
        )
    return rows


@dataclass
class ConfigSpaceAblationRow:
    space_name: str
    n_configurations: int
    mibench_mean: float
    unseen_mean: float
    generalization_gap: float


def run_config_space_ablation(scale: ExperimentScale = QUICK,
                              seed: SeedLike = 0) -> List[ConfigSpaceAblationRow]:
    """Offline-IL generalisation gap with and without the core-gating knob."""
    rows: List[ConfigSpaceAblationRow] = []
    for gating, label in ((False, "frequencies only"),
                          (True, "frequencies + big-core gating")):
        table2 = run_table2(scale=scale, seed=seed, allow_core_gating=gating)
        framework = build_trained_framework(scale, seed=seed,
                                            allow_core_gating=gating)
        rows.append(
            ConfigSpaceAblationRow(
                space_name=label,
                n_configurations=len(framework.space),
                mibench_mean=table2.suite_mean("Mi-Bench"),
                unseen_mean=(table2.suite_mean("Cortex")
                             + table2.suite_mean("PARSEC")) / 2.0,
                generalization_gap=table2.generalization_gap,
            )
        )
    return rows


@dataclass
class NoCComparisonResult:
    analytical_mape_percent: float
    svr_mape_percent: float
    n_train: int
    n_test: int


def run_noc_model_comparison(
    mesh_width: int = 4,
    train_rates: Sequence[float] = (0.02, 0.04, 0.06, 0.08, 0.10, 0.12),
    test_rates: Sequence[float] = (0.03, 0.05, 0.07, 0.09, 0.11),
    n_cycles: int = 300,
    seed: SeedLike = 0,
) -> NoCComparisonResult:
    """Analytical vs SVR NoC latency model accuracy against the simulator."""
    topology = MeshTopology(mesh_width, mesh_width)
    train = build_noc_training_set(topology, train_rates, n_cycles=n_cycles,
                                   seed=seed)
    test = build_noc_training_set(topology, test_rates, n_cycles=n_cycles,
                                  seed=int(seed) + 1 if isinstance(seed, int) else 1)
    svr = SVRNoCLatencyModel().fit(train)
    svr_mape, _ = svr.evaluate(test)
    simulated = np.array([s.simulated_latency for s in test])
    analytical = np.array([min(s.analytical_latency, 10 * max(simulated))
                           for s in test])
    analytical_mape = mean_absolute_percentage_error(simulated, analytical)
    return NoCComparisonResult(
        analytical_mape_percent=analytical_mape,
        svr_mape_percent=svr_mape,
        n_train=len(train),
        n_test=len(test),
    )
