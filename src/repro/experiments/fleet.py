"""Fleet experiment — lockstep multi-device rollout of the trained policy.

The paper's deployment story puts the online-IL governor on *every* device
of a fleet; this driver simulates that rollout.  One framework is trained
offline (the design-time phase happens once, like shipping a firmware
image), then ``N`` heterogeneous devices each receive an isolated copy of
the online-IL policy and adapt independently over their own snippet
sequence — with their own seed, their own measurement-noise stream, and a
rotating per-device scenario (including thermal throttling, whose space
restrictions are enforced per step).  All devices advance in lockstep
through the :class:`~repro.fleet.engine.FleetEngine`, whose per-step
executions are batched across the fleet; Oracle entries flow through the
framework's shared :class:`~repro.core.oracle.OracleCache` (and the
on-disk store when one is installed), so overlapping sweeps are computed
once for the whole fleet.

The report is fleet-centric: per-device energy/accuracy plus fleet
aggregate percentiles of Oracle-normalised energy and final decision
accuracy — the numbers an operator of millions of devices would watch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.common import build_trained_framework
from repro.experiments.scales import ExperimentScale, get_scale
from repro.fleet import DeviceSpec, ShardedFleetEngine, build_fleet
from repro.scenarios import available_scenarios, get_scenario
from repro.scenarios.runtime import build_scenario_oracle
from repro.utils.rng import SeedLike, derive_seed, make_rng, stable_name_id
from repro.workloads.sequences import build_online_sequence
from repro.workloads.suites import unseen_workloads

#: Devices simulated when ``--devices`` is not given.
DEFAULT_FLEET_DEVICES = 6

#: Seed-stream key of everything this driver derives (trace seeds, noise
#: streams, scenario seeds) — stable across processes by construction.
_FLEET_STREAM = stable_name_id("fleet-experiment")


@dataclass
class FleetDeviceReport:
    """Per-device outcome of one fleet rollout."""

    name: str
    policy: str
    scenario: str
    steps: int
    throttled_steps: int
    total_energy_j: float
    total_time_s: float
    normalized_energy: float
    final_accuracy: float


@dataclass
class FleetStudy:
    """Result of the ``fleet`` experiment."""

    scale_name: str
    n_devices: int
    total_steps: int
    batched_execution_fraction: float
    batched_decision_fraction: float
    batched_observe_fraction: float = 0.0
    devices: List[FleetDeviceReport] = field(default_factory=list)
    aggregates: Dict[str, float] = field(default_factory=dict)

    def seed_run_metadata(self) -> Dict[str, float]:
        """Batching hit rates for the runner's per-seed metadata.

        Surfaced next to the Oracle cache counters in
        ``SeedRun.metadata``: what fraction of the fleet's session-steps
        went through the batched decide/execute/observe paths versus the
        per-session scalar fallbacks.
        """
        return {
            "fleet_batched_decide_fraction": self.batched_decision_fraction,
            "fleet_batched_execute_fraction": self.batched_execution_fraction,
            "fleet_batched_observe_fraction": self.batched_observe_fraction,
        }


def _fleet_aggregates(reports: Sequence[FleetDeviceReport]) -> Dict[str, float]:
    """Fleet percentiles over the per-device reports.

    Aggregation is NaN-aware: a device whose ``final_accuracy`` is NaN
    (e.g. an all-NaN oracle-match prefix shorter than the smoothing
    window) must not poison every percentile — it is dropped from the
    accuracy statistics, and ``n_devices_reported`` records how many
    devices actually contributed.  An empty report list has no meaningful
    aggregate and raises instead of emitting a mean-of-empty-slice
    RuntimeWarning with NaN values.
    """
    if not reports:
        raise ValueError(
            "fleet aggregation needs at least one device report"
        )
    normalized = np.array([r.normalized_energy for r in reports])
    accuracy = np.array([r.final_accuracy for r in reports])
    aggregates = {
        "n_devices_reported": float(len(reports)),
        "fleet_energy_j": float(sum(r.total_energy_j for r in reports)),
        "fleet_time_s": float(sum(r.total_time_s for r in reports)),
    }
    # np.nanmean/np.nanpercentile still warn (and return NaN) when *every*
    # entry is NaN — guard each column so a fully-NaN metric yields NaN
    # silently while its n_* count makes the gap explicit.
    valid_normalized = normalized[~np.isnan(normalized)]
    aggregates["n_normalized_energy_reported"] = float(valid_normalized.size)
    if valid_normalized.size:
        aggregates.update({
            "normalized_energy_mean": float(np.mean(valid_normalized)),
            "normalized_energy_p50": float(np.percentile(valid_normalized, 50)),
            "normalized_energy_p90": float(np.percentile(valid_normalized, 90)),
            "normalized_energy_p99": float(np.percentile(valid_normalized, 99)),
        })
    else:
        aggregates.update({
            "normalized_energy_mean": float("nan"),
            "normalized_energy_p50": float("nan"),
            "normalized_energy_p90": float("nan"),
            "normalized_energy_p99": float("nan"),
        })
    valid_accuracy = accuracy[~np.isnan(accuracy)]
    aggregates["n_final_accuracy_reported"] = float(valid_accuracy.size)
    if valid_accuracy.size:
        aggregates.update({
            "final_accuracy_mean": float(np.mean(valid_accuracy)),
            "final_accuracy_p10": float(np.percentile(valid_accuracy, 10)),
            "final_accuracy_p50": float(np.percentile(valid_accuracy, 50)),
        })
    else:
        aggregates.update({
            "final_accuracy_mean": float("nan"),
            "final_accuracy_p10": float("nan"),
            "final_accuracy_p50": float("nan"),
        })
    return aggregates


def run_fleet(
    scale: ExperimentScale,
    seed: SeedLike = 0,
    n_devices: Optional[int] = None,
    scenarios: Optional[Sequence[str]] = None,
    n_shards: Optional[int] = None,
) -> FleetStudy:
    """Train once, roll the online-IL policy out to a lockstep device fleet.

    ``scenarios`` restricts the per-device scenario rotation (devices cycle
    through an unperturbed baseline plus the selected scenarios; default:
    every registered scenario).

    ``n_shards`` routes the rollout through the
    :class:`~repro.fleet.sharding.ShardedFleetEngine` worker pool instead
    of the in-process engine.  Every per-device report value is bitwise
    identical either way (and invariant to the shard count); only the
    batching-fraction metadata may differ, because batch-group membership
    is evaluated per shard.
    """
    scale = get_scale(scale)
    n = int(n_devices) if n_devices is not None else DEFAULT_FLEET_DEVICES
    if n < 1:
        raise ValueError(f"fleet needs at least one device, got {n}")
    framework = build_trained_framework(scale, seed=seed)
    simulator = framework.simulator
    space = framework.space
    rotation: List[Optional[str]] = [None]
    rotation.extend(scenarios if scenarios is not None else available_scenarios())

    devices: List[DeviceSpec] = []
    scenario_of: Dict[str, str] = {}
    for i in range(n):
        trace_seed = derive_seed(seed, (_FLEET_STREAM, 0, i))
        sequence = build_online_sequence(
            specs=unseen_workloads(),
            snippet_factor=scale.sequence_snippet_factor,
            seed=trace_seed,
        )
        policy = framework.build_online_il_policy(
            buffer_capacity=scale.buffer_capacity,
            update_epochs=scale.update_epochs,
            isolated=True,
        )
        noise_rng = make_rng(derive_seed(seed, (_FLEET_STREAM, 1, i)))
        name = f"device-{i:02d}"
        scenario_name = rotation[i % len(rotation)]
        if scenario_name is None:
            scenario_of[name] = ""
            oracle = framework.build_oracle_for(sequence.snippets)
            devices.append(DeviceSpec(
                name=name, policy=policy, snippets=sequence.snippets,
                rng=noise_rng, oracle_table=oracle,
            ))
        else:
            scenario_of[name] = scenario_name
            trace = get_scenario(scenario_name).apply(
                sequence.snippets, derive_seed(seed, (_FLEET_STREAM, 2, i))
            )
            oracle = build_scenario_oracle(
                simulator, space, trace, framework.objective,
                cache=framework.oracle_cache,
            )
            devices.append(DeviceSpec(
                name=name, policy=policy, scenario=trace,
                rng=noise_rng, oracle_table=oracle,
            ))

    reports: List[FleetDeviceReport] = []
    if n_shards is not None:
        engine = ShardedFleetEngine(devices, simulator, space,
                                    n_shards=n_shards, collect="summaries")
        for summary in engine.run():
            reports.append(FleetDeviceReport(
                name=summary.name,
                policy=summary.policy_name,
                scenario=scenario_of[summary.name],
                steps=summary.steps,
                throttled_steps=summary.throttled_steps,
                total_energy_j=summary.total_energy_j,
                total_time_s=summary.total_time_s,
                normalized_energy=summary.normalized_energy,
                final_accuracy=summary.final_accuracy,
            ))
    else:
        engine = build_fleet(devices, simulator, space)
        runs = engine.run()
        for device, run in zip(devices, runs):
            throttled = run.log.column("throttled", default=0.0)
            reports.append(FleetDeviceReport(
                name=device.name,
                policy=run.policy_name,
                scenario=scenario_of[device.name],
                steps=len(run.log),
                throttled_steps=int(np.nansum(throttled)),
                total_energy_j=run.total_energy_j,
                total_time_s=run.total_time_s,
                normalized_energy=run.normalized_energy,
                final_accuracy=run.final_accuracy(),
            ))
    total_steps = engine.steps_executed
    return FleetStudy(
        scale_name=scale.name,
        n_devices=n,
        total_steps=total_steps,
        batched_execution_fraction=(
            engine.batched_executions / total_steps if total_steps else 0.0
        ),
        batched_decision_fraction=(
            engine.batched_decisions / total_steps if total_steps else 0.0
        ),
        batched_observe_fraction=(
            engine.batched_observes / total_steps if total_steps else 0.0
        ),
        devices=reports,
        aggregates=_fleet_aggregates(reports),
    )


def format_fleet(study: FleetStudy) -> str:
    """Human-readable fleet report (CLI output)."""
    lines = [
        f"fleet of {study.n_devices} devices — {study.total_steps} lockstep "
        f"steps ({study.batched_execution_fraction:.0%} batched executions)",
    ]
    for report in study.devices:
        scenario = report.scenario or "baseline"
        lines.append(
            f"  {report.name}  {scenario:20s} steps={report.steps:4d} "
            f"throttled={report.throttled_steps:3d} "
            f"energy/oracle={report.normalized_energy:6.3f} "
            f"accuracy={report.final_accuracy:5.1f}%"
        )
    agg = study.aggregates
    lines.append(
        "  aggregate: energy/oracle p50={p50:.3f} p90={p90:.3f} "
        "p99={p99:.3f}; accuracy p10={a10:.1f}% p50={a50:.1f}%".format(
            p50=agg["normalized_energy_p50"],
            p90=agg["normalized_energy_p90"],
            p99=agg["normalized_energy_p99"],
            a10=agg["final_accuracy_p10"],
            a50=agg["final_accuracy_p50"],
        )
    )
    return "\n".join(lines)
