"""Experiment scale presets and their registry.

``ExperimentScale`` controls how long the synthetic traces are and how much
offline training is performed, so the same experiment code serves everything
from fast unit tests (``TINY``) to the full reproduction (``FULL``).  The
four presets used across the repo — ``TINY`` (unit/integration tests),
``QUICK`` (smoke runs and examples), ``BENCH`` (the benchmark harness) and
``FULL`` (the complete reproduction) — live here in a single registry so that
tests, benchmarks and the :mod:`repro.experiments.runner` CLI all resolve the
same objects by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling experiment runtime vs fidelity."""

    name: str
    train_snippet_factor: float = 0.5
    eval_snippet_factor: float = 0.5
    sequence_snippet_factor: float = 2.0
    offline_epochs: int = 120
    buffer_capacity: int = 25
    update_epochs: int = 80
    rl_offline_episodes: int = 2
    gpu_frames: int = 300
    nmpc_surface_samples: int = 250

    def __post_init__(self) -> None:
        for attr in ("train_snippet_factor", "eval_snippet_factor",
                     "sequence_snippet_factor"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")


#: Extra-small preset for fast integration tests (seconds end to end).
TINY = ExperimentScale(
    name="tiny",
    train_snippet_factor=0.15,
    eval_snippet_factor=0.15,
    sequence_snippet_factor=0.6,
    offline_epochs=40,
    buffer_capacity=10,
    update_epochs=40,
    rl_offline_episodes=1,
    gpu_frames=80,
    nmpc_surface_samples=80,
)

#: Fast preset used by unit tests and smoke runs (tens of seconds end to end).
QUICK = ExperimentScale(
    name="quick",
    train_snippet_factor=0.25,
    eval_snippet_factor=0.25,
    sequence_snippet_factor=1.0,
    offline_epochs=60,
    buffer_capacity=15,
    update_epochs=60,
    rl_offline_episodes=1,
    gpu_frames=150,
    nmpc_surface_samples=150,
)

#: Scale used by the benchmark harness: larger than the unit-test scale but
#: still minutes (not hours) end to end.
BENCH = ExperimentScale(
    name="bench",
    train_snippet_factor=0.5,
    eval_snippet_factor=0.5,
    sequence_snippet_factor=2.0,
    offline_epochs=120,
    buffer_capacity=25,
    update_epochs=80,
    rl_offline_episodes=2,
    gpu_frames=400,
    nmpc_surface_samples=300,
)

#: Full preset used by the complete reproduction (minutes end to end).
FULL = ExperimentScale(
    name="full",
    train_snippet_factor=1.0,
    eval_snippet_factor=1.0,
    sequence_snippet_factor=4.0,
    offline_epochs=150,
    buffer_capacity=50,
    update_epochs=80,
    rl_offline_episodes=3,
    gpu_frames=600,
    nmpc_surface_samples=400,
)


_SCALE_REGISTRY: Dict[str, ExperimentScale] = {
    scale.name: scale for scale in (TINY, QUICK, BENCH, FULL)
}

ScaleLike = Union[str, ExperimentScale]


def register_scale(scale: ExperimentScale, overwrite: bool = False) -> ExperimentScale:
    """Add a custom scale preset to the registry (resolvable by name)."""
    if scale.name in _SCALE_REGISTRY and not overwrite:
        raise ValueError(f"scale {scale.name!r} is already registered")
    _SCALE_REGISTRY[scale.name] = scale
    return scale


def get_scale(scale: ScaleLike) -> ExperimentScale:
    """Resolve a scale by name (or pass an :class:`ExperimentScale` through)."""
    if isinstance(scale, ExperimentScale):
        return scale
    key = str(scale).lower()
    if key not in _SCALE_REGISTRY:
        raise KeyError(
            f"unknown scale {scale!r}; available: {available_scales()}"
        )
    return _SCALE_REGISTRY[key]


def available_scales() -> List[str]:
    """Names of all registered scale presets."""
    return sorted(_SCALE_REGISTRY)
