"""Config-driven experiment runner and scenario registry.

Every figure/table driver in :mod:`repro.experiments` (plus the ablations)
is registered here as an :class:`ExperimentSpec` — a name, a description, a
``(scale, seed, context)`` runner callable and a formatter.  The
:class:`ExperimentRunner` executes any registered experiment at any
registered scale with multi-seed fan-out — sequentially in-process or across
a pool of worker processes (``jobs``/``--jobs``) — replacing the copy-pasted
orchestration that previously lived in each ``figure*.py``/``table*.py``
call site, and backs the ``python -m repro.experiments`` CLI.  Per-seed RNGs
are spawned from each seed independently, so the fan-out results are
identical whatever the job count.

Figure 3 and Figure 4 share the expensive online-adaptation study; the
runner computes it once per ``(scale, seed)`` and hands it to both drivers
through the shared context, exactly like the test and benchmark fixtures do.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from concurrent.futures import InvalidStateError, ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.oracle import cache_stats_snapshot
from repro.core.oracle_store import (
    OracleStore,
    get_default_oracle_store,
    set_default_oracle_store,
)
from repro.experiments.common import (
    OnlineAdaptationStudy,
    run_online_adaptation_study,
)
from repro.experiments.scales import (
    ExperimentScale,
    ScaleLike,
    available_scales,
    get_scale,
)
from repro.utils.rng import SeedLike

#: Signature of a registered experiment driver.
ExperimentRunnerFn = Callable[[ExperimentScale, SeedLike, "ExperimentContext"], Any]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: how to run it and how to render it.

    ``uses_design_oracle`` marks experiments whose drivers train a framework
    on the design-time workload suite (and therefore run the exhaustive
    training-snippet Oracle sweep); when an on-disk Oracle store is active,
    the runner precomputes that sweep once in the parent before fanning the
    seeds out to worker processes.  ``design_oracle_gating`` lists the
    ``allow_core_gating`` framework variants the driver actually trains
    (the config-space ablation sweeps both the plain and the core-gated
    space), so the parent warm covers every space the workers will sweep.
    """

    name: str
    description: str
    runner: ExperimentRunnerFn
    formatter: Optional[Callable[[Any], str]] = None
    tags: Tuple[str, ...] = ()
    uses_design_oracle: bool = False
    design_oracle_gating: Tuple[bool, ...] = (False,)

    def format_result(self, result: Any) -> str:
        if self.formatter is not None:
            return self.formatter(result)
        if isinstance(result, (list, tuple)):
            return "\n".join(repr(row) for row in result)
        return repr(result)


_EXPERIMENT_REGISTRY: Dict[str, ExperimentSpec] = {}


def register_experiment(
    name: str,
    description: str,
    runner: ExperimentRunnerFn,
    formatter: Optional[Callable[[Any], str]] = None,
    tags: Sequence[str] = (),
    overwrite: bool = False,
    uses_design_oracle: bool = False,
    design_oracle_gating: Sequence[bool] = (False,),
) -> ExperimentSpec:
    """Add an experiment to the registry (resolvable by name)."""
    if name in _EXPERIMENT_REGISTRY and not overwrite:
        raise ValueError(f"experiment {name!r} is already registered")
    spec = ExperimentSpec(
        name=name,
        description=description,
        runner=runner,
        formatter=formatter,
        tags=tuple(tags),
        uses_design_oracle=bool(uses_design_oracle),
        design_oracle_gating=tuple(design_oracle_gating),
    )
    _EXPERIMENT_REGISTRY[name] = spec
    return spec


def get_experiment(name: str) -> ExperimentSpec:
    """Resolve an experiment by name."""
    if name not in _EXPERIMENT_REGISTRY:
        raise KeyError(
            f"unknown experiment {name!r}; available: {available_experiments()}"
        )
    return _EXPERIMENT_REGISTRY[name]


def available_experiments(tag: Optional[str] = None) -> List[str]:
    """Names of registered experiments, optionally filtered by tag."""
    names = [
        name for name, spec in _EXPERIMENT_REGISTRY.items()
        if tag is None or tag in spec.tags
    ]
    return sorted(names)


class ExperimentContext:
    """Shared state handed to every experiment runner.

    Memoises the online-adaptation study per ``(scale, seed)`` so that
    Figure 3 and Figure 4 — which consume the same study — train the
    policies once instead of twice per run.
    """

    def __init__(self, scenario_filter: Optional[Sequence[str]] = None,
                 fleet_devices: Optional[int] = None,
                 fleet_shards: Optional[int] = None) -> None:
        self._studies: Dict[Tuple[ExperimentScale, Any], OnlineAdaptationStudy] = {}
        #: Names of the scenarios scenario-driven experiments (robustness)
        #: should sweep; ``None`` means every registered scenario.
        self.scenario_filter: Optional[Tuple[str, ...]] = (
            tuple(scenario_filter) if scenario_filter is not None else None
        )
        #: Device count for the fleet experiment (``--devices``); ``None``
        #: means the experiment's default.
        self.fleet_devices: Optional[int] = (
            int(fleet_devices) if fleet_devices is not None else None
        )
        #: Worker-pool shard count for fleet-style experiments
        #: (``--shards``); ``None`` runs them single-process.
        self.fleet_shards: Optional[int] = (
            int(fleet_shards) if fleet_shards is not None else None
        )

    def adaptation_study(self, scale: ExperimentScale,
                         seed: SeedLike) -> OnlineAdaptationStudy:
        # Key on the (frozen, hashable) scale object itself — a custom scale
        # that happens to share a preset's name must not reuse its study.
        # Non-int seeds (None / Generator) key by object identity; using the
        # object itself (not its id()) keeps it alive, so a recycled address
        # can never alias two generators to the same entry.
        key = (scale, seed)
        if key not in self._studies:
            self._studies[key] = run_online_adaptation_study(
                scale, seed=seed, include_offline_apps=True
            )
        return self._studies[key]


@dataclass
class SeedRun:
    """Result of one experiment at one seed.

    ``metadata`` carries execution-side observability that is not part of
    the experiment result proper — the OracleCache hit/miss deltas (memory
    tier and on-disk store tier) accumulated while the seed ran, plus any
    counters the result surfaces via ``seed_run_metadata()`` (the fleet
    study reports its batched decide/execute/observe hit rates this way).
    """

    seed: SeedLike
    result: Any
    elapsed_s: float
    metadata: Dict[str, Any] = field(default_factory=dict)


def _cache_stats_delta(before: Dict[str, int]) -> Dict[str, int]:
    """OracleCache activity since ``before`` (a prior snapshot)."""
    after = cache_stats_snapshot()
    return {f"oracle_cache_{key}": after[key] - before.get(key, 0)
            for key in after}


def _seed_run_metadata(result: Any,
                       stats_before: Dict[str, int]) -> Dict[str, Any]:
    """Execution-side metadata for one seed run.

    The OracleCache activity delta, merged with any experiment-specific
    counters the result object surfaces through a ``seed_run_metadata()``
    method — e.g. the fleet study's batched decide/execute/observe hit
    rates.
    """
    metadata: Dict[str, Any] = dict(_cache_stats_delta(stats_before))
    extra = getattr(result, "seed_run_metadata", None)
    if callable(extra):
        metadata.update(extra())
    return metadata


#: Per-worker-process experiment context (lazily created).  Workers are
#: reused across tasks, so a worker that already ran figure3 at some
#: ``(scale, seed)`` serves figure4 the memoised study like the sequential
#: path does — best-effort, since task→worker placement is up to the pool.
_WORKER_CONTEXT: Optional[ExperimentContext] = None


def _install_worker_store(store_path: Optional[str]) -> None:
    """Adopt the parent's on-disk Oracle store inside a worker process."""
    if store_path is None:
        return
    current = get_default_oracle_store()
    if current is None or str(current.root) != store_path:
        set_default_oracle_store(store_path)


def _warm_design_oracle_seed(scale: ExperimentScale, seed: SeedLike,
                             gating_variants: Sequence[bool],
                             store: OracleStore) -> None:
    """One seed's design-time Oracle sweep, written through to ``store``.

    Regenerates the training-workload snippet traces exactly as
    ``train_offline`` would and sweeps them once per requested
    ``allow_core_gating`` variant; sweeps a previous run already persisted
    resolve as store hits.
    """
    from repro.core.framework import OnlineLearningFramework
    from repro.workloads.suites import training_workloads

    for gating in gating_variants:
        framework = OnlineLearningFramework(
            seed=seed, allow_core_gating=bool(gating), oracle_store=store
        )
        snippets = []
        for workload in training_workloads():
            scaled = workload.scaled(scale.train_snippet_factor)
            snippets.extend(framework.generate_trace(scaled))
        framework.build_oracle_for(snippets)


def _pooled_warm_task(
    task: Tuple[ExperimentScale, SeedLike, Tuple[bool, ...], str]
) -> SeedLike:
    """Warm one seed's design-time Oracle inside a worker process.

    Dispatching the warm over the pool keeps the "compute once before the
    experiment fan-out" semantics without serialising the disjoint
    per-seed sweeps in the parent (snippet traces are seed-dependent, so
    on a cold store a sequential parent warm would cost ``jobs`` times the
    wall-clock of letting the workers sweep concurrently).
    """
    scale, seed, gating_variants, store_path = task
    _install_worker_store(store_path)
    store = get_default_oracle_store()
    assert store is not None
    _warm_design_oracle_seed(scale, seed, gating_variants, store)
    return seed


def _pooled_seed_run(
    task: Tuple[str, ExperimentScale, SeedLike, Optional[Tuple[str, ...]],
                Optional[str], Optional[int]]
) -> SeedRun:
    """Execute one ``(experiment, scale, seed, scenario_filter,
    oracle_store_path, fleet_devices)`` task in a worker process.

    The experiment is re-resolved from the registry inside the worker (specs
    hold arbitrary callables and are not sent over the wire), so only
    built-in experiments — or ones registered at import time of
    :mod:`repro.experiments.runner` — are reachable from worker processes.
    Every seed derives its own independent generators via
    :func:`repro.utils.rng.spawn_rngs` inside the drivers, so results are a
    pure function of ``(scale, seed, scenario_filter)`` and therefore
    independent of how many workers execute the fan-out or how tasks land
    on them.  When the parent runs with an on-disk Oracle store, its path
    rides along in the task so every worker layers its caches over the same
    store (entries are content-addressed and deterministic, so sharing
    cannot change any result).
    """
    global _WORKER_CONTEXT
    (name, scale, seed, scenario_filter, store_path, fleet_devices,
     fleet_shards) = task
    _install_worker_store(store_path)
    if _WORKER_CONTEXT is None:
        _WORKER_CONTEXT = ExperimentContext()
    _WORKER_CONTEXT.scenario_filter = scenario_filter
    _WORKER_CONTEXT.fleet_devices = fleet_devices
    _WORKER_CONTEXT.fleet_shards = fleet_shards
    spec = get_experiment(name)
    stats_before = cache_stats_snapshot()
    start = time.perf_counter()
    result = spec.runner(scale, seed, _WORKER_CONTEXT)
    return SeedRun(seed=seed, result=result,
                   elapsed_s=time.perf_counter() - start,
                   metadata=_seed_run_metadata(result, stats_before))


@dataclass
class ExperimentRun:
    """Fan-out result of one experiment across one or more seeds."""

    spec: ExperimentSpec
    scale: ExperimentScale
    seed_runs: List[SeedRun] = field(default_factory=list)

    @property
    def results(self) -> List[Any]:
        return [run.result for run in self.seed_runs]

    @property
    def seeds(self) -> List[SeedLike]:
        return [run.seed for run in self.seed_runs]

    @property
    def total_elapsed_s(self) -> float:
        return sum(run.elapsed_s for run in self.seed_runs)

    def format(self) -> str:
        """Human-readable report: one formatted block per seed."""
        blocks = [
            f"=== {self.spec.name} [scale={self.scale.name}] — "
            f"{self.spec.description} ==="
        ]
        for run in self.seed_runs:
            header = f"--- seed={run.seed} ({run.elapsed_s:.1f}s)"
            hits = run.metadata.get("oracle_cache_hits")
            misses = run.metadata.get("oracle_cache_misses")
            if hits or misses:
                header += f" [oracle cache: {hits} hits / {misses} misses"
                store_hits = run.metadata.get("oracle_cache_store_hits", 0)
                store_misses = run.metadata.get("oracle_cache_store_misses", 0)
                if store_hits or store_misses:
                    header += f"; store: {store_hits}/{store_misses}"
                header += "]"
            blocks.append(header + " ---")
            blocks.append(self.spec.format_result(run.result))
        return "\n".join(blocks)


class ExperimentRunner:
    """Executes registered experiments at a given scale with seed fan-out.

    ``jobs`` controls the fan-out execution model: ``1`` (default) runs the
    seeds sequentially in-process; ``N > 1`` dispatches them to a pool of
    ``N`` worker processes.  Results are identical either way — each seed's
    run is a deterministic function of ``(scale, seed)`` alone (per-seed
    RNGs are spawned from the seed, never shared), so neither the job count
    nor the task scheduling can change any result.  Parallel runs therefore
    accept only stateless int/None seeds; a shared ``Generator`` seed (whose
    state threads through consecutive runs in-process) must use ``jobs=1``.

    The pool is created lazily on the first parallel :meth:`run` and reused
    by later calls, so per-worker memoisation carries across experiments;
    call :meth:`close` (or use the runner as a context manager) to release
    the worker processes.
    """

    def __init__(self, scale: ScaleLike = "quick",
                 seeds: Sequence[SeedLike] = (0,), jobs: int = 1,
                 scenario_filter: Optional[Sequence[str]] = None,
                 oracle_store: Optional[Union[OracleStore, str, Path]] = None,
                 fleet_devices: Optional[int] = None,
                 fleet_shards: Optional[int] = None,
                 ) -> None:
        self.scale = get_scale(scale)
        self.seeds: List[SeedLike] = list(seeds)
        if not self.seeds:
            raise ValueError("ExperimentRunner needs at least one seed")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.context = ExperimentContext(scenario_filter=scenario_filter,
                                         fleet_devices=fleet_devices,
                                         fleet_shards=fleet_shards)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_workers = 0
        # Installing the store as the process default makes every framework
        # the drivers construct (in this process) layer its OracleCache over
        # it; worker processes receive the path with each task.
        self.oracle_store: Optional[OracleStore] = (
            set_default_oracle_store(oracle_store)
            if oracle_store is not None else None
        )
        self._warmed_design_oracles: set = set()

    def _ensure_executor(self, workers: int) -> ProcessPoolExecutor:
        """Return the runner's worker pool, (re)created lazily.

        The pool persists across :meth:`run` calls so worker processes — and
        with them the per-worker study memoisation — survive from one
        experiment to the next (e.g. figure3 then figure4).  It only grows:
        a request for more workers replaces the pool, a smaller one reuses
        it.
        """
        if self._executor is not None and self._executor_workers < workers:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=workers)
            self._executor_workers = workers
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool and release the default Oracle store.

        The store was installed process-wide so the drivers' frameworks
        adopt it; clearing it here keeps one runner's store from silently
        leaking into store-less runners created later in the process.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._executor_workers = 0
        if (self.oracle_store is not None
                and get_default_oracle_store() is self.oracle_store):
            set_default_oracle_store(None)

    def abort(self) -> None:
        """Tear the worker pool down without waiting for in-flight tasks.

        The graceful-interrupt path (``SIGINT`` on the CLI): queued tasks
        are cancelled, live worker processes are terminated, and the
        Oracle store is released exactly like :meth:`close`.  In-flight
        results are abandoned — callers report partial completion.
        """
        if self._executor is not None:
            executor, self._executor = self._executor, None
            self._executor_workers = 0
            # Killing the workers breaks the pool; the executor's manager
            # thread then fails every pending future — including ones the
            # interrupted ``pool.map`` already cancelled, which on Python
            # 3.11 raises an unguarded InvalidStateError inside that
            # thread (guarded upstream from 3.12).  Filter that benign
            # traceback out of the drain; anything else still reaches the
            # default hook.
            default_hook = threading.excepthook

            def _quiet_invalid_state(hook_args):
                if issubclass(hook_args.exc_type, InvalidStateError):
                    return
                default_hook(hook_args)

            threading.excepthook = _quiet_invalid_state
            processes = list((getattr(executor, "_processes", None)
                              or {}).values())
            executor.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                try:
                    process.terminate()
                except (OSError, AttributeError):  # pragma: no cover
                    pass
        if (self.oracle_store is not None
                and get_default_oracle_store() is self.oracle_store):
            set_default_oracle_store(None)

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def warm_design_oracle(self, scale: ExperimentScale,
                           seeds: Sequence[SeedLike],
                           gating_variants: Sequence[bool] = (False,)) -> int:
        """Precompute the design-time Oracle sweep into the on-disk store.

        Regenerates the training-workload snippet traces exactly as
        ``train_offline`` would for each seed and sweeps them once per
        requested ``allow_core_gating`` variant, writing the entries
        through to the store.  Worker processes (and later invocations)
        then hit the store instead of redundantly re-running the same
        exhaustive sweep in every process.  A no-op without a store;
        idempotent per ``(scale, seed, gating)``.  Returns the number of
        (seed, variant) sweeps performed.
        """
        if self.oracle_store is None:
            return 0
        warmed = 0
        for seed in seeds:
            pending = tuple(
                gating for gating in gating_variants
                if (scale, seed, bool(gating)) not in self._warmed_design_oracles
            )
            if not pending:
                continue
            _warm_design_oracle_seed(scale, seed, pending, self.oracle_store)
            for gating in pending:
                self._warmed_design_oracles.add((scale, seed, bool(gating)))
            warmed += 1
        return warmed

    def _warm_design_oracle_pooled(self, scale: ExperimentScale,
                                   seeds: Sequence[SeedLike],
                                   gating_variants: Sequence[bool],
                                   workers: int) -> None:
        """Warm the per-seed design sweeps concurrently across the pool.

        The sweeps of distinct seeds are disjoint (snippet traces are
        seed-dependent), so on a cold store the parallel warm costs one
        sweep of wall-clock instead of ``len(seeds)``; on a warm store
        every task resolves as store hits.
        """
        assert self.oracle_store is not None
        tasks = []
        for seed in seeds:
            pending = tuple(
                gating for gating in gating_variants
                if (scale, seed, bool(gating)) not in self._warmed_design_oracles
            )
            if pending:
                tasks.append((scale, seed, pending,
                              str(self.oracle_store.root)))
        if not tasks:
            return
        pool = self._ensure_executor(workers)
        for (task_scale, seed, pending, _), _ in zip(
                tasks, pool.map(_pooled_warm_task, tasks)):
            for gating in pending:
                self._warmed_design_oracles.add((task_scale, seed, bool(gating)))

    def run(self, name: str, scale: Optional[ScaleLike] = None,
            seeds: Optional[Sequence[SeedLike]] = None,
            jobs: Optional[int] = None) -> ExperimentRun:
        """Run one registered experiment across the seed fan-out."""
        spec = get_experiment(name)
        run_scale = get_scale(scale) if scale is not None else self.scale
        run_seeds = list(seeds) if seeds is not None else self.seeds
        if not run_seeds:
            raise ValueError("run() needs at least one seed")
        run_jobs = self.jobs if jobs is None else int(jobs)
        if run_jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {run_jobs}")
        out = ExperimentRun(spec=spec, scale=run_scale)
        run_jobs = min(run_jobs, len(run_seeds))
        if run_jobs > 1:
            # A shared Generator object would thread state from one seed's
            # run into the next in-process, which worker processes (each
            # getting a pickled snapshot) cannot reproduce — so the
            # "identical for any job count" invariant is only promised, and
            # only accepted, for stateless int/None seeds.
            if any(not (seed is None or isinstance(seed, int))
                   for seed in run_seeds):
                raise ValueError(
                    "parallel fan-out (jobs > 1) requires int or None seeds; "
                    "stateful Generator seeds must run sequentially (jobs=1)"
                )
        if self.oracle_store is not None:
            # close() clears the process default; a reused runner
            # re-installs its store for the drivers it is about to run.
            set_default_oracle_store(self.oracle_store)
            if spec.uses_design_oracle and run_jobs > 1:
                # Compute-once artifact: the expensive training-snippet
                # sweep is persisted before the experiment fan-out so no
                # worker repeats another's work, concurrently across the
                # pool (per-seed sweeps are disjoint).  Sequential runs
                # need no warm: the driver's own cache writes the sweep
                # through to the store as it computes it.
                self._warm_design_oracle_pooled(
                    run_scale, run_seeds, spec.design_oracle_gating,
                    run_jobs)
        if run_jobs > 1:
            store_path = (str(self.oracle_store.root)
                          if self.oracle_store is not None else None)
            tasks = [(spec.name, run_scale, seed,
                      self.context.scenario_filter, store_path,
                      self.context.fleet_devices,
                      self.context.fleet_shards)
                     for seed in run_seeds]
            pool = self._ensure_executor(run_jobs)
            out.seed_runs = list(pool.map(_pooled_seed_run, tasks))
            return out
        for seed in run_seeds:
            stats_before = cache_stats_snapshot()
            start = time.perf_counter()
            result = spec.runner(run_scale, seed, self.context)
            out.seed_runs.append(
                SeedRun(seed=seed, result=result,
                        elapsed_s=time.perf_counter() - start,
                        metadata=_seed_run_metadata(result, stats_before))
            )
        return out

    def run_many(self, names: Optional[Sequence[str]] = None,
                 tag: Optional[str] = None) -> Dict[str, ExperimentRun]:
        """Run several experiments (default: every registered one)."""
        targets = list(names) if names is not None else available_experiments(tag)
        return {name: self.run(name) for name in targets}


# --------------------------------------------------------------------- #
# Built-in registrations: the paper's figures/tables plus the ablations.
# --------------------------------------------------------------------- #
def _seed_int(seed: SeedLike) -> int:
    return seed if isinstance(seed, int) else 0


def _register_builtins() -> None:
    from repro.experiments.ablations import (
        run_buffer_size_ablation,
        run_config_space_ablation,
        run_explicit_nmpc_ablation,
        run_forgetting_factor_ablation,
        run_noc_model_comparison,
    )
    from repro.experiments.fault_tolerance import (
        format_fault_tolerance,
        run_fault_tolerance,
    )
    from repro.experiments.figure2 import format_figure2, run_figure2
    from repro.experiments.fleet import format_fleet, run_fleet
    from repro.experiments.figure3 import format_figure3, run_figure3
    from repro.experiments.figure4 import format_figure4, run_figure4
    from repro.experiments.figure5 import format_figure5, run_figure5
    from repro.experiments.robustness import format_robustness, run_robustness
    from repro.experiments.table1 import format_table1, run_table1
    from repro.experiments.table2 import format_table2, run_table2

    register_experiment(
        "table1", "Table I — per-snippet performance-counter schema",
        lambda scale, seed, ctx: run_table1(seed=_seed_int(seed)),
        formatter=format_table1, tags=("paper", "table"),
    )
    register_experiment(
        "table2", "Table II — offline IL generalisation across suites",
        lambda scale, seed, ctx: run_table2(scale, seed=seed),
        formatter=format_table2, tags=("paper", "table"),
        uses_design_oracle=True,
    )
    register_experiment(
        "figure2", "Figure 2 — online RLS frame-time prediction (Nenamark2)",
        lambda scale, seed, ctx: run_figure2(scale, seed=seed),
        formatter=format_figure2, tags=("paper", "figure"),
    )
    register_experiment(
        "figure3", "Figure 3 — online-IL vs RL convergence to the Oracle",
        lambda scale, seed, ctx: run_figure3(
            scale, seed=seed, study=ctx.adaptation_study(scale, seed)
        ),
        formatter=format_figure3, tags=("paper", "figure"),
        uses_design_oracle=True,
    )
    register_experiment(
        "figure4", "Figure 4 — per-application energy normalised to Oracle",
        lambda scale, seed, ctx: run_figure4(
            scale, seed=seed, study=ctx.adaptation_study(scale, seed)
        ),
        formatter=format_figure4, tags=("paper", "figure"),
        uses_design_oracle=True,
    )
    register_experiment(
        "figure5", "Figure 5 — explicit-NMPC GPU energy savings vs baseline",
        lambda scale, seed, ctx: run_figure5(scale, seed=seed),
        formatter=format_figure5, tags=("paper", "figure"),
    )
    register_experiment(
        "robustness",
        "Scenario stress sweep — online-IL vs offline-IL vs governors",
        lambda scale, seed, ctx: run_robustness(
            scale, seed=seed,
            scenarios=getattr(ctx, "scenario_filter", None),
        ),
        formatter=format_robustness, tags=("robustness", "scenario"),
        uses_design_oracle=True,
    )
    register_experiment(
        "fleet",
        "Lockstep multi-device fleet rollout of the online-IL policy",
        lambda scale, seed, ctx: run_fleet(
            scale, seed=seed,
            n_devices=getattr(ctx, "fleet_devices", None),
            scenarios=getattr(ctx, "scenario_filter", None),
            n_shards=getattr(ctx, "fleet_shards", None),
        ),
        formatter=format_fleet, tags=("fleet", "scenario"),
        uses_design_oracle=True,
    )
    register_experiment(
        "fault-tolerance",
        "Supervised fleet under injected faults — survival and recovery",
        lambda scale, seed, ctx: run_fault_tolerance(
            scale, seed=seed,
            n_devices=getattr(ctx, "fleet_devices", None),
            n_shards=getattr(ctx, "fleet_shards", None),
        ),
        formatter=format_fault_tolerance, tags=("robustness", "fault", "fleet"),
        uses_design_oracle=True,
    )
    register_experiment(
        "ablation-buffer", "Online-IL adaptation vs aggregation-buffer size",
        lambda scale, seed, ctx: run_buffer_size_ablation(scale=scale, seed=seed),
        tags=("ablation",), uses_design_oracle=True,
    )
    register_experiment(
        "ablation-forgetting", "Frame-time model error vs RLS forgetting factor",
        lambda scale, seed, ctx: run_forgetting_factor_ablation(scale=scale,
                                                               seed=seed),
        tags=("ablation",),
    )
    register_experiment(
        "ablation-enmpc", "Explicit-NMPC surface fidelity vs approximator",
        lambda scale, seed, ctx: run_explicit_nmpc_ablation(scale=scale, seed=seed),
        tags=("ablation",),
    )
    register_experiment(
        "ablation-config-space", "Offline-IL generalisation vs space richness",
        lambda scale, seed, ctx: run_config_space_ablation(scale=scale, seed=seed),
        tags=("ablation",), uses_design_oracle=True,
        # The driver trains both the plain and the core-gated space.
        design_oracle_gating=(False, True),
    )
    register_experiment(
        "ablation-noc", "Analytical vs SVR NoC latency model accuracy",
        lambda scale, seed, ctx: run_noc_model_comparison(seed=seed),
        tags=("ablation",),
    )


_register_builtins()


# --------------------------------------------------------------------- #
# CLI: python -m repro.experiments
# --------------------------------------------------------------------- #
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper's experiments through the unified runner.",
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help="experiment names (default: every paper figure/table); "
             "use --list to see what is available",
    )
    parser.add_argument(
        "--scale", default="quick", metavar="|".join(available_scales()),
        help="scale preset controlling trace length and training budget "
             "(default: quick)",
    )
    parser.add_argument(
        "--seeds", type=int, default=1, metavar="N",
        help="number of seeds to fan out over (seeds base..base+N-1, default 1)",
    )
    parser.add_argument(
        "--seed-base", type=int, default=0, metavar="S",
        help="first seed of the fan-out (default 0)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the seed fan-out (default 1 = sequential "
             "in-process); results are identical for any job count",
    )
    parser.add_argument(
        "--tag", default=None,
        help="when no experiment names are given, run all with this tag "
             "(e.g. 'paper', 'ablation')",
    )
    parser.add_argument(
        "--oracle-store", default=None, metavar="DIR", dest="oracle_store",
        help="directory of the persistent on-disk Oracle store; entries are "
             "content-addressed, shared with worker processes and reused by "
             "later invocations (created if missing)",
    )
    parser.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        dest="scenarios",
        help="restrict scenario-driven experiments (robustness, fleet) to "
             "this registered scenario; repeatable (default: all scenarios)",
    )
    parser.add_argument(
        "--devices", type=int, default=None, metavar="N", dest="devices",
        help="device count for the fleet experiment (default: the "
             "experiment's built-in fleet size)",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N", dest="shards",
        help="run fleet experiments through the sharded worker-pool engine "
             "with N process shards (default: single-process; per-device "
             "results are bitwise identical either way)",
    )
    parser.add_argument(
        "--serve", type=Path, default=None, metavar="DIR", dest="serve",
        help="instead of running experiments batch-style, start the "
             "crash-safe control-plane server for a journaled fleet run "
             "in DIR (built from --scale/--devices/--seed-base/--scenario; "
             "full control via `python -m repro.service serve`)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="with --serve: recover the run from DIR's journal instead "
             "of starting fresh",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="list registered experiments and scales, then exit",
    )
    parser.add_argument(
        "--json", action="store_true", dest="list_json",
        help="with --list: print the registry as JSON (name, tags, "
             "description per experiment, plus scales and scenarios)",
    )
    return parser


def _registry_payload() -> Dict[str, Any]:
    """Machine-readable registry snapshot (``--list --json``)."""
    from repro.scenarios import available_scenarios
    return {
        "experiments": [
            {
                "name": name,
                "description": get_experiment(name).description,
                "tags": list(get_experiment(name).tags),
            }
            for name in available_experiments()
        ],
        "scales": available_scales(),
        "scenarios": available_scenarios(),
    }


def _cmd_serve(args: argparse.Namespace) -> int:
    """``--serve DIR``: hand the run to the control-plane service.

    Builds a journaled :class:`~repro.service.run.ServiceRun` from the
    experiment-style flags (``--scale``, ``--devices``, ``--seed-base``,
    ``--scenario``) — or recovers one from ``DIR`` with ``--resume`` —
    and serves it over HTTP until completion or SIGTERM.  A ``kill -9``
    mid-run is recoverable: restart with ``--serve DIR --resume``.
    """
    import asyncio

    from repro.service.run import RunConfig, ServiceRun
    from repro.service.server import ServiceServer

    if args.resume:
        run = ServiceRun.recover(args.serve)
        print(f"resumed from {args.serve} at round {run.rounds}",
              file=sys.stderr)
    else:
        try:
            config = RunConfig(
                policy="ondemand", scale=args.scale,
                n_devices=args.devices if args.devices is not None else 4,
                seed=args.seed_base, scenarios=tuple(args.scenarios or ()),
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        run = ServiceRun.start(config=config, journal_dir=args.serve)
        print(f"started journaled run in {args.serve}", file=sys.stderr)
    server = ServiceServer(run, host="127.0.0.1", port=0)
    asyncio.run(server.serve())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.experiments``."""
    args = _build_parser().parse_args(argv)
    if args.list_json and not args.list_experiments:
        print("error: --json requires --list", file=sys.stderr)
        return 2
    if args.list_experiments:
        if args.list_json:
            import json
            print(json.dumps(_registry_payload(), indent=2, sort_keys=True))
            return 0
        from repro.scenarios import available_scenarios
        print("Registered experiments:")
        for name in available_experiments():
            spec = get_experiment(name)
            tags = f" [{', '.join(spec.tags)}]" if spec.tags else ""
            print(f"  {name:22s} {spec.description}{tags}")
        print(f"Scales: {', '.join(available_scales())}")
        print(f"Scenarios: {', '.join(available_scenarios())}")
        return 0
    if args.resume and args.serve is None:
        print("error: --resume requires --serve DIR", file=sys.stderr)
        return 2
    if args.serve is not None:
        if args.experiments:
            print("error: --serve starts a journaled fleet server; it does "
                  "not take experiment names (drive it with "
                  "`python -m repro.service dispatch`)", file=sys.stderr)
            return 2
        return _cmd_serve(args)
    if args.seeds < 1:
        print("error: --seeds must be >= 1", file=sys.stderr)
        return 2
    if args.seed_base < 0:
        print("error: --seed-base must be >= 0 (NumPy seeds are non-negative)",
              file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.devices is not None and args.devices < 1:
        print("error: --devices must be >= 1", file=sys.stderr)
        return 2
    if args.shards is not None and args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.scenarios:
        from repro.scenarios import available_scenarios
        unknown = sorted(set(args.scenarios) - set(available_scenarios()))
        if unknown:
            print(f"error: unknown scenarios {unknown}; "
                  f"available: {available_scenarios()}", file=sys.stderr)
            return 2
    seeds = list(range(args.seed_base, args.seed_base + args.seeds))
    try:
        runner = ExperimentRunner(scale=args.scale, seeds=seeds, jobs=args.jobs,
                                  scenario_filter=args.scenarios,
                                  oracle_store=args.oracle_store,
                                  fleet_devices=args.devices,
                                  fleet_shards=args.shards)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    names = args.experiments or available_experiments(args.tag or "paper")
    if not names:
        print(f"error: no experiments match tag {args.tag!r}; "
              f"available: {available_experiments()}", file=sys.stderr)
        return 2
    if args.scenarios:
        # --scenario only affects scenario-driven experiments; running e.g.
        # `figure2 --scenario phase_churn` would silently do nothing with
        # the flag, so reject the combination instead.
        consumers = [name for name in names
                     if name in _EXPERIMENT_REGISTRY
                     and "scenario" in get_experiment(name).tags]
        if not consumers:
            print("error: --scenario has no effect on "
                  f"{names}; scenario-driven experiments: "
                  f"{available_experiments(tag='scenario')}", file=sys.stderr)
            return 2
    for flag, value in (("--devices", args.devices), ("--shards", args.shards)):
        if value is not None:
            consumers = [name for name in names
                         if name in _EXPERIMENT_REGISTRY
                         and "fleet" in get_experiment(name).tags]
            if not consumers:
                print(f"error: {flag} has no effect on "
                      f"{names}; fleet experiments: "
                      f"{available_experiments(tag='fleet')}", file=sys.stderr)
                return 2
    exit_code = 0
    completed = 0
    try:
        for name in names:
            try:
                run = runner.run(name)
            except KeyError as exc:
                print(f"error: {exc}", file=sys.stderr)
                exit_code = 2
                continue
            completed += 1
            print(run.format())
            print()
    except KeyboardInterrupt:
        # Graceful SIGINT: drain the worker pool (terminate in-flight
        # workers, cancel queued tasks), say what finished, exit nonzero
        # with the conventional interrupted status.
        runner.abort()
        print(f"interrupted: completed {completed}/{len(names)} "
              "experiments; partial results above",
              file=sys.stderr)
        return 130
    finally:
        runner.close()
    return exit_code
