"""Figure 2 — online frame-time prediction for an integrated GPU.

The paper shows the measured and RLS-predicted frame processing time of the
Nenamark2 benchmark on a Minnowboard MAX while the operating frequency
changes, with less than 5 % error.  The reproduction renders a Nenamark2-like
frame trace on the GPU model under a periodic DVFS schedule, predicts every
frame's processing time *before* rendering it with the online
:class:`~repro.models.performance.FrameTimeModel`, and reports the tracking
error after a short warm-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.experiments.common import ExperimentScale, QUICK
from repro.gpu.gpu import GPUConfiguration, GPUSpec, default_integrated_gpu
from repro.gpu.simulator import GPUSimulator
from repro.ml.metrics import mean_absolute_percentage_error
from repro.models.performance import FrameTimeModel
from repro.utils.rng import SeedLike
from repro.utils.tables import format_mapping
from repro.workloads.graphics import get_graphics_workload


@dataclass
class Figure2Result:
    """Measured vs predicted frame times and summary error metrics."""

    measured_ms: List[float] = field(default_factory=list)
    predicted_ms: List[float] = field(default_factory=list)
    frequency_mhz: List[float] = field(default_factory=list)
    warmup_frames: int = 20

    def error_percent(self) -> float:
        """MAPE of the predictions after the warm-up period."""
        measured = np.array(self.measured_ms[self.warmup_frames:])
        predicted = np.array(self.predicted_ms[self.warmup_frames:])
        return mean_absolute_percentage_error(measured, predicted)

    def max_error_percent(self) -> float:
        measured = np.array(self.measured_ms[self.warmup_frames:])
        predicted = np.array(self.predicted_ms[self.warmup_frames:])
        return float(np.max(np.abs(measured - predicted) / measured) * 100.0)

    def n_frames(self) -> int:
        return len(self.measured_ms)


def run_figure2(
    scale: ExperimentScale = QUICK,
    seed: SeedLike = 0,
    gpu: GPUSpec = None,
    adaptive_forgetting: bool = False,
    dvfs_period_frames: int = 60,
) -> Figure2Result:
    """Predict Nenamark2 frame times online while DVFS changes the frequency."""
    if gpu is None:
        gpu = default_integrated_gpu()
    trace = get_graphics_workload("nenamark2", gpu=gpu, n_frames=scale.gpu_frames,
                                  seed=seed)
    simulator = GPUSimulator(gpu, noise_scale=0.01, seed=seed)
    model = FrameTimeModel(forgetting_factor=0.98, adaptive=adaptive_forgetting,
                           slice_scaling_alpha=gpu.slice_scaling_alpha)
    # Periodic DVFS schedule sweeping a few operating points, as in the paper's
    # frequency-step experiment.
    opp_schedule = [len(gpu.opps) - 1, len(gpu.opps) // 2, len(gpu.opps) - 2,
                    len(gpu.opps) // 3]
    # Error is reported after the online model has converged (first ~20 % of
    # the trace is warm-up), matching how the paper presents steady tracking.
    result = Figure2Result(warmup_frames=max(20, scale.gpu_frames // 5))
    prev_busy_cycles = trace.frames[0].work_cycles
    prev_memory_bytes = trace.frames[0].memory_bytes
    deadline = trace.deadline_s
    for i, frame in enumerate(trace.frames):
        opp_index = opp_schedule[(i // dvfs_period_frames) % len(opp_schedule)]
        config = GPUConfiguration(opp_index=opp_index, active_slices=gpu.n_slices)
        frequency_hz = gpu.opps[opp_index].frequency_hz
        predicted = model.predict_frame_time_s(
            prev_busy_cycles, prev_memory_bytes, frequency_hz, gpu.n_slices
        )
        rendered = simulator.render_frame(frame, config, deadline)
        measured = rendered.busy_time_s
        model.update(prev_busy_cycles, prev_memory_bytes, frequency_hz,
                     gpu.n_slices, measured)
        result.measured_ms.append(measured * 1e3)
        result.predicted_ms.append(predicted * 1e3)
        result.frequency_mhz.append(frequency_hz / 1e6)
        prev_busy_cycles = frame.work_cycles
        prev_memory_bytes = frame.memory_bytes
    return result


def format_figure2(result: Figure2Result) -> str:
    return format_mapping(
        {
            "frames": result.n_frames(),
            "mean absolute percentage error (%)": result.error_percent(),
            "max percentage error (%)": result.max_error_percent(),
            "paper error bound (%)": 5.0,
        },
        precision=2,
        title="Figure 2 — Nenamark2 frame-time prediction (online RLS)",
    )
