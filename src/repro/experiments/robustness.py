"""Robustness sweep: policies vs the registered stress scenarios.

The paper's figures evaluate adaptation on a *static* sequence of unseen
applications.  This driver replays that sequence through every registered
scenario transform (phase churn, bursty arrivals, concurrent interleaving,
thermal throttling, characteristic drift, composed stress) and compares

* **online-il** — the adaptive policy (isolated per scenario, so online
  updates never leak between scenarios),
* **offline-il** — the frozen design-time policy,
* **ondemand** / **powersave** — classic governor baselines,

against the scenario-aware Oracle.  All Oracle sweeps run through the
vectorized batch engine paths and share the framework's
:class:`~repro.core.oracle.OracleCache` (restriction-aware keys), so
scenarios that merely reorder the base trace are nearly free.

Per-scenario results report energy normalised to the Oracle and final
Oracle-decision accuracy — the adaptation-robustness analogue of the
paper's Table II / Figure 3 metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.control.policy import DRMPolicy, GovernorPolicy
from repro.core.framework import OnlineLearningFramework, PolicyRunResult
from repro.experiments.common import build_trained_framework
from repro.experiments.scales import ExperimentScale, QUICK
from repro.scenarios import (
    ScenarioTrace,
    available_scenarios,
    build_scenario_oracle,
    get_scenario,
    run_policy_on_scenario,
)
from repro.soc.governors import OndemandGovernor, PowersaveGovernor
from repro.utils.rng import SeedLike, derive_seed, make_rng, stable_name_id
from repro.utils.tables import format_table
from repro.workloads.sequences import build_online_sequence
from repro.workloads.suites import unseen_workloads

#: Policy arms of the sweep, in report order.
ROBUSTNESS_POLICIES = ("online-il", "offline-il", "ondemand", "powersave")


@dataclass
class RobustnessRow:
    """One (scenario, policy) cell of the sweep."""

    scenario: str
    policy: str
    total_energy_j: float
    oracle_energy_j: float
    normalized_energy: float
    final_accuracy_percent: float
    n_snippets: int
    throttled_steps: int


@dataclass
class RobustnessResult:
    """All rows of the sweep plus lookup/aggregation helpers."""

    rows: List[RobustnessRow] = field(default_factory=list)

    def scenarios(self) -> List[str]:
        seen: List[str] = []
        for row in self.rows:
            if row.scenario not in seen:
                seen.append(row.scenario)
        return seen

    def policies(self) -> List[str]:
        seen: List[str] = []
        for row in self.rows:
            if row.policy not in seen:
                seen.append(row.policy)
        return seen

    def row(self, scenario: str, policy: str) -> RobustnessRow:
        for candidate in self.rows:
            if candidate.scenario == scenario and candidate.policy == policy:
                return candidate
        raise KeyError(f"no row for scenario={scenario!r} policy={policy!r}")

    def normalized(self, scenario: str, policy: str) -> float:
        return self.row(scenario, policy).normalized_energy

    def online_advantage(self, scenario: str) -> float:
        """Offline-IL minus online-IL normalised energy (>0: online wins)."""
        return (self.normalized(scenario, "offline-il")
                - self.normalized(scenario, "online-il"))

    def mean_normalized(self, policy: str) -> float:
        values = [row.normalized_energy for row in self.rows
                  if row.policy == policy]
        if not values:
            raise KeyError(f"no rows for policy {policy!r}")
        return sum(values) / len(values)


def _policy_factories(
    framework: OnlineLearningFramework, scale: ExperimentScale
) -> Dict[str, Callable[[], DRMPolicy]]:
    return {
        "online-il": lambda: framework.build_online_il_policy(
            buffer_capacity=scale.buffer_capacity,
            update_epochs=scale.update_epochs,
            isolated=True,
        ),
        "offline-il": lambda: framework.offline_policy,
        "ondemand": lambda: GovernorPolicy(OndemandGovernor(framework.space)),
        "powersave": lambda: GovernorPolicy(PowersaveGovernor(framework.space)),
    }


def run_robustness(
    scale: ExperimentScale = QUICK,
    seed: SeedLike = 0,
    scenarios: Optional[Sequence[str]] = None,
    policies: Sequence[str] = ROBUSTNESS_POLICIES,
) -> RobustnessResult:
    """Sweep the policies across the (selected) registered scenarios.

    One framework is trained offline per call and reused for every
    scenario; each (scenario, policy) run draws its measurement-noise
    stream from a seed derived from ``(seed, scenario, policy)``, so a
    cell's result does not depend on which other cells ran before it.
    """
    names = list(scenarios) if scenarios is not None else available_scenarios()
    if not names:
        raise ValueError("run_robustness needs at least one scenario "
                         "(pass scenarios=None to sweep all registered ones)")
    specs = [get_scenario(name) for name in names]
    unknown = [p for p in policies if p not in ROBUSTNESS_POLICIES]
    if unknown:
        raise KeyError(
            f"unknown policies {unknown}; available: {list(ROBUSTNESS_POLICIES)}"
        )
    framework = build_trained_framework(scale, seed=seed)
    factories = _policy_factories(framework, scale)
    base_sequence = build_online_sequence(
        specs=unseen_workloads(),
        snippet_factor=scale.sequence_snippet_factor,
        seed=seed,
    )
    result = RobustnessResult()
    for spec in specs:
        scenario_rng = make_rng(derive_seed(seed, [stable_name_id(spec.name)]))
        trace = spec.apply(base_sequence.snippets, scenario_rng)
        oracle_table = build_scenario_oracle(
            framework.simulator, framework.space, trace, framework.objective,
            cache=framework.oracle_cache,
        )
        for policy_name in policies:
            run_rng = make_rng(
                derive_seed(seed, [stable_name_id(spec.name),
                                   stable_name_id(policy_name)])
            )
            run = run_policy_on_scenario(
                framework.simulator, framework.space,
                factories[policy_name](), trace,
                oracle_table=oracle_table, rng=run_rng,
            )
            result.rows.append(_row_from_run(spec.name, policy_name,
                                             trace, run))
    return result


def _row_from_run(scenario: str, policy: str, trace: ScenarioTrace,
                  run: PolicyRunResult) -> RobustnessRow:
    return RobustnessRow(
        scenario=scenario,
        policy=policy,
        total_energy_j=run.total_energy_j,
        oracle_energy_j=float(run.oracle_energy_j),
        normalized_energy=run.normalized_energy,
        final_accuracy_percent=run.final_accuracy(),
        n_snippets=len(trace),
        throttled_steps=trace.throttled_steps(),
    )


def format_robustness(result: RobustnessResult) -> str:
    """Render the sweep as per-scenario blocks plus a policy summary."""
    headers = ["Scenario", "Policy", "Norm. energy", "Accuracy %",
               "Snippets", "Throttled"]
    rows = [
        [row.scenario, row.policy, row.normalized_energy,
         row.final_accuracy_percent, row.n_snippets, row.throttled_steps]
        for row in result.rows
    ]
    table = format_table(headers, rows, precision=3,
                         title="Robustness — policies vs stress scenarios")
    summary_lines = ["", "Mean normalised energy per policy:"]
    for policy in result.policies():
        summary_lines.append(
            f"  {policy:12s} {result.mean_normalized(policy):.3f}"
        )
    advantage_lines = ["", "Online-IL advantage (offline minus online):"]
    for scenario in result.scenarios():
        try:
            advantage_lines.append(
                f"  {scenario:22s} {result.online_advantage(scenario):+.3f}"
            )
        except KeyError:
            continue
    return "\n".join([table] + summary_lines + advantage_lines)
