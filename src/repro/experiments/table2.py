"""Table II — offline IL policy generalisation across benchmark suites.

An IL policy trained offline on Mi-Bench applications is evaluated on
applications from Mi-Bench, CortexSuite and PARSEC; the reported metric is
the energy normalised to the Oracle policy.  The paper's numbers (1.00-1.01
on the training suite, 1.09-1.76 on Cortex, 1.47-1.86 on PARSEC) motivate the
online-adaptive policy; the reproduction checks the *shape*: near-Oracle on
the training suite and a clearly growing gap on the unseen suites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.common import ExperimentScale, QUICK, build_trained_framework
from repro.utils.rng import SeedLike
from repro.utils.tables import format_table
from repro.workloads.suites import TABLE2_APP_LABELS, get_workload

#: Paper-reported normalised energies (Table II), keyed by workload name.
PAPER_TABLE2_VALUES: Dict[str, float] = {
    "bml": 1.00,
    "dijkstra": 1.01,
    "fft": 1.00,
    "qsort": 1.00,
    "motion-estimation": 1.13,
    "spectral": 1.09,
    "kmeans": 1.76,
    "blackscholes-2t": 1.86,
    "blackscholes-4t": 1.47,
}

SUITE_OF_APP: Dict[str, str] = {
    "bml": "Mi-Bench", "dijkstra": "Mi-Bench", "fft": "Mi-Bench", "qsort": "Mi-Bench",
    "motion-estimation": "Cortex", "spectral": "Cortex", "kmeans": "Cortex",
    "blackscholes-2t": "PARSEC", "blackscholes-4t": "PARSEC",
}


@dataclass
class Table2Result:
    """Normalised energy per application for the offline IL policy."""

    normalized_energy: Dict[str, float] = field(default_factory=dict)
    paper_values: Dict[str, float] = field(default_factory=dict)

    def suite_mean(self, suite: str) -> float:
        values = [v for app, v in self.normalized_energy.items()
                  if SUITE_OF_APP.get(app) == suite]
        if not values:
            raise KeyError(f"no applications evaluated for suite {suite!r}")
        return sum(values) / len(values)

    @property
    def generalization_gap(self) -> float:
        """Mean unseen-suite energy minus mean training-suite energy."""
        unseen = [v for app, v in self.normalized_energy.items()
                  if SUITE_OF_APP.get(app) != "Mi-Bench"]
        seen = [v for app, v in self.normalized_energy.items()
                if SUITE_OF_APP.get(app) == "Mi-Bench"]
        return sum(unseen) / len(unseen) - sum(seen) / len(seen)


def run_table2(scale: ExperimentScale = QUICK, seed: SeedLike = 0,
               allow_core_gating: bool = False,
               apps: Optional[List[str]] = None) -> Table2Result:
    """Train the offline IL policy on Mi-Bench and evaluate Table II's apps."""
    framework = build_trained_framework(scale, seed=seed,
                                        allow_core_gating=allow_core_gating)
    result = Table2Result(paper_values=dict(PAPER_TABLE2_VALUES))
    app_names = apps if apps is not None else list(TABLE2_APP_LABELS.keys())
    for app in app_names:
        workload = get_workload(app).scaled(scale.eval_snippet_factor)
        run = framework.evaluate_policy(framework.offline_policy, workload)
        result.normalized_energy[app] = run.normalized_energy
    return result


def format_table2(result: Table2Result) -> str:
    rows = []
    for app, value in result.normalized_energy.items():
        rows.append(
            (
                TABLE2_APP_LABELS.get(app, app),
                SUITE_OF_APP.get(app, "?"),
                value,
                result.paper_values.get(app, float("nan")),
            )
        )
    return format_table(
        ["application", "suite", "normalized energy (repro)", "paper"],
        rows, precision=3,
        title="Table II — offline IL policy (trained on Mi-Bench), energy vs Oracle",
    )
