"""Figure 5 — energy savings of explicit NMPC over the baseline GPU governor.

For each of the ten graphics benchmarks, the paper reports the energy savings
of the explicit-NMPC multi-rate controller relative to the baseline power
manager for three scopes: the GPU alone, the package (PKG = GPU + CPU) and
the package plus memory (PKG+DRAM).  Savings range from 5 % to 58 % for the
GPU (average ~25 %), roughly 15 % for PKG and PKG+DRAM, with a performance
overhead of about 0.4 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.control.multirate import MultiRateGPUController
from repro.control.nmpc import NMPCGpuController
from repro.experiments.common import ExperimentScale, QUICK
from repro.gpu.baseline_governor import BaselineGPUGovernor
from repro.gpu.gpu import GPUSpec, default_integrated_gpu
from repro.gpu.simulator import GPURunSummary, GPUSimulator
from repro.ml.metrics import energy_savings_percent
from repro.utils.rng import SeedLike, derive_seed
from repro.utils.tables import format_table
from repro.workloads.graphics import figure5_benchmark_order, get_graphics_workload

#: Paper-reported GPU energy savings (%, approximate, read off Figure 5).
PAPER_FIGURE5_GPU_SAVINGS: Dict[str, float] = {
    "3dmark-icestorm": 20.0,
    "angrybirds": 5.0,
    "angrybots": 22.0,
    "epiccitadel": 27.0,
    "fruitninja": 30.0,
    "gfxbench-trex": 15.0,
    "junglerun": 25.0,
    "sharkdash": 58.0,
    "thechase": 22.0,
    "vendettamark": 28.0,
}


@dataclass
class BenchmarkSavings:
    """Energy savings of one benchmark (ENMPC vs baseline)."""

    benchmark: str
    gpu_savings_percent: float
    pkg_savings_percent: float
    pkg_dram_savings_percent: float
    fps_overhead_percent: float
    baseline_fps: float
    enmpc_fps: float
    deadline_miss_rate: float


@dataclass
class Figure5Result:
    """Per-benchmark and average savings."""

    per_benchmark: List[BenchmarkSavings] = field(default_factory=list)

    def average(self, field_name: str) -> float:
        values = [getattr(row, field_name) for row in self.per_benchmark]
        return float(np.mean(values)) if values else float("nan")

    def savings_of(self, benchmark: str) -> BenchmarkSavings:
        for row in self.per_benchmark:
            if row.benchmark == benchmark:
                return row
        raise KeyError(f"benchmark {benchmark!r} not in results")


def _controller_for(gpu: GPUSpec, target_fps: float, kind: str,
                    scale: ExperimentScale):
    if kind == "baseline":
        return BaselineGPUGovernor(gpu, target_fps=target_fps)
    if kind == "enmpc":
        return MultiRateGPUController(gpu, target_fps=target_fps)
    if kind == "nmpc":
        return NMPCGpuController(gpu, target_fps=target_fps)
    raise ValueError(f"unknown controller kind {kind!r}")


def run_figure5(
    scale: ExperimentScale = QUICK,
    seed: SeedLike = 0,
    gpu: Optional[GPUSpec] = None,
    benchmarks: Optional[List[str]] = None,
    improved_controller: str = "enmpc",
) -> Figure5Result:
    """Compare the multi-rate explicit-NMPC controller against the baseline."""
    if gpu is None:
        gpu = default_integrated_gpu()
    names = benchmarks if benchmarks is not None else figure5_benchmark_order()
    result = Figure5Result()
    for name in names:
        trace = get_graphics_workload(name, gpu=gpu, n_frames=scale.gpu_frames,
                                      seed=seed)
        simulator = GPUSimulator(gpu, noise_scale=0.01,
                                 seed=derive_seed(seed, [len(name)]))
        baseline = _controller_for(gpu, trace.target_fps, "baseline", scale)
        improved = _controller_for(gpu, trace.target_fps, improved_controller,
                                   scale)
        baseline_run: GPURunSummary = simulator.run(trace, baseline)
        improved_run: GPURunSummary = simulator.run(trace, improved)
        fps_overhead = 100.0 * (
            baseline_run.achieved_fps - improved_run.achieved_fps
        ) / baseline_run.achieved_fps
        result.per_benchmark.append(
            BenchmarkSavings(
                benchmark=name,
                gpu_savings_percent=energy_savings_percent(
                    baseline_run.gpu_energy_j, improved_run.gpu_energy_j
                ),
                pkg_savings_percent=energy_savings_percent(
                    baseline_run.package_energy_j, improved_run.package_energy_j
                ),
                pkg_dram_savings_percent=energy_savings_percent(
                    baseline_run.package_dram_energy_j,
                    improved_run.package_dram_energy_j,
                ),
                fps_overhead_percent=fps_overhead,
                baseline_fps=baseline_run.achieved_fps,
                enmpc_fps=improved_run.achieved_fps,
                deadline_miss_rate=improved_run.deadline_miss_rate,
            )
        )
    return result


def format_figure5(result: Figure5Result) -> str:
    rows = []
    for row in result.per_benchmark:
        rows.append(
            (
                row.benchmark,
                row.gpu_savings_percent,
                row.pkg_savings_percent,
                row.pkg_dram_savings_percent,
                row.fps_overhead_percent,
                PAPER_FIGURE5_GPU_SAVINGS.get(row.benchmark, float("nan")),
            )
        )
    rows.append(
        (
            "Average",
            result.average("gpu_savings_percent"),
            result.average("pkg_savings_percent"),
            result.average("pkg_dram_savings_percent"),
            result.average("fps_overhead_percent"),
            float(np.mean(list(PAPER_FIGURE5_GPU_SAVINGS.values()))),
        )
    )
    return format_table(
        ["benchmark", "GPU savings %", "PKG savings %", "PKG+DRAM savings %",
         "FPS overhead %", "paper GPU savings %"],
        rows, precision=1,
        title="Figure 5 — explicit NMPC energy savings vs baseline governor",
    )
