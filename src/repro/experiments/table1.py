"""Table I — data collected in each snippet.

Table I of the paper is the list of performance counters recorded per
snippet.  The "experiment" here verifies that the reproduction's counter
vector covers the same quantities and demonstrates one collected sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.soc.configuration import ConfigurationSpace
from repro.soc.counters import COUNTER_NAMES, PerformanceCounters
from repro.soc.platform import odroid_xu3_like
from repro.soc.simulator import SoCSimulator
from repro.soc.snippet import Snippet
from repro.utils.tables import format_table

#: The paper's Table I rows mapped onto the reproduction's counter names.
PAPER_TABLE1_ROWS: Dict[str, str] = {
    "Instructions Retired": "instructions_retired",
    "CPU Cycles": "cpu_cycles",
    "Branch Miss Prediction": "branch_mispredictions",
    "Level 2 Cache Misses": "l2_cache_misses",
    "Data Memory Access": "data_memory_accesses",
    "Noncache External Memory Request": "noncache_external_memory_requests",
    "Total Little Cluster Utilization": "little_cluster_utilization",
    "Per Core Big Cluster Utilization": "big_cluster_utilization",
    "Total Chip Power Consumption": "total_chip_power_w",
}


@dataclass
class Table1Result:
    """Counter schema plus one example sample."""

    rows: List[str]
    example: Dict[str, float]

    @property
    def covered(self) -> bool:
        return all(name in COUNTER_NAMES for name in PAPER_TABLE1_ROWS.values())


def run_table1(seed: int = 0) -> Table1Result:
    """Collect one example snippet's counters and report the schema."""
    platform = odroid_xu3_like()
    space = ConfigurationSpace(platform)
    simulator = SoCSimulator(platform, seed=seed)
    snippet = Snippet(application="example", index=0)
    result = simulator.run_snippet(snippet, space.default_configuration())
    return Table1Result(
        rows=list(PAPER_TABLE1_ROWS.keys()),
        example=result.counters.as_dict(),
    )


def format_table1(result: Table1Result) -> str:
    rows = [
        (paper_name, repro_name, result.example.get(repro_name, float("nan")))
        for paper_name, repro_name in PAPER_TABLE1_ROWS.items()
    ]
    return format_table(
        ["Table I counter", "repro field", "example value"], rows,
        precision=4, title="Table I — data collected in each snippet",
    )
