"""Experiment drivers regenerating every table and figure of the paper.

Each module exposes a ``run_*`` function returning a result object with the
rows/series the paper reports, plus a ``format_*`` helper rendering them as a
text table.  The benchmark harness under ``benchmarks/`` calls these drivers;
``examples/`` show smaller interactive versions.
"""

from repro.experiments.scales import (
    ExperimentScale,
    TINY,
    QUICK,
    BENCH,
    FULL,
    available_scales,
    get_scale,
    register_scale,
)
from repro.experiments.common import OnlineAdaptationStudy
from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.table2 import run_table2, format_table2, Table2Result
from repro.experiments.figure2 import run_figure2, format_figure2, Figure2Result
from repro.experiments.figure3 import run_figure3, format_figure3, Figure3Result
from repro.experiments.figure4 import run_figure4, format_figure4, Figure4Result
from repro.experiments.figure5 import run_figure5, format_figure5, Figure5Result
from repro.experiments.ablations import (
    run_buffer_size_ablation,
    run_forgetting_factor_ablation,
    run_explicit_nmpc_ablation,
    run_config_space_ablation,
    run_noc_model_comparison,
)
from repro.experiments.robustness import (
    RobustnessResult,
    RobustnessRow,
    format_robustness,
    run_robustness,
)
from repro.experiments.runner import (
    ExperimentRunner,
    ExperimentSpec,
    ExperimentRun,
    available_experiments,
    get_experiment,
    register_experiment,
)

__all__ = [
    "ExperimentScale",
    "TINY",
    "QUICK",
    "BENCH",
    "FULL",
    "available_scales",
    "get_scale",
    "register_scale",
    "ExperimentRunner",
    "ExperimentSpec",
    "ExperimentRun",
    "available_experiments",
    "get_experiment",
    "register_experiment",
    "OnlineAdaptationStudy",
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
    "Table2Result",
    "run_figure2",
    "format_figure2",
    "Figure2Result",
    "run_figure3",
    "format_figure3",
    "Figure3Result",
    "run_figure4",
    "format_figure4",
    "Figure4Result",
    "run_figure5",
    "format_figure5",
    "Figure5Result",
    "run_buffer_size_ablation",
    "run_forgetting_factor_ablation",
    "run_explicit_nmpc_ablation",
    "run_config_space_ablation",
    "run_noc_model_comparison",
    "RobustnessResult",
    "RobustnessRow",
    "format_robustness",
    "run_robustness",
]
