"""Frame workloads for the GPU experiments.

A :class:`Frame` is one unit of rendering work; a :class:`FrameTrace` is the
per-frame workload of a whole benchmark run together with its target frame
rate.  Traces are generated synthetically with controllable mean load,
scene-to-scene variation and slowly varying "scene phases" so that both the
online frame-time model (Fig. 2) and the multi-rate controller (Fig. 5) see
realistic dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class Frame:
    """One frame of rendering work."""

    index: int
    work_cycles: float
    memory_bytes: float

    def __post_init__(self) -> None:
        if self.work_cycles <= 0:
            raise ValueError("work_cycles must be positive")
        if self.memory_bytes < 0:
            raise ValueError("memory_bytes must be non-negative")


@dataclass
class FrameResult:
    """Outcome of rendering one frame under a given GPU configuration."""

    frame: Frame
    opp_index: int
    active_slices: int
    busy_time_s: float
    frame_time_s: float
    gpu_energy_j: float
    dram_energy_j: float
    cpu_energy_j: float
    deadline_s: float

    @property
    def met_deadline(self) -> bool:
        return self.frame_time_s <= self.deadline_s + 1e-9

    @property
    def package_energy_j(self) -> float:
        """PKG = GPU + CPU package energy."""
        return self.gpu_energy_j + self.cpu_energy_j

    @property
    def package_dram_energy_j(self) -> float:
        """PKG+DRAM = GPU + CPU + DRAM energy."""
        return self.gpu_energy_j + self.cpu_energy_j + self.dram_energy_j


@dataclass
class FrameTrace:
    """A named sequence of frames with a target frame rate."""

    name: str
    frames: List[Frame]
    target_fps: float = 30.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.frames:
            raise ValueError("FrameTrace requires at least one frame")
        if self.target_fps <= 0:
            raise ValueError("target_fps must be positive")

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def deadline_s(self) -> float:
        return 1.0 / self.target_fps

    def mean_work_cycles(self) -> float:
        return float(np.mean([f.work_cycles for f in self.frames]))

    def peak_work_cycles(self) -> float:
        return float(np.max([f.work_cycles for f in self.frames]))


def generate_frame_trace(
    name: str,
    n_frames: int,
    mean_work_cycles: float,
    work_variation: float = 0.1,
    phase_period: int = 120,
    phase_amplitude: float = 0.15,
    memory_bytes_per_cycle: float = 0.8,
    target_fps: float = 30.0,
    seed: SeedLike = None,
    description: str = "",
) -> FrameTrace:
    """Generate a synthetic frame trace.

    Frame work follows a slow sinusoidal "scene" modulation (period
    ``phase_period`` frames, relative amplitude ``phase_amplitude``) with
    lognormal frame-to-frame jitter of relative width ``work_variation`` —
    the combination seen in real game traces where scene changes are slow
    compared to per-frame noise.
    """
    if n_frames < 1:
        raise ValueError("n_frames must be >= 1")
    if mean_work_cycles <= 0:
        raise ValueError("mean_work_cycles must be positive")
    if work_variation < 0 or phase_amplitude < 0:
        raise ValueError("variation parameters must be non-negative")
    rng = make_rng(seed)
    frames: List[Frame] = []
    for i in range(n_frames):
        phase = 1.0 + phase_amplitude * np.sin(2.0 * np.pi * i / max(2, phase_period))
        jitter = float(np.exp(rng.normal(0.0, work_variation)))
        work = mean_work_cycles * phase * jitter
        memory = work * memory_bytes_per_cycle * float(np.exp(rng.normal(0.0, 0.05)))
        frames.append(Frame(index=i, work_cycles=work, memory_bytes=memory))
    return FrameTrace(name=name, frames=frames, target_fps=target_fps,
                      description=description)
