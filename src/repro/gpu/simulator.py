"""Frame-loop GPU simulator.

Runs a :class:`~repro.gpu.frames.FrameTrace` under a controller (baseline
governor, NMPC, explicit NMPC, ...) and accounts GPU / CPU-package / DRAM
energy per frame, frame-time statistics and FPS, which is exactly the data
needed for the paper's Figure 5 (GPU / PKG / PKG+DRAM energy savings and the
performance overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence

import numpy as np

from repro.gpu.frames import Frame, FrameResult, FrameTrace
from repro.gpu.gpu import GPUConfiguration, GPUSpec
from repro.utils.rng import SeedLike, make_rng


class GPUController(Protocol):
    """Protocol every GPU power-management controller must satisfy."""

    def reset(self) -> None:
        """Clear controller state before a new run."""

    def decide(self, upcoming_frame: Optional[Frame] = None) -> GPUConfiguration:
        """Return the configuration to use for the next frame."""

    def observe(self, result: FrameResult) -> None:
        """Consume the result of the frame that was just rendered."""


@dataclass
class GPURunSummary:
    """Aggregate statistics of one benchmark run."""

    benchmark: str
    frame_results: List[FrameResult] = field(default_factory=list)

    @property
    def n_frames(self) -> int:
        return len(self.frame_results)

    @property
    def gpu_energy_j(self) -> float:
        return float(sum(r.gpu_energy_j for r in self.frame_results))

    @property
    def package_energy_j(self) -> float:
        return float(sum(r.package_energy_j for r in self.frame_results))

    @property
    def package_dram_energy_j(self) -> float:
        return float(sum(r.package_dram_energy_j for r in self.frame_results))

    @property
    def total_time_s(self) -> float:
        return float(sum(r.frame_time_s for r in self.frame_results))

    @property
    def achieved_fps(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.n_frames / self.total_time_s

    @property
    def deadline_miss_rate(self) -> float:
        if not self.frame_results:
            return 0.0
        misses = sum(1 for r in self.frame_results if not r.met_deadline)
        return misses / self.n_frames

    def mean_frame_time_s(self) -> float:
        if not self.frame_results:
            return 0.0
        return float(np.mean([r.frame_time_s for r in self.frame_results]))

    def frame_time_series_s(self) -> np.ndarray:
        return np.array([r.frame_time_s for r in self.frame_results])

    def busy_time_series_s(self) -> np.ndarray:
        return np.array([r.busy_time_s for r in self.frame_results])


@dataclass
class GPUBatchResult:
    """Struct-of-arrays outcome of one frame trace swept over configurations.

    Produced by :meth:`GPUSimulator.evaluate_batch`; every 2-D array has
    shape ``(n_configurations, n_frames)`` in the order of
    :attr:`configurations`.  Values are bitwise identical to what
    per-configuration :meth:`GPUSimulator.run_fixed` calls would produce;
    indexing (``batch[i]`` / :meth:`summary_at`) materialises the full
    :class:`GPURunSummary` for one configuration on demand, while the
    ``*_totals_j`` accessors aggregate the sweep without building any
    per-frame objects.
    """

    trace: FrameTrace
    configurations: List[GPUConfiguration]
    deadline_s: float
    busy_time_s: np.ndarray
    frame_time_s: np.ndarray
    gpu_energy_j: np.ndarray
    dram_energy_j: np.ndarray
    cpu_energy_j: np.ndarray

    def __len__(self) -> int:
        return len(self.configurations)

    @property
    def gpu_energy_totals_j(self) -> np.ndarray:
        """Total GPU energy per configuration."""
        return self.gpu_energy_j.sum(axis=1)

    @property
    def package_energy_totals_j(self) -> np.ndarray:
        """Total PKG (GPU + CPU package) energy per configuration."""
        return (self.gpu_energy_j + self.cpu_energy_j).sum(axis=1)

    @property
    def package_dram_energy_totals_j(self) -> np.ndarray:
        """Total PKG+DRAM energy per configuration."""
        return (self.gpu_energy_j + self.cpu_energy_j
                + self.dram_energy_j).sum(axis=1)

    @property
    def total_time_s(self) -> np.ndarray:
        """Total wall-clock time per configuration."""
        return self.frame_time_s.sum(axis=1)

    @property
    def deadline_miss_rates(self) -> np.ndarray:
        """Fraction of frames missing the vsync deadline per configuration."""
        misses = self.frame_time_s > self.deadline_s + 1e-9
        return misses.mean(axis=1)

    def _normalized_index(self, index: int) -> int:
        n = len(self.configurations)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"configuration index {index} out of range")
        return index

    def summary_at(self, index: int) -> GPURunSummary:
        """Materialise the per-frame :class:`GPURunSummary` for one config."""
        i = self._normalized_index(index)
        config = self.configurations[i]
        results = [
            FrameResult(
                frame=frame,
                opp_index=config.opp_index,
                active_slices=config.active_slices,
                busy_time_s=float(self.busy_time_s[i, k]),
                frame_time_s=float(self.frame_time_s[i, k]),
                gpu_energy_j=float(self.gpu_energy_j[i, k]),
                dram_energy_j=float(self.dram_energy_j[i, k]),
                cpu_energy_j=float(self.cpu_energy_j[i, k]),
                deadline_s=self.deadline_s,
            )
            for k, frame in enumerate(self.trace.frames)
        ]
        return GPURunSummary(benchmark=self.trace.name, frame_results=results)

    def __getitem__(self, index: int) -> GPURunSummary:
        return self.summary_at(index)

    def __iter__(self):
        for i in range(len(self.configurations)):
            yield self.summary_at(i)


class GPUSimulator:
    """Renders frame traces under a pluggable power-management controller."""

    #: :class:`~repro.core.engine.SimulationEngine` identifier.
    engine_name = "gpu"

    def __init__(self, gpu: GPUSpec, noise_scale: float = 0.01,
                 seed: SeedLike = None) -> None:
        if noise_scale < 0:
            raise ValueError("noise_scale must be non-negative")
        self.gpu = gpu
        self.noise_scale = float(noise_scale)
        self.rng = make_rng(seed)

    def render_frame(self, frame: Frame, config: GPUConfiguration,
                     deadline_s: float, deterministic: bool = False) -> FrameResult:
        """Render one frame at ``config`` and account its energy.

        A frame occupies at least the vsync period: if the GPU finishes early
        it idles (clock gated) for the remainder; if it overruns, the frame
        time extends beyond the deadline (a deadline miss / dropped frame).
        """
        busy = self.gpu.busy_time_s(config, frame.work_cycles, frame.memory_bytes)
        if not deterministic and self.noise_scale > 0.0:
            busy *= float(np.exp(self.rng.normal(0.0, self.noise_scale)))
        frame_time = max(busy, deadline_s)
        idle = frame_time - busy
        active_power = self.gpu.active_power_w(config, utilization=1.0)
        idle_power = self.gpu.idle_power_w_at(config)
        gpu_energy = active_power * busy + idle_power * idle
        dram_energy = (
            frame.memory_bytes / 1e9 * self.gpu.dram_power_w_per_gbps
        )
        cpu_energy = self.gpu.cpu_package_power_w * frame_time
        return FrameResult(
            frame=frame,
            opp_index=config.opp_index,
            active_slices=config.active_slices,
            busy_time_s=busy,
            frame_time_s=frame_time,
            gpu_energy_j=gpu_energy,
            dram_energy_j=dram_energy,
            cpu_energy_j=cpu_energy,
            deadline_s=deadline_s,
        )

    def run(self, trace: FrameTrace, controller: GPUController,
            deterministic: bool = False) -> GPURunSummary:
        """Run the whole trace under ``controller`` and return the summary."""
        controller.reset()
        summary = GPURunSummary(benchmark=trace.name)
        deadline = trace.deadline_s
        for frame in trace.frames:
            config = controller.decide(upcoming_frame=frame)
            result = self.render_frame(frame, config, deadline,
                                       deterministic=deterministic)
            controller.observe(result)
            summary.frame_results.append(result)
        return summary

    def run_fixed(self, trace: FrameTrace, config: GPUConfiguration,
                  deterministic: bool = True) -> GPURunSummary:
        """Run the whole trace at one fixed configuration (for sweeps/oracles)."""
        summary = GPURunSummary(benchmark=trace.name)
        deadline = trace.deadline_s
        for frame in trace.frames:
            result = self.render_frame(frame, config, deadline,
                                       deterministic=deterministic)
            summary.frame_results.append(result)
        return summary

    def evaluate_batch(self, trace: FrameTrace,
                       configurations: Sequence[GPUConfiguration]
                       ) -> "GPUBatchResult":
        """Deterministically sweep one frame trace across many configurations.

        :class:`~repro.core.engine.SimulationEngine` batch entry point: each
        configuration renders the full trace noise-free, so the summaries are
        directly comparable (the GPU analogue of the SoC Oracle sweep).

        The whole ``(configurations x frames)`` sweep is computed with NumPy
        broadcasting: only the per-configuration operating-point scalars go
        through Python, and the per-frame busy/energy arithmetic replicates
        :meth:`render_frame`'s operation ordering, so every value is bitwise
        identical to a :meth:`run_fixed` call at the same configuration.
        Returns a struct-of-arrays :class:`GPUBatchResult`; indexing it
        materialises the corresponding :class:`GPURunSummary` on demand.
        """
        configs = list(configurations)
        if not configs:
            raise ValueError("evaluate_batch needs at least one configuration")
        work = np.array([f.work_cycles for f in trace.frames])
        memory = np.array([f.memory_bytes for f in trace.frames])
        throughput = np.array([
            self.gpu.operating_point(c).frequency_hz
            * self.gpu.slice_throughput_factor(c.active_slices)
            for c in configs
        ])
        active_power = np.array([
            self.gpu.active_power_w(c, utilization=1.0) for c in configs
        ])
        idle_power = np.array([self.gpu.idle_power_w_at(c) for c in configs])
        deadline = trace.deadline_s
        memory_time = memory / (self.gpu.memory_bandwidth_gbps * 1e9)
        busy = work[None, :] / throughput[:, None] + memory_time[None, :]
        frame_time = np.maximum(busy, deadline)
        idle = frame_time - busy
        gpu_energy = (active_power[:, None] * busy
                      + idle_power[:, None] * idle)
        dram_energy = np.broadcast_to(
            memory / 1e9 * self.gpu.dram_power_w_per_gbps, busy.shape
        )
        cpu_energy = self.gpu.cpu_package_power_w * frame_time
        return GPUBatchResult(
            trace=trace,
            configurations=configs,
            deadline_s=deadline,
            busy_time_s=busy,
            frame_time_s=frame_time,
            gpu_energy_j=gpu_energy,
            dram_energy_j=dram_energy,
            cpu_energy_j=cpu_energy,
        )
