"""GPU hardware model: slices, operating points and the frame-time law.

Frame-time model
----------------
A frame carries ``work_cycles`` of shader work (normalised to one slice) and
``memory_bytes`` of memory traffic.  With ``s`` active slices at frequency
``f`` the busy time is::

    t_busy = work_cycles / (f * s^alpha)  +  memory_bytes / bandwidth

``alpha < 1`` models imperfect slice scaling.  The GPU then idles (clock
gated) until the next vsync period if it finished early.

Power model
-----------
Active: ``P = C_eff V^2 f s + leak V s + P_uncore``;  idle: clock-gated
dynamic power is zero and only the leakage of *powered* slices plus uncore
power remains.  Gated slices consume nothing, which is what makes the
slow-rate slice knob worthwhile for light workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.soc.opp import OPPTable, OperatingPoint


@dataclass(frozen=True)
class GPUConfiguration:
    """One setting of the GPU control knobs."""

    opp_index: int
    active_slices: int

    def __post_init__(self) -> None:
        if self.opp_index < 0:
            raise ValueError("opp_index must be non-negative")
        if self.active_slices < 1:
            raise ValueError("active_slices must be >= 1")


@dataclass
class GPUSpec:
    """Static description of an integrated GPU.

    Parameters
    ----------
    opps:
        DVFS table shared by all slices.
    n_slices:
        Total number of slices that can be power gated individually.
    slice_scaling_alpha:
        Exponent of the slice-count speedup (1.0 = perfect scaling).
    capacitance_eff_f:
        Effective switching capacitance per slice.
    leakage_w_per_v:
        Leakage power per powered slice per volt.
    uncore_power_w:
        Always-on GPU uncore power while the GPU domain is active.
    idle_power_w:
        Residual power when the GPU is idle (clock gated between frames).
    memory_bandwidth_gbps:
        Memory bandwidth available to the GPU in GB/s.
    dram_power_w_per_gbps:
        DRAM power per GB/s of GPU traffic (used for the PKG+DRAM metric).
    cpu_package_power_w:
        CPU-side package power while running the game loop (driver, display);
        charged for the whole wall-clock duration in the PKG metrics.
    """

    opps: OPPTable
    n_slices: int = 3
    slice_scaling_alpha: float = 0.9
    capacitance_eff_f: float = 2.4e-9
    leakage_w_per_v: float = 0.6
    uncore_power_w: float = 0.35
    idle_power_w: float = 0.2
    memory_bandwidth_gbps: float = 12.0
    dram_power_w_per_gbps: float = 0.30
    cpu_package_power_w: float = 2.0

    def __post_init__(self) -> None:
        if self.n_slices < 1:
            raise ValueError("n_slices must be >= 1")
        if not 0.0 < self.slice_scaling_alpha <= 1.0:
            raise ValueError("slice_scaling_alpha must be in (0, 1]")
        for name in ("capacitance_eff_f", "memory_bandwidth_gbps"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("leakage_w_per_v", "uncore_power_w", "idle_power_w",
                     "dram_power_w_per_gbps", "cpu_package_power_w"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    # ------------------------------------------------------------------ #
    def configurations(self) -> List[GPUConfiguration]:
        """Enumerate all (OPP, slice-count) configurations."""
        return [
            GPUConfiguration(opp_index=o, active_slices=s)
            for s in range(1, self.n_slices + 1)
            for o in range(len(self.opps))
        ]

    def operating_point(self, config: GPUConfiguration) -> OperatingPoint:
        return self.opps[self.opps.clamp_index(config.opp_index)]

    def slice_throughput_factor(self, active_slices: int) -> float:
        """Relative shader throughput of ``active_slices`` slices."""
        slices = max(1, min(self.n_slices, int(active_slices)))
        return float(slices**self.slice_scaling_alpha)

    def busy_time_s(self, config: GPUConfiguration, work_cycles: float,
                    memory_bytes: float) -> float:
        """Frame busy time under ``config`` (compute plus memory phases)."""
        if work_cycles < 0 or memory_bytes < 0:
            raise ValueError("work_cycles and memory_bytes must be non-negative")
        opp = self.operating_point(config)
        throughput = opp.frequency_hz * self.slice_throughput_factor(config.active_slices)
        compute_time = work_cycles / throughput
        memory_time = memory_bytes / (self.memory_bandwidth_gbps * 1e9)
        return compute_time + memory_time

    def active_power_w(self, config: GPUConfiguration, utilization: float = 1.0) -> float:
        """GPU power while rendering at ``config``."""
        opp = self.operating_point(config)
        slices = max(1, min(self.n_slices, config.active_slices))
        util = min(max(utilization, 0.0), 1.0)
        dynamic = self.capacitance_eff_f * opp.voltage_v**2 * opp.frequency_hz * slices * util
        leakage = self.leakage_w_per_v * opp.voltage_v * slices
        return dynamic + leakage + self.uncore_power_w

    #: Fraction of leakage still drawn by a powered (but clock-gated) slice.
    IDLE_LEAKAGE_FRACTION = 0.5

    def idle_power_w_at(self, config: GPUConfiguration) -> float:
        """GPU power while idle (clock gated) with ``config`` slices powered."""
        opp = self.operating_point(config)
        slices = max(1, min(self.n_slices, config.active_slices))
        leakage = self.IDLE_LEAKAGE_FRACTION * self.leakage_w_per_v * opp.voltage_v * slices
        return self.idle_power_w + leakage

    def max_throughput_cycles_per_s(self) -> float:
        """Shader throughput of the maximal configuration."""
        return self.opps.max_frequency_hz * self.slice_throughput_factor(self.n_slices)


def default_integrated_gpu(n_opp_levels: int = 8, n_slices: int = 3) -> GPUSpec:
    """An Intel-integrated-GPU-like spec (300-1100 MHz, individually gated slices)."""
    opps = OPPTable.from_frequency_range(
        min_frequency_hz=300e6,
        max_frequency_hz=1100e6,
        n_levels=n_opp_levels,
        min_voltage_v=0.75,
        max_voltage_v=1.15,
    )
    return GPUSpec(opps=opps, n_slices=n_slices)
