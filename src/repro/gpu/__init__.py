"""Integrated GPU subsystem model.

The ENMPC experiments of the paper (Sec. IV-B, Fig. 5) control an Intel
integrated GPU with two knobs: the DVFS operating point and the number of
active GPU slices (power gating).  This package provides a frame-based GPU
model with those knobs, per-frame workload traces for the graphics
benchmarks, a frequency-only baseline governor, and a frame-loop simulator
that accounts GPU / package / package+DRAM energy against an FPS target.
"""

from repro.gpu.gpu import GPUSpec, GPUConfiguration, default_integrated_gpu
from repro.gpu.frames import Frame, FrameTrace, FrameResult
from repro.gpu.baseline_governor import BaselineGPUGovernor
from repro.gpu.simulator import (
    GPUBatchResult,
    GPUController,
    GPURunSummary,
    GPUSimulator,
)

__all__ = [
    "GPUSpec",
    "GPUConfiguration",
    "default_integrated_gpu",
    "Frame",
    "FrameTrace",
    "FrameResult",
    "BaselineGPUGovernor",
    "GPUSimulator",
    "GPUBatchResult",
    "GPURunSummary",
    "GPUController",
]
