"""Baseline GPU power-management policy.

The paper's Figure 5 compares explicit NMPC against "the baseline algorithm"
for GPU power management: a conventional frequency-only governor that keeps
every slice powered and selects the operating frequency reactively from
recent frame times with a safety margin — representative of shipping
utilisation/deadline-driven GPU governors.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.gpu.frames import Frame, FrameResult
from repro.gpu.gpu import GPUConfiguration, GPUSpec


class BaselineGPUGovernor:
    """Reactive frequency-only governor with a fixed headroom margin.

    The governor tracks the worst-case busy time over a sliding window of
    recent frames and picks the lowest frequency that would have rendered that
    worst-case frame within ``1 / (1 + headroom)`` of the deadline, with all
    slices always powered.  This emulates the conservative behaviour of
    utilisation-threshold GPU governors: they must leave margin because they
    cannot predict the next frame's load.
    """

    def __init__(
        self,
        gpu: GPUSpec,
        target_fps: float,
        headroom: float = 0.45,
        window: int = 12,
    ) -> None:
        if target_fps <= 0:
            raise ValueError("target_fps must be positive")
        if headroom < 0:
            raise ValueError("headroom must be non-negative")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.gpu = gpu
        self.target_fps = float(target_fps)
        self.headroom = float(headroom)
        self.window = int(window)
        self._recent_work: Deque[float] = deque(maxlen=window)
        self._recent_memory: Deque[float] = deque(maxlen=window)
        self.current = GPUConfiguration(
            opp_index=len(gpu.opps) - 1, active_slices=gpu.n_slices
        )

    def reset(self) -> None:
        self._recent_work.clear()
        self._recent_memory.clear()
        self.current = GPUConfiguration(
            opp_index=len(self.gpu.opps) - 1, active_slices=self.gpu.n_slices
        )

    def observe(self, result: FrameResult) -> None:
        """Record the rendered frame's workload for the next decision."""
        self._recent_work.append(result.frame.work_cycles)
        self._recent_memory.append(result.frame.memory_bytes)

    def decide(self, upcoming_frame: Optional[Frame] = None) -> GPUConfiguration:
        """Choose the configuration for the next frame.

        The baseline cannot see the upcoming frame's true load (the argument
        is accepted for interface compatibility and ignored); it provisions
        for the worst recent frame plus ``headroom``.
        """
        deadline = 1.0 / self.target_fps
        if not self._recent_work:
            return self.current
        worst_work = max(self._recent_work) * (1.0 + self.headroom)
        worst_memory = max(self._recent_memory) * (1.0 + self.headroom)
        chosen_index = len(self.gpu.opps) - 1
        for opp_index in range(len(self.gpu.opps)):
            config = GPUConfiguration(opp_index=opp_index,
                                      active_slices=self.gpu.n_slices)
            busy = self.gpu.busy_time_s(config, worst_work, worst_memory)
            if busy <= deadline:
                chosen_index = opp_index
                break
        self.current = GPUConfiguration(opp_index=chosen_index,
                                        active_slices=self.gpu.n_slices)
        return self.current
