"""Typed, versioned message protocol of the fleet control plane.

Every message crossing a process boundary (client -> server requests,
journal records, telemetry) is a frozen dataclass registered here, with a
stable wire name and an explicit schema version — the gridworks-scada
``named_types`` idiom.  Serialization is strict JSON:

* :func:`encode_message` emits ``{"type": ..., "version": ..., fields}``
  with deterministic key order (the journal frames the canonical dump).
* :func:`decode_message` refuses unknown types, version mismatches,
  missing required fields and unexpected fields — a corrupted or
  foreign payload must fail loudly, never restore into a silently wrong
  run.

Messages are pure data; the semantics (what a dispatch does, when a
flatline alert fires) live in :mod:`repro.service.run`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Optional, Tuple, Type

#: Commands :class:`DispatchCommand` accepts (validated at decode time
#: so a bad dispatch is rejected before it is journaled).
DISPATCH_COMMANDS = ("pause", "resume", "restrict-space", "set-policy")

_MISSING = dataclasses.MISSING


class ProtocolError(ValueError):
    """A message payload failed strict decoding."""


@dataclass(frozen=True)
class Message:
    """Base of every wire message; subclasses set TYPE_NAME/VERSION."""

    TYPE_NAME: ClassVar[str] = ""
    VERSION: ClassVar[int] = 1


_REGISTRY: Dict[str, Type[Message]] = {}


def _register(cls: Type[Message]) -> Type[Message]:
    if not cls.TYPE_NAME:
        raise ValueError(f"{cls.__name__} has no TYPE_NAME")
    if cls.TYPE_NAME in _REGISTRY:
        raise ValueError(f"duplicate message type {cls.TYPE_NAME!r}")
    _REGISTRY[cls.TYPE_NAME] = cls
    return cls


@_register
@dataclass(frozen=True)
class DeviceRegistration(Message):
    """One device announcing itself to the control plane (journal genesis)."""

    TYPE_NAME: ClassVar[str] = "device.registration"
    device: str = ""
    policy: str = ""
    trace_steps: int = 0
    scenario: str = ""
    supervised: bool = False


@_register
@dataclass(frozen=True)
class TelemetryReport(Message):
    """Periodic per-device progress/energy report (``GET /report``)."""

    TYPE_NAME: ClassVar[str] = "telemetry.report"
    device: str = ""
    round: int = 0
    steps_completed: int = 0
    trace_steps: int = 0
    health: str = "healthy"
    total_energy_j: float = 0.0
    total_time_s: float = 0.0
    state_digest: str = ""


@_register
@dataclass(frozen=True)
class SnapshotRequest(Message):
    """Client-initiated snapshot rotation (``POST /snapshot``)."""

    TYPE_NAME: ClassVar[str] = "snapshot.request"
    reason: str = ""


@_register
@dataclass(frozen=True)
class SnapshotManifest(Message):
    """Journal record naming one completed snapshot rotation.

    ``files`` holds ``(device, relative_path, sha256_hex)`` triples; the
    manifest is appended *after* every snapshot file has been atomically
    published, so a manifest in the journal is a recovery point whose
    files either all verify or (bit-rot) fail loudly.
    """

    TYPE_NAME: ClassVar[str] = "snapshot.manifest"
    round: int = 0
    files: Tuple[Tuple[str, str, str], ...] = ()


@_register
@dataclass(frozen=True)
class DispatchCommand(Message):
    """A control-plane mutation: pause/resume, space cap, policy swap.

    ``apply_round`` is assigned by the server at acceptance (the next
    fleet round boundary); clients leave it ``None``.  ``value`` carries
    the command operand: the OPP cap (int, or ``None`` to lift) for
    ``restrict-space``, the policy name (str) for ``set-policy``.
    ``idempotency_key`` makes redelivery safe: the same key is applied
    exactly once and later deliveries return the original receipt.
    """

    TYPE_NAME: ClassVar[str] = "dispatch.command"
    command: str = ""
    device: str = ""
    value: Any = None
    idempotency_key: str = ""
    apply_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.command not in DISPATCH_COMMANDS:
            raise ProtocolError(
                f"unknown dispatch command {self.command!r}; "
                f"expected one of {DISPATCH_COMMANDS}"
            )


@_register
@dataclass(frozen=True)
class DispatchReceipt(Message):
    """Server acknowledgement of a dispatch (returned, not journaled)."""

    TYPE_NAME: ClassVar[str] = "dispatch.receipt"
    idempotency_key: str = ""
    apply_round: int = 0
    status: str = "accepted"  # accepted | duplicate | rejected
    detail: str = ""


@_register
@dataclass(frozen=True)
class FlatlineAlert(Message):
    """Watchdog alert: a supervised device's log stopped advancing."""

    TYPE_NAME: ClassVar[str] = "flatline.alert"
    device: str = ""
    round: int = 0
    stalled_rounds: int = 0
    health: str = "degraded"


@_register
@dataclass(frozen=True)
class ErrorReport(Message):
    """A server-side failure surfaced to clients (``GET /report``)."""

    TYPE_NAME: ClassVar[str] = "error.report"
    context: str = ""
    message: str = ""


@_register
@dataclass(frozen=True)
class RunGenesis(Message):
    """First journal record: the deterministic run configuration.

    Recovery rebuilds the device fleet from ``config`` alone (or, for
    externally built fleets, verifies the caller supplied the same
    fleet), so the genesis record pins everything the rebuild needs.
    """

    TYPE_NAME: ClassVar[str] = "run.genesis"
    config: Dict[str, Any] = dataclasses.field(default_factory=dict)


@_register
@dataclass(frozen=True)
class StepBoundary(Message):
    """One completed lockstep fleet round (journaled at the boundary)."""

    TYPE_NAME: ClassVar[str] = "step.boundary"
    round: int = 0
    advanced: int = 0


@_register
@dataclass(frozen=True)
class ShutdownNotice(Message):
    """Graceful shutdown marker (SIGTERM drain or completed run)."""

    TYPE_NAME: ClassVar[str] = "run.shutdown"
    round: int = 0
    reason: str = ""


def message_types() -> Dict[str, Type[Message]]:
    """Wire name -> class for every registered message type."""
    return dict(_REGISTRY)


def encode_message(message: Message) -> Dict[str, Any]:
    """Message -> plain JSON-compatible dict (type + version + fields)."""
    if type(message) not in _REGISTRY.values():
        raise ProtocolError(
            f"{type(message).__name__} is not a registered message type"
        )
    payload: Dict[str, Any] = {
        "type": message.TYPE_NAME,
        "version": message.VERSION,
    }
    for spec in dataclasses.fields(message):
        payload[spec.name] = _jsonify(getattr(message, spec.name))
    return payload


def _jsonify(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_jsonify(item) for item in value]
    if isinstance(value, list):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    return value


def _tuplify(value: Any) -> Any:
    """JSON lists -> tuples (frozen dataclasses want hashable fields)."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


def decode_message(payload: Dict[str, Any]) -> Message:
    """Strictly decode one :func:`encode_message` dict.

    Raises :class:`ProtocolError` on an unknown type, a schema-version
    mismatch, a missing required field, or any unexpected field.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(f"message payload must be a dict, got "
                            f"{type(payload).__name__}")
    type_name = payload.get("type")
    cls = _REGISTRY.get(type_name)
    if cls is None:
        raise ProtocolError(f"unknown message type {type_name!r}")
    version = payload.get("version")
    if version != cls.VERSION:
        raise ProtocolError(
            f"{type_name}: schema version {version!r} is not {cls.VERSION}"
        )
    specs = {spec.name: spec for spec in dataclasses.fields(cls)}
    unexpected = set(payload) - set(specs) - {"type", "version"}
    if unexpected:
        raise ProtocolError(
            f"{type_name}: unexpected fields {sorted(unexpected)}"
        )
    kwargs: Dict[str, Any] = {}
    for name, spec in specs.items():
        if name in payload:
            value = payload[name]
            # Dict-typed fields (RunGenesis.config) keep their JSON shape;
            # everything sequence-like round-trips as a tuple.
            kwargs[name] = value if isinstance(value, dict) \
                else _tuplify(value)
        elif (spec.default is _MISSING
              and spec.default_factory is _MISSING):  # pragma: no cover
            raise ProtocolError(f"{type_name}: missing field {name!r}")
    try:
        return cls(**kwargs)
    except ProtocolError:
        raise
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"{type_name}: {exc}") from exc


def dumps_message(message: Message) -> str:
    """Canonical JSON text of one message (sorted keys, tight separators).

    The canonical form is what the journal checksums — encode/dumps must
    be deterministic for a given message value.
    """
    return json.dumps(encode_message(message), sort_keys=True,
                      separators=(",", ":"))


def loads_message(text: str) -> Message:
    """Inverse of :func:`dumps_message` (strict)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"message is not valid JSON: {exc}") from exc
    return decode_message(payload)
