"""Asyncio JSON-over-HTTP control-plane server (stdlib only).

One :class:`ServiceServer` owns one :class:`~repro.service.run.ServiceRun`
and exposes it over a minimal HTTP/1.1 surface:

======  ============  ====================================================
Method  Path          Effect
======  ============  ====================================================
GET     /status       Run status (rounds, devices, health, digests)
GET     /report       Per-device :class:`TelemetryReport` records
GET     /alerts       :class:`FlatlineAlert` records emitted so far
POST    /dispatch     Apply one :class:`DispatchCommand` (body = message)
POST    /pause        Sugar for a ``pause`` dispatch
POST    /resume       Sugar for a ``resume`` dispatch
POST    /snapshot     Force a snapshot rotation now
POST    /shutdown     Graceful drain (same as SIGTERM)
======  ============  ====================================================

Every request is parsed and answered under a per-request deadline; a
slow or stalled client cannot wedge the stepper.  The fleet advances in
a background task one lockstep round at a time, so dispatches always
land on a round boundary.  ``SIGTERM`` (and ``POST /shutdown``) drains
gracefully: the in-flight round completes, a final snapshot rotation and
a :class:`ShutdownNotice` are journaled, and the process exits 0.  A
``kill -9`` instead is exactly what the journal is for — restart with
``--resume`` and the run continues bitwise identically.
"""

from __future__ import annotations

import asyncio
import json
import signal
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.service.protocol import (
    DispatchCommand,
    ProtocolError,
    encode_message,
    loads_message,
)
from repro.service.run import ServiceRun

#: File (inside the journal directory) recording the bound port, so
#: clients and the demo can find a server started with ``--port 0``.
PORT_FILE = "server.port"


class ServiceServer:
    """Serve one :class:`ServiceRun` until it finishes or is drained."""

    def __init__(
        self,
        run: ServiceRun,
        host: str = "127.0.0.1",
        port: int = 0,
        step_delay: float = 0.0,
        request_timeout: float = 10.0,
    ) -> None:
        self.run = run
        self.host = host
        self.port = port
        self.step_delay = float(step_delay)
        self.request_timeout = float(request_timeout)
        self.bound_port: Optional[int] = None
        self._draining = False
        self._drain_reason = "drained"
        self._stopped: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def serve(self, install_signal_handlers: bool = True) -> None:
        """Run the server until the fleet finishes or a drain is requested."""
        loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        if self.run.journal_dir is not None:
            (self.run.journal_dir / PORT_FILE).write_text(
                str(self.bound_port)
            )
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(
                    signum, self.request_drain, signal.Signals(signum).name
                )
        stepper = asyncio.ensure_future(self._stepper())
        try:
            await self._stopped.wait()
        finally:
            stepper.cancel()
            try:
                await stepper
            except asyncio.CancelledError:
                pass
            self._server.close()
            await self._server.wait_closed()
            self.run.shutdown(self._drain_reason)

    def request_drain(self, reason: str = "drained") -> None:
        """Finish the in-flight round, journal, and stop (idempotent)."""
        self._draining = True
        self._drain_reason = reason

    async def _stepper(self) -> None:
        """Advance the fleet one round at a time between request turns.

        A finished fleet keeps the server up (clients still need the
        final status/digests); only a drain request stops serving.
        """
        while not self._draining:
            if self.run.done:
                await asyncio.sleep(0.05)
                continue
            self.run.step_round()
            # Yield to the event loop (and pace the run for demos) so
            # requests interleave at round boundaries.
            await asyncio.sleep(self.step_delay)
        assert self._stopped is not None
        self._stopped.set()

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await asyncio.wait_for(
                self._serve_request(reader), timeout=self.request_timeout
            )
        except asyncio.TimeoutError:
            status, payload = 408, {"error": "request deadline exceeded"}
        except ConnectionError:
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 - fault barrier per request
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed",
                  408: "Request Timeout"}.get(status, "Error")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode("ascii") + body
        )
        try:
            await writer.drain()
        except ConnectionError:
            pass
        writer.close()

    async def _serve_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict[str, Any]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": f"malformed request line {request_line!r}"}
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)
        return self._route(method, path, body)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _route(self, method: str, path: str,
               body: bytes) -> Tuple[int, Dict[str, Any]]:
        if method == "GET":
            if path == "/status":
                return 200, self.run.status()
            if path == "/report":
                return 200, {"reports": [encode_message(r)
                                         for r in self.run.reports()]}
            if path == "/alerts":
                return 200, {"alerts": [encode_message(a)
                                        for a in self.run.alerts]}
            return 404, {"error": f"no such resource {path!r}"}
        if method != "POST":
            return 405, {"error": f"method {method} not allowed"}
        if path == "/dispatch":
            try:
                message = loads_message(body.decode("utf-8"))
            except (ProtocolError, UnicodeDecodeError) as exc:
                return 400, {"error": f"bad dispatch body: {exc}"}
            if not isinstance(message, DispatchCommand):
                return 400, {"error": "body must be a DispatchCommand"}
            receipt = self.run.dispatch(message)
            return 200, encode_message(receipt)
        if path in ("/pause", "/resume"):
            key = ""
            if body:
                try:
                    key = str(json.loads(body).get("idempotency_key", ""))
                except (ValueError, AttributeError):
                    return 400, {"error": "bad pause/resume body"}
            receipt = self.run.dispatch(DispatchCommand(
                command=path[1:], idempotency_key=key,
            ))
            return 200, encode_message(receipt)
        if path == "/snapshot":
            if self.run.journal is None:
                return 400, {"error": "run is not journaled"}
            manifest = self.run._rotate_snapshots()
            return 200, encode_message(manifest)
        if path == "/shutdown":
            self.request_drain("shutdown-request")
            return 200, {"draining": True, "rounds": self.run.rounds}
        return 404, {"error": f"no such resource {path!r}"}


def read_port_file(journal_dir: Path) -> int:
    """The port a journaled server bound to (written by :meth:`serve`)."""
    return int((Path(journal_dir) / PORT_FILE).read_text().strip())


def serve_run(run: ServiceRun, host: str = "127.0.0.1", port: int = 0,
              step_delay: float = 0.0) -> ServiceServer:
    """Blocking convenience wrapper: serve ``run`` until drained/finished."""
    server = ServiceServer(run, host=host, port=port, step_delay=step_delay)
    asyncio.run(server.serve())
    return server
