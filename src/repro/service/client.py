"""Control-plane client: bounded retries, seeded jitter, idempotency keys.

:class:`ServiceClient` talks to a :class:`~repro.service.server
.ServiceServer` over plain ``http.client``.  Every request gets a
per-attempt deadline and a bounded retry budget with seeded-jitter
exponential backoff (``random.Random(seed)`` — reproducible like
everything else in this repo).  Mutating calls carry idempotency keys
minted from a per-client counter and **reused across retries**, so a
dispatch whose response was lost on the wire applies exactly once when
redelivered — the server answers the retry with the original receipt,
marked ``duplicate``.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Dict, Optional

from repro.service.protocol import (
    DispatchCommand,
    DispatchReceipt,
    Message,
    decode_message,
    dumps_message,
)


class ServiceUnavailable(RuntimeError):
    """The server could not be reached within the retry budget."""


class ServiceClient:
    """HTTP client for one control-plane server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        retries: int = 5,
        timeout: float = 10.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        seed: int = 0,
        key_prefix: str = "client",
    ) -> None:
        self.host = host
        self.port = int(port)
        self.retries = int(retries)
        self.timeout = float(timeout)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._jitter = random.Random(seed)
        self._key_prefix = key_prefix
        self._key_counter = 0

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None) -> Dict[str, Any]:
        """One request with bounded retries and seeded-jitter backoff."""
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                delay = min(self.backoff_cap,
                            self.backoff_base * (2 ** (attempt - 1)))
                time.sleep(delay * (0.5 + self._jitter.random()))
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                connection.request(
                    method, path, body=body,
                    headers={"Content-Type": "application/json"}
                    if body else {},
                )
                response = connection.getresponse()
                payload = json.loads(response.read().decode("utf-8"))
                if response.status >= 500:
                    last_error = RuntimeError(
                        f"{method} {path} -> {response.status}: {payload}"
                    )
                    continue
                if response.status >= 400:
                    raise RuntimeError(
                        f"{method} {path} -> {response.status}: {payload}"
                    )
                return payload
            except (ConnectionError, OSError, http.client.HTTPException,
                    json.JSONDecodeError) as exc:
                last_error = exc
                continue
            finally:
                connection.close()
        raise ServiceUnavailable(
            f"{method} {path} failed after {self.retries + 1} attempts: "
            f"{last_error}"
        ) from last_error

    def next_idempotency_key(self) -> str:
        """Mint a fresh key; the SAME key must be reused across retries
        of one logical dispatch (``_request`` already does)."""
        self._key_counter += 1
        return f"{self._key_prefix}-{self._key_counter}"

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def status(self) -> Dict[str, Any]:
        return self._request("GET", "/status")

    def reports(self) -> list:
        payload = self._request("GET", "/report")
        return [decode_message(item) for item in payload["reports"]]

    def alerts(self) -> list:
        payload = self._request("GET", "/alerts")
        return [decode_message(item) for item in payload["alerts"]]

    def dispatch(self, command: DispatchCommand) -> DispatchReceipt:
        """Send one dispatch (an idempotency key is minted if missing)."""
        if not command.idempotency_key:
            import dataclasses

            command = dataclasses.replace(
                command, idempotency_key=self.next_idempotency_key()
            )
        payload = self._request(
            "POST", "/dispatch", dumps_message(command).encode("utf-8")
        )
        receipt = decode_message(payload)
        assert isinstance(receipt, DispatchReceipt)
        return receipt

    def restrict_space(self, device: str,
                       cap: Optional[int]) -> DispatchReceipt:
        return self.dispatch(DispatchCommand(
            command="restrict-space", device=device, value=cap,
        ))

    def set_policy(self, device: str, policy: str) -> DispatchReceipt:
        return self.dispatch(DispatchCommand(
            command="set-policy", device=device, value=policy,
        ))

    def pause(self) -> DispatchReceipt:
        return self.dispatch(DispatchCommand(command="pause"))

    def resume(self) -> DispatchReceipt:
        return self.dispatch(DispatchCommand(command="resume"))

    def snapshot(self) -> Message:
        return decode_message(self._request("POST", "/snapshot"))

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/shutdown")

    # ------------------------------------------------------------------ #
    # Waiting
    # ------------------------------------------------------------------ #
    def wait_rounds(self, rounds: int, timeout: float = 60.0,
                    poll: float = 0.05) -> Dict[str, Any]:
        """Poll ``/status`` until the run passes ``rounds`` (or is done)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status()
            if status["rounds"] >= rounds or status["done"]:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"run did not reach round {rounds} within {timeout}s "
                    f"(at {status['rounds']})"
                )
            time.sleep(poll)

    def wait_done(self, timeout: float = 120.0,
                  poll: float = 0.05) -> Dict[str, Any]:
        """Poll ``/status`` until the run finishes every trace."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status()
            if status["done"]:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(f"run not done within {timeout}s")
            time.sleep(poll)
