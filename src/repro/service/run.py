"""Journaled fleet runs: the control plane's crash-safe state machine.

:class:`ServiceRun` wraps a :class:`~repro.fleet.supervisor.FleetSupervisor`
with the durability and dispatch semantics of the control-plane service:

* **Journal-before-apply.**  Every accepted dispatch is stamped with the
  fleet round boundary it will apply at (``apply_round``) and appended to
  the run journal *before* it mutates anything; every completed fleet
  round appends a :class:`~repro.service.protocol.StepBoundary` record.
* **Snapshot rotation.**  Every ``snapshot_every`` rounds (and at round
  0), every session is written as a durable checksummed snapshot
  (:meth:`~repro.core.session.PolicySession.save_snapshot`, with
  engine-resident sessions snapshotted at their sequential-equivalent
  generator state), and a :class:`~repro.service.protocol
  .SnapshotManifest` naming the files and their sha256 digests is
  journaled once all of them are atomically published.
* **Recovery invariant.**  ``kill -9`` at any instant, then
  :meth:`ServiceRun.recover`: the fleet is rebuilt deterministically
  from the genesis config, sessions restore from the newest manifest
  whose files all verify, dispatches that applied before the restore
  point are re-applied (space caps; policy swaps are already inside the
  snapshots) and later ones are replayed at their recorded boundaries —
  so the completed run's per-device logs and energy accounts are
  **bitwise identical** to an uninterrupted run.  With journaling off
  (``journal_dir=None``) the run is bitwise identical to a bare
  :class:`~repro.fleet.engine.FleetEngine` /
  :class:`~repro.fleet.supervisor.FleetSupervisor` run — the control
  plane adds zero overhead to the hot loop.

The deterministic-replay scope matches the supervisor's own invariants:
it is proven for fault-free fleets (injected-fault bookkeeping —
fired faults, in-flight stalls — intentionally lives outside session
snapshots; a recovered faulted run still completes, but already-fired
faults do not re-fire).
"""

from __future__ import annotations

import dataclasses
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.control.policy import DRMPolicy, GovernorPolicy, StaticPolicy
from repro.core.session import PolicySession, SnapshotError
from repro.fleet.device import DeviceSpec
from repro.fleet.faults import FaultPlan, fault_from_dict
from repro.fleet.supervisor import DeviceHealth, FleetSupervisor
from repro.scenarios import available_scenarios, get_scenario
from repro.scenarios.runtime import make_space_schedule
from repro.service.journal import (
    Journal,
    JournalError,
    file_sha256,
    read_journal,
)
from repro.service.protocol import (
    DeviceRegistration,
    DispatchCommand,
    DispatchReceipt,
    ErrorReport,
    FlatlineAlert,
    Message,
    RunGenesis,
    ShutdownNotice,
    SnapshotManifest,
    StepBoundary,
    TelemetryReport,
)
from repro.soc.configuration import ConfigurationSpace
from repro.soc.governors import (
    InteractiveGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.soc.platform import odroid_xu3_like
from repro.soc.simulator import SoCSimulator
from repro.utils.rng import derive_seed, make_rng, stable_name_id
from repro.workloads.sequences import build_online_sequence
from repro.workloads.suites import unseen_workloads

#: Journal file name inside a run directory.
JOURNAL_FILE = "journal.bin"

#: Snapshot rotations kept on disk (older ones are pruned).
SNAPSHOT_ROTATIONS_KEPT = 2

#: Seed-stream key of every generator the service derives per device.
_SERVICE_STREAM = stable_name_id("service-fleet")

#: Policies the service can build by name (``set-policy`` dispatches are
#: restricted to these — swapping in an online-IL policy would need the
#: trained framework, which a recovered process cannot rebuild cheaply).
SWAPPABLE_POLICIES = ("static", "ondemand", "interactive", "performance",
                      "powersave")

_GOVERNORS = {
    "ondemand": OndemandGovernor,
    "interactive": InteractiveGovernor,
    "performance": PerformanceGovernor,
    "powersave": PowersaveGovernor,
}


def build_named_policy(name: str, space: ConfigurationSpace) -> DRMPolicy:
    """Construct one of the by-name policies over ``space``."""
    if name == "static":
        return StaticPolicy(space)
    governor = _GOVERNORS.get(name)
    if governor is None:
        raise ValueError(
            f"unknown policy {name!r}; expected one of {SWAPPABLE_POLICIES} "
            "or 'online-il'"
        )
    return GovernorPolicy(governor(space))


@dataclass(frozen=True)
class RunConfig:
    """Deterministic fleet-run configuration (the journal genesis payload).

    Everything recovery needs to rebuild the same fleet: the policy kind,
    the scale preset (trace length/training budget), the device count,
    the master seed, the scenario rotation and the snapshot cadence.
    ``faults`` optionally carries :func:`~repro.fleet.faults
    .fault_from_dict` payloads — those devices run scalar-supervised
    under the watchdog.
    """

    policy: str = "ondemand"
    scale: str = "tiny"
    n_devices: int = 4
    seed: int = 0
    scenarios: Tuple[str, ...] = ()
    snapshot_every: int = 5
    faults: Tuple[Dict[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError(f"n_devices must be >= 1, got {self.n_devices}")
        if self.snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}"
            )
        if (self.policy != "online-il"
                and self.policy not in SWAPPABLE_POLICIES):
            raise ValueError(f"unknown policy {self.policy!r}")
        unknown = set(self.scenarios) - set(available_scenarios())
        if unknown:
            raise ValueError(f"unknown scenarios {sorted(unknown)}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "scale": self.scale,
            "n_devices": self.n_devices,
            "seed": self.seed,
            "scenarios": list(self.scenarios),
            "snapshot_every": self.snapshot_every,
            "faults": [dict(f) for f in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunConfig":
        return cls(
            policy=payload["policy"],
            scale=payload["scale"],
            n_devices=int(payload["n_devices"]),
            seed=int(payload["seed"]),
            scenarios=tuple(payload.get("scenarios", ())),
            snapshot_every=int(payload.get("snapshot_every", 5)),
            faults=tuple(dict(f) for f in payload.get("faults", ())),
        )


def build_config_devices(
    config: RunConfig,
) -> Tuple[List[DeviceSpec], SoCSimulator, ConfigurationSpace]:
    """Deterministically lower a :class:`RunConfig` onto a device fleet.

    Calling this twice with equal configs produces fleets whose runs are
    bitwise identical — every trace, policy and noise stream is derived
    from ``config.seed`` through named streams, which is what makes
    journal recovery's fleet rebuild sound.
    """
    from repro.experiments.scales import get_scale

    scale = get_scale(config.scale)
    if config.policy == "online-il":
        from repro.experiments.common import build_trained_framework

        framework = build_trained_framework(scale, seed=config.seed)
        simulator = framework.simulator
        space = framework.space
    else:
        framework = None
        platform = odroid_xu3_like()
        space = ConfigurationSpace(platform)
        simulator = SoCSimulator(
            platform, noise_scale=0.02,
            seed=derive_seed(config.seed, (_SERVICE_STREAM, 3)),
        )
    rotation: List[Optional[str]] = [None]
    rotation.extend(config.scenarios)
    devices: List[DeviceSpec] = []
    for i in range(config.n_devices):
        sequence = build_online_sequence(
            specs=unseen_workloads(),
            snippet_factor=scale.sequence_snippet_factor,
            seed=derive_seed(config.seed, (_SERVICE_STREAM, 0, i)),
        )
        if framework is not None:
            policy: DRMPolicy = framework.build_online_il_policy(
                buffer_capacity=scale.buffer_capacity,
                update_epochs=scale.update_epochs,
                isolated=True,
            )
        else:
            policy = build_named_policy(config.policy, space)
        noise_rng = make_rng(derive_seed(config.seed, (_SERVICE_STREAM, 1, i)))
        name = f"device-{i:02d}"
        scenario_name = rotation[i % len(rotation)]
        if scenario_name is None:
            devices.append(DeviceSpec(
                name=name, policy=policy, snippets=sequence.snippets,
                rng=noise_rng,
            ))
        else:
            trace = get_scenario(scenario_name).apply(
                sequence.snippets,
                derive_seed(config.seed, (_SERVICE_STREAM, 2, i)),
            )
            devices.append(DeviceSpec(
                name=name, policy=policy, scenario=trace, rng=noise_rng,
            ))
    return devices, simulator, space


class _CapSchedule:
    """Space schedule composing dispatched OPP caps with a scenario schedule.

    Installed lazily on a session by the first ``restrict-space``
    dispatch it receives; from then on it stays installed (so the log's
    ``throttled`` column keeps being recorded even after the cap lifts,
    exactly as an uninterrupted run would).  ``base`` must be the
    session's own space object — identity comparisons in
    :meth:`~repro.core.session.PolicySession.decide` depend on it.
    :meth:`~repro.soc.configuration.ConfigurationSpace.restrict` memoises
    per base space, so the per-step call returns a cached object (and the
    base itself for a non-binding cap).
    """

    def __init__(self, base: ConfigurationSpace,
                 inner: Optional[Callable[[int], ConfigurationSpace]]) -> None:
        self.base = base
        self.inner = inner
        self.cap: Optional[int] = None

    def __call__(self, step: int) -> ConfigurationSpace:
        space = self.base if self.inner is None else self.inner(step)
        if self.cap is None:
            return space
        return space.restrict(max_opp_index=self.cap)


class ServiceRun:
    """One journaled (or journal-free) fleet run driven by the control plane.

    Use the :meth:`start` / :meth:`recover` constructors.  The run is
    stepped with :meth:`step_round` (dispatches apply at these
    boundaries) and accepts :class:`~repro.service.protocol
    .DispatchCommand` mutations through :meth:`dispatch`.
    """

    def __init__(
        self,
        devices: Sequence[DeviceSpec],
        simulator: SoCSimulator,
        space: ConfigurationSpace,
        config: Optional[RunConfig] = None,
        sessions: Optional[Sequence[PolicySession]] = None,
        journal: Optional[Journal] = None,
        journal_dir: Optional[Path] = None,
        snapshot_every: int = 5,
        rounds: int = 0,
    ) -> None:
        self.config = config
        self.devices = list(devices)
        self.simulator = simulator
        self.space = space
        self.journal = journal
        self.journal_dir = journal_dir
        self.snapshot_every = int(snapshot_every)
        self.rounds = int(rounds)
        self.paused = False
        self.alerts: List[FlatlineAlert] = []
        self.errors: List[ErrorReport] = []
        plan = None
        if config is not None and config.faults:
            plan = FaultPlan(faults=tuple(
                fault_from_dict(dict(payload)) for payload in config.faults
            ))
        self.supervisor = FleetSupervisor(
            self.devices, simulator, space, plan=plan,
            snapshot_every=self.snapshot_every, sessions=sessions,
        )
        self._device_of = {device.name: device for device in self.devices}
        self._policy_of = {device.name: device.policy.name
                           for device in self.devices}
        self._caps: Dict[str, _CapSchedule] = {}
        self._receipts: Dict[str, DispatchReceipt] = {}
        self._pending_dispatches: List[DispatchCommand] = []
        self._last_health: Dict[str, DeviceHealth] = \
            self.supervisor.health_map()

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def start(
        cls,
        config: Optional[RunConfig] = None,
        journal_dir: Optional[Union[str, Path]] = None,
        devices: Optional[Sequence[DeviceSpec]] = None,
        simulator: Optional[SoCSimulator] = None,
        space: Optional[ConfigurationSpace] = None,
        snapshot_every: Optional[int] = None,
        genesis_meta: Optional[Dict[str, Any]] = None,
    ) -> "ServiceRun":
        """Begin a fresh run (journaled when ``journal_dir`` is given).

        Either pass a :class:`RunConfig` (the fleet is built
        deterministically from it, and recovery can rebuild it from the
        journal alone) or a pre-built ``devices``/``simulator``/``space``
        fleet (external mode: :meth:`recover` must then be handed the
        same fleet again, rebuilt by the caller — the journal records
        ``genesis_meta`` so the caller can check what it was).
        """
        if config is not None:
            devices, simulator, space = build_config_devices(config)
            cadence = config.snapshot_every
            genesis: Dict[str, Any] = config.to_dict()
        else:
            if devices is None or simulator is None or space is None:
                raise ValueError(
                    "start() needs a RunConfig or devices+simulator+space"
                )
            cadence = snapshot_every if snapshot_every is not None else 5
            genesis = {"external": True, **(genesis_meta or {})}
        if snapshot_every is not None:
            cadence = snapshot_every
        journal = None
        journal_path: Optional[Path] = None
        if journal_dir is not None:
            journal_path = Path(journal_dir)
            journal = Journal(journal_path / JOURNAL_FILE, create=True)
        run = cls(devices, simulator, space, config=config, journal=journal,
                  journal_dir=journal_path, snapshot_every=cadence)
        if journal is not None:
            journal.append(RunGenesis(config=genesis))
            for device, session in zip(run.devices, run.supervisor.sessions):
                journal.append(DeviceRegistration(
                    device=device.name,
                    policy=device.policy.name,
                    trace_steps=len(session),
                    scenario=(device.scenario.scenario_name
                              if device.scenario is not None else ""),
                    supervised=device.name in set(
                        (run.supervisor.plan.device_names())
                    ),
                ))
            run._rotate_snapshots()
        return run

    @classmethod
    def recover(
        cls,
        journal_dir: Union[str, Path],
        devices: Optional[Sequence[DeviceSpec]] = None,
        simulator: Optional[SoCSimulator] = None,
        space: Optional[ConfigurationSpace] = None,
    ) -> "ServiceRun":
        """Rebuild a run from its journal after a crash (or clean exit).

        The fleet is rebuilt from the genesis config (or taken from the
        caller in external mode), sessions restore from the newest
        snapshot manifest whose files all verify (falling back to older
        manifests, and to a from-scratch replay when none survive), and
        journaled dispatches are re-applied/queued so the continued run
        is bitwise identical to an uninterrupted one.
        """
        journal_path = Path(journal_dir)
        messages, _truncated = read_journal(journal_path / JOURNAL_FILE)
        if not messages or not isinstance(messages[0], RunGenesis):
            raise JournalError(
                f"journal in {journal_path} has no genesis record"
            )
        genesis = messages[0].config
        config: Optional[RunConfig] = None
        if genesis.get("external"):
            if devices is None or simulator is None or space is None:
                raise ValueError(
                    "this journal belongs to an externally built fleet; "
                    "recover() must be handed the same "
                    "devices+simulator+space again"
                )
            cadence = int(genesis.get("snapshot_every", 5))
        else:
            config = RunConfig.from_dict(genesis)
            devices, simulator, space = build_config_devices(config)
            cadence = config.snapshot_every
        manifests = [m for m in messages if isinstance(m, SnapshotManifest)]
        dispatches = [m for m in messages if isinstance(m, DispatchCommand)]
        sessions: Optional[List[PolicySession]] = None
        restore_round = 0
        for manifest in reversed(manifests):
            try:
                sessions = cls._restore_manifest(
                    journal_path, manifest, devices, simulator
                )
            except (SnapshotError, JournalError, OSError):
                continue
            restore_round = manifest.round
            break
        journal = Journal(journal_path / JOURNAL_FILE)
        run = cls(devices, simulator, space, config=config,
                  sessions=sessions, journal=journal,
                  journal_dir=journal_path, snapshot_every=cadence,
                  rounds=restore_round)
        for command in dispatches:
            receipt = DispatchReceipt(
                idempotency_key=command.idempotency_key,
                apply_round=(command.apply_round or 0),
                status="accepted",
            )
            if command.idempotency_key:
                run._receipts[command.idempotency_key] = receipt
            if (command.apply_round or 0) < restore_round:
                run._reapply_past_dispatch(command)
            else:
                run._pending_dispatches.append(command)
        return run

    @staticmethod
    def _restore_manifest(
        journal_dir: Path,
        manifest: SnapshotManifest,
        devices: Sequence[DeviceSpec],
        simulator: SoCSimulator,
    ) -> List[PolicySession]:
        """Verify and load every session of one snapshot rotation.

        Each file's sha256 must match the manifest entry (bit rot raises
        :class:`JournalError`, sending recovery to an older manifest);
        scenario schedules are rebuilt over each restored session's own
        space, exactly like :meth:`~repro.core.session.PolicySession
        .restore` documents.
        """
        by_name = {entry[0]: entry for entry in manifest.files}
        sessions: List[PolicySession] = []
        for device in devices:
            entry = by_name.get(device.name)
            if entry is None:
                raise JournalError(
                    f"snapshot manifest for round {manifest.round} is "
                    f"missing device {device.name!r}"
                )
            _name, relative, digest = entry
            path = journal_dir / relative
            if file_sha256(path) != digest:
                raise JournalError(
                    f"snapshot {path} does not match its manifest sha256"
                )
            session = PolicySession.load_snapshot(path, simulator)
            if device.scenario is not None:
                session.space_schedule = make_space_schedule(
                    session.space, device.scenario
                )
            sessions.append(session)
        return sessions

    # ------------------------------------------------------------------ #
    # Stepping and snapshots
    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        return self.supervisor.done

    def step_round(self) -> int:
        """Apply due dispatches, advance one lockstep round, journal it."""
        self._apply_due_dispatches()
        if self.paused or self.done:
            return 0
        advanced = self.supervisor.step_round()
        self.rounds += 1
        if self.journal is not None:
            self.journal.append(StepBoundary(round=self.rounds,
                                             advanced=advanced))
        self._scan_flatlines()
        if self.journal is not None and (
                self.rounds % self.snapshot_every == 0 or self.done):
            self._rotate_snapshots()
        return advanced

    def run_to_completion(self) -> None:
        """Step until every device finished (stops early when paused)."""
        while not self.done:
            advanced = self.step_round()
            if advanced == 0 and self.paused:
                break
            if advanced == 0 and not self.done:  # pragma: no cover - guard
                break

    def shutdown(self, reason: str = "sigterm") -> None:
        """Graceful drain: final snapshot rotation + shutdown record."""
        if self.journal is not None:
            self._rotate_snapshots()
            self.journal.append(ShutdownNotice(round=self.rounds,
                                               reason=reason))
            self.journal.close()

    def _rotate_snapshots(self) -> SnapshotManifest:
        """Write one durable snapshot per session, then journal the manifest.

        Every file is atomically published (temp + rename) *before* the
        manifest record is appended, so a manifest in the journal always
        names a complete rotation.  Older rotations are pruned afterwards
        — their manifests remain in the journal and recovery simply skips
        manifests whose files are gone.
        """
        assert self.journal is not None and self.journal_dir is not None
        rotation_dir = (self.journal_dir / "snapshots"
                        / f"round-{self.rounds:08d}")
        files: List[Tuple[str, str, str]] = []
        for device, session in zip(self.devices, self.supervisor.sessions):
            path = rotation_dir / f"{device.name}.snapshot"
            session.save_snapshot(
                path, rng=self.supervisor.sequential_rng_state(session)
            )
            files.append((
                device.name,
                str(path.relative_to(self.journal_dir)),
                file_sha256(path),
            ))
        manifest = SnapshotManifest(round=self.rounds, files=tuple(files))
        self.journal.append(manifest)
        self._prune_snapshots()
        return manifest

    def _prune_snapshots(self) -> None:
        assert self.journal_dir is not None
        root = self.journal_dir / "snapshots"
        rotations = sorted(path for path in root.iterdir() if path.is_dir())
        for stale in rotations[:-SNAPSHOT_ROTATIONS_KEPT]:
            shutil.rmtree(stale, ignore_errors=True)

    # ------------------------------------------------------------------ #
    # Dispatches
    # ------------------------------------------------------------------ #
    def dispatch(self, command: DispatchCommand) -> DispatchReceipt:
        """Accept one control mutation (journal-before-apply, idempotent).

        A command whose ``idempotency_key`` was seen before returns the
        original receipt without journaling or queueing anything — a
        redelivered dispatch applies exactly once.  Accepted commands are
        stamped with the next round boundary, journaled, and applied at
        that boundary by :meth:`step_round`.
        """
        key = command.idempotency_key
        if key and key in self._receipts:
            return dataclasses.replace(self._receipts[key],
                                       status="duplicate")
        problem = self._validate_dispatch(command)
        if problem is not None:
            self.errors.append(ErrorReport(context="dispatch",
                                           message=problem))
            return DispatchReceipt(idempotency_key=key, apply_round=-1,
                                   status="rejected", detail=problem)
        stamped = dataclasses.replace(command, apply_round=self.rounds)
        if self.journal is not None:
            self.journal.append(stamped)
        self._pending_dispatches.append(stamped)
        receipt = DispatchReceipt(idempotency_key=key,
                                  apply_round=self.rounds,
                                  status="accepted")
        if key:
            self._receipts[key] = receipt
        return receipt

    def _validate_dispatch(self, command: DispatchCommand) -> Optional[str]:
        if command.command in ("restrict-space", "set-policy"):
            if command.device not in self._device_of:
                return f"unknown device {command.device!r}"
        if command.command == "restrict-space":
            if command.value is not None and not isinstance(command.value,
                                                            int):
                return "restrict-space value must be an int cap or null"
            if isinstance(command.value, int) and command.value < 0:
                return "restrict-space cap must be >= 0"
        if command.command == "set-policy":
            if command.value not in SWAPPABLE_POLICIES:
                return (f"set-policy value must be one of "
                        f"{SWAPPABLE_POLICIES}, got {command.value!r}")
        return None

    def _apply_due_dispatches(self) -> None:
        due = [c for c in self._pending_dispatches
               if (c.apply_round or 0) <= self.rounds]
        if not due:
            return
        self._pending_dispatches = [
            c for c in self._pending_dispatches
            if (c.apply_round or 0) > self.rounds
        ]
        for command in due:
            self._apply_dispatch(command)

    def _apply_dispatch(self, command: DispatchCommand) -> None:
        if command.command == "pause":
            self.paused = True
        elif command.command == "resume":
            self.paused = False
        elif command.command == "restrict-space":
            self._set_cap(command.device, command.value)
        elif command.command == "set-policy":
            session = self.supervisor.session_named(command.device)
            policy = build_named_policy(command.value, session.space)
            previous = getattr(session.policy, "current", None)
            policy.reset(previous if previous is not None
                         and session.space.contains(previous) else None)
            self.supervisor.replace_policy(command.device, policy)
            self._policy_of[command.device] = policy.name

    def _reapply_past_dispatch(self, command: DispatchCommand) -> None:
        """Re-establish the effect of a dispatch applied before the restore
        point.

        Space caps live in the (never-snapshotted) space schedule, so
        they are re-applied; policy swaps are already inside the restored
        session snapshots (re-applying would reset learned/governor
        state), so only the bookkeeping is updated; pause/resume folds to
        the last-wins flag.
        """
        if command.command == "pause":
            self.paused = True
        elif command.command == "resume":
            self.paused = False
        elif command.command == "restrict-space":
            self._set_cap(command.device, command.value)
        elif command.command == "set-policy":
            self._policy_of[command.device] = \
                self.supervisor.session_named(command.device).policy.name

    def _set_cap(self, device: str, cap: Optional[int]) -> None:
        schedule = self._caps.get(device)
        if schedule is None:
            session = self.supervisor.session_named(device)
            schedule = _CapSchedule(session.space, session.space_schedule)
            session.space_schedule = schedule
            self._caps[device] = schedule
        schedule.cap = cap

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def _scan_flatlines(self) -> None:
        """Emit a FlatlineAlert on every DEGRADED/QUARANTINED transition.

        Alerts are derived state (the supervisor's watchdog recomputes
        them deterministically on replay), so they are reported, not
        journaled.
        """
        current = self.supervisor.health_map()
        for name, health in current.items():
            if health is self._last_health.get(name):
                continue
            if health in (DeviceHealth.DEGRADED, DeviceHealth.QUARANTINED):
                supervised = self.supervisor._by_name.get(name)
                stalled = (supervised.no_progress_rounds
                           if supervised is not None else 0)
                self.alerts.append(FlatlineAlert(
                    device=name, round=self.rounds,
                    stalled_rounds=stalled, health=health.value,
                ))
        self._last_health = current

    def digests(self) -> Dict[str, str]:
        """Per-device state digests (the recovery-invariant equality)."""
        return {device.name: session.state_digest()
                for device, session in zip(self.devices,
                                           self.supervisor.sessions)}

    def reports(self) -> List[TelemetryReport]:
        """One telemetry report per device, in input order."""
        health = self.supervisor.health_map()
        out: List[TelemetryReport] = []
        for device, session in zip(self.devices, self.supervisor.sessions):
            out.append(TelemetryReport(
                device=device.name,
                round=self.rounds,
                steps_completed=session.step_index,
                trace_steps=len(session),
                health=health[device.name].value,
                total_energy_j=session.account.total_energy_j,
                total_time_s=session.account.total_time_s,
                state_digest=session.state_digest(),
            ))
        return out

    def status(self) -> Dict[str, Any]:
        """JSON-friendly run status (the ``GET /status`` payload)."""
        health = self.supervisor.health_map()
        return {
            "rounds": self.rounds,
            "done": self.done,
            "paused": self.paused,
            "journaled": self.journal is not None,
            "config": self.config.to_dict() if self.config is not None
            else {"external": True},
            "pending_dispatches": len(self._pending_dispatches),
            "alerts": len(self.alerts),
            "devices": [
                {
                    "name": device.name,
                    "policy": self._policy_of[device.name],
                    "health": health[device.name].value,
                    "steps_completed": session.step_index,
                    "trace_steps": len(session),
                    "digest": session.state_digest(),
                }
                for device, session in zip(self.devices,
                                           self.supervisor.sessions)
            ],
        }

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()
