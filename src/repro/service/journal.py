"""Durable run journal: append-only, fsync'd, sha256-framed records.

The journal is the crash-safety substrate of the control plane.  Every
record is one protocol message (:mod:`repro.service.protocol`) framed as::

    [4-byte big-endian payload length][32-byte sha256(payload)][payload]

where the payload is the message's canonical JSON encoding.  Appends are
``write + flush + fsync`` so an acknowledged record survives ``kill -9``
at any later instant.  The file opens with an 8-byte magic header
identifying the format version.

Read semantics distinguish the two corruption classes a recovery must
treat differently:

* **Torn tail** — the process died mid-append: the final frame is
  incomplete (short header/payload) or fails its checksum *and* extends
  to end-of-file.  The tail is discarded and reading succeeds with
  ``truncated=True``; everything before the torn frame was fsync'd and
  is intact.
* **Mid-file corruption** — a checksum mismatch with more bytes after
  the frame (bit rot, external truncation + append).  That journal is
  untrustworthy as a whole: :class:`JournalError` is raised with the
  frame offset, mirroring the ``SnapshotError`` diagnostics of
  :meth:`~repro.core.session.PolicySession.unpack_snapshot`.
"""

from __future__ import annotations

import hashlib
import os
import struct
from pathlib import Path
from typing import List, Tuple, Union

from repro.service.protocol import (
    Message,
    ProtocolError,
    dumps_message,
    loads_message,
)

#: Leading magic of journal files (identifies format + framing version).
JOURNAL_MAGIC = b"RPJRNL01"

_LEN = struct.Struct(">I")
_DIGEST_SIZE = 32
_FRAME_HEADER = _LEN.size + _DIGEST_SIZE


class JournalError(RuntimeError):
    """A journal file failed verification (unrecoverable corruption)."""


class Journal:
    """Append-only message log with per-record durability.

    Opening an existing journal seeks to its end (verifying the magic);
    ``create=True`` requires the file to not exist yet.  :meth:`append`
    frames, writes and fsyncs one message — when it returns, the record
    is durable.
    """

    def __init__(self, path: Union[str, Path], create: bool = False) -> None:
        self.path = Path(path)
        if create:
            if self.path.exists():
                raise JournalError(f"journal {self.path} already exists")
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "xb")
            self._handle.write(JOURNAL_MAGIC)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        else:
            if not self.path.exists():
                raise JournalError(f"journal {self.path} does not exist")
            data = self.path.read_bytes()
            if data[:len(JOURNAL_MAGIC)] != JOURNAL_MAGIC:
                raise JournalError(f"{self.path} is not a journal (bad magic)")
            # Truncate any torn tail before appending: a record written
            # after torn bytes would turn a recoverable crash artefact
            # into mid-file corruption on the next read.  Raises on
            # mid-file corruption — such a journal must not be extended.
            valid_end = _valid_prefix_length(self.path, data)
            if valid_end < len(data):
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid_end)
                    handle.flush()
                    os.fsync(handle.fileno())
            self._handle = open(self.path, "ab")

    def append(self, message: Message) -> None:
        """Frame, write and fsync one record (durable once returned)."""
        payload = dumps_message(message).encode("utf-8")
        frame = (_LEN.pack(len(payload))
                 + hashlib.sha256(payload).digest()
                 + payload)
        self._handle.write(frame)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _valid_prefix_length(path: Path, data: bytes) -> int:
    """Byte offset of the end of the last intact frame in ``data``.

    Walks the frames exactly like :func:`read_journal`; a torn tail
    yields the offset where it starts (so callers can truncate it), and
    mid-file corruption raises :class:`JournalError`.
    """
    offset = len(JOURNAL_MAGIC)
    size = len(data)
    while offset < size:
        if offset + _FRAME_HEADER > size:
            return offset
        (length,) = _LEN.unpack_from(data, offset)
        digest = data[offset + _LEN.size:offset + _FRAME_HEADER]
        start = offset + _FRAME_HEADER
        end = start + length
        if end > size:
            return offset
        if hashlib.sha256(data[start:end]).digest() != digest:
            if end == size:
                return offset
            raise JournalError(
                f"journal {path}: record at offset {offset} failed its "
                "checksum with records following it (mid-file corruption)"
            )
        offset = end
    return offset


def read_journal(path: Union[str, Path]) -> Tuple[List[Message], bool]:
    """Read every intact record of a journal file.

    Returns ``(messages, truncated)`` where ``truncated`` reports a
    discarded torn tail (crash mid-append).  Raises :class:`JournalError`
    for a bad magic, mid-file corruption, or an undecodable (yet
    checksum-valid) payload — those indicate bit rot or a foreign file,
    not a torn write.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise JournalError(f"journal {path} unreadable: {exc}") from exc
    if data[:len(JOURNAL_MAGIC)] != JOURNAL_MAGIC:
        raise JournalError(f"{path} is not a journal (bad magic)")
    messages: List[Message] = []
    offset = len(JOURNAL_MAGIC)
    size = len(data)
    while offset < size:
        if offset + _FRAME_HEADER > size:
            return messages, True  # torn frame header at EOF
        (length,) = _LEN.unpack_from(data, offset)
        digest = data[offset + _LEN.size:offset + _FRAME_HEADER]
        start = offset + _FRAME_HEADER
        end = start + length
        if end > size:
            return messages, True  # torn payload at EOF
        payload = data[start:end]
        if hashlib.sha256(payload).digest() != digest:
            if end == size:
                return messages, True  # checksum-failed final frame: torn
            raise JournalError(
                f"journal {path}: record at offset {offset} failed its "
                "checksum with records following it (mid-file corruption)"
            )
        try:
            messages.append(loads_message(payload.decode("utf-8")))
        except (ProtocolError, UnicodeDecodeError) as exc:
            raise JournalError(
                f"journal {path}: record at offset {offset} is "
                f"checksum-valid but undecodable: {exc}"
            ) from exc
        offset = end
    return messages, False


def file_sha256(path: Union[str, Path]) -> str:
    """Hex sha256 of a file's bytes (snapshot manifest entries)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()
