"""Crash-safe fleet control plane: protocol, journal, server, client.

The service layer turns the batch-only session/fleet/supervisor stack into
a long-running, restart-surviving control plane (the gridworks-scada
precedent: typed ``named_types``-style messages, periodic report/snapshot
telemetry, dispatch of policy or space-restriction changes, flatline
watchdogs):

* :mod:`repro.service.protocol` — versioned frozen-dataclass messages
  with strict JSON round-trip serialization.
* :mod:`repro.service.journal` — append-only, fsync'd, sha256-framed
  record log plus atomic snapshot rotation; the durability substrate of
  the ``kill -9`` recovery invariant.
* :mod:`repro.service.run` — :class:`~repro.service.run.ServiceRun`, the
  journaled fleet run: every accepted dispatch and every fleet round
  boundary is journaled before it is applied, so recovery replays to a
  state bitwise identical to an uninterrupted run.
* :mod:`repro.service.server` / :mod:`repro.service.client` — a stdlib
  asyncio JSON-over-HTTP server (start/pause/snapshot/resume/dispatch/
  status/report, graceful SIGTERM drain) and a bounded-retry client with
  seeded-jitter backoff and exactly-once idempotency keys.

``python -m repro.service`` exposes serve/status/dispatch plus a
``demo`` subcommand that kills the server with SIGKILL mid-run, resumes
from the journal, and checks the recovered fleet against an
uninterrupted reference digest for digest.
"""

from repro.service.journal import Journal, JournalError
from repro.service.protocol import (
    DeviceRegistration,
    DispatchCommand,
    DispatchReceipt,
    ErrorReport,
    FlatlineAlert,
    Message,
    ProtocolError,
    RunGenesis,
    ShutdownNotice,
    SnapshotManifest,
    SnapshotRequest,
    StepBoundary,
    TelemetryReport,
    decode_message,
    encode_message,
)
from repro.service.run import RunConfig, ServiceRun

__all__ = [
    "DeviceRegistration",
    "DispatchCommand",
    "DispatchReceipt",
    "ErrorReport",
    "FlatlineAlert",
    "Journal",
    "JournalError",
    "Message",
    "ProtocolError",
    "RunConfig",
    "RunGenesis",
    "ServiceRun",
    "ShutdownNotice",
    "SnapshotManifest",
    "SnapshotRequest",
    "StepBoundary",
    "TelemetryReport",
    "decode_message",
    "encode_message",
]
