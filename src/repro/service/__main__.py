"""``python -m repro.service`` — control-plane CLI.

Subcommands:

* ``serve``     — start (or ``--resume``) a journaled fleet run server.
* ``status``    — print a running server's ``/status`` payload.
* ``dispatch``  — send one control command to a running server.
* ``demo``      — the full crash-safety exercise: start a journaled
  server in a subprocess, drive it with dispatches over HTTP, ``kill
  -9`` it mid-run, restart with ``--resume``, wait for completion, and
  compare every device's state digest against an uninterrupted
  in-process reference run.  Exits nonzero on any mismatch — this is
  what the CI ``control-plane`` job runs.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.protocol import DispatchCommand
from repro.service.run import RunConfig, ServiceRun
from repro.service.server import PORT_FILE, ServiceServer, read_port_file


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Crash-safe fleet control-plane service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="start (or resume) a fleet server")
    serve.add_argument("--journal", type=Path, required=True,
                       help="run directory (journal + snapshots)")
    serve.add_argument("--resume", action="store_true",
                       help="recover from an existing journal instead of "
                            "starting fresh")
    serve.add_argument("--policy", default="ondemand")
    serve.add_argument("--scale", default="tiny")
    serve.add_argument("--devices", type=int, default=4)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--scenario", action="append", default=[],
                       dest="scenarios", metavar="NAME",
                       help="scenario rotation entry (repeatable)")
    serve.add_argument("--snapshot-every", type=int, default=5)
    serve.add_argument("--step-delay", type=float, default=0.0,
                       help="seconds to sleep between fleet rounds")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 binds an ephemeral port (recorded in "
                            f"<journal>/{PORT_FILE})")

    for name, help_text in (("status", "print a running server's status"),
                            ("dispatch", "send one control command")):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--journal", type=Path, default=None,
                         help=f"read the port from <journal>/{PORT_FILE}")
        cmd.add_argument("--host", default="127.0.0.1")
        cmd.add_argument("--port", type=int, default=0)
        if name == "dispatch":
            cmd.add_argument("action",
                             choices=("pause", "resume", "restrict-space",
                                      "set-policy"))
            cmd.add_argument("--device", default="")
            cmd.add_argument("--value", default=None,
                             help="cap index / policy name (omit or 'none' "
                                  "to lift a cap)")

    demo = sub.add_parser(
        "demo", help="kill -9 + resume crash-safety demonstration"
    )
    demo.add_argument("--policy", default="ondemand")
    demo.add_argument("--scale", default="tiny")
    demo.add_argument("--devices", type=int, default=3)
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--snapshot-every", type=int, default=3)
    demo.add_argument("--kill-after-rounds", type=int, default=6)
    demo.add_argument("--journal", type=Path, default=None,
                      help="run directory (a temp dir by default)")
    demo.add_argument("--keep", action="store_true",
                      help="keep the journal directory afterwards")
    return parser


def _resolve_port(args: argparse.Namespace) -> int:
    if args.port:
        return args.port
    if args.journal is not None:
        return read_port_file(args.journal)
    raise SystemExit("need --port or --journal to locate the server")


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    if args.resume:
        run = ServiceRun.recover(args.journal)
        print(f"resumed from {args.journal} at round {run.rounds}",
              file=sys.stderr)
    else:
        config = RunConfig(
            policy=args.policy, scale=args.scale, n_devices=args.devices,
            seed=args.seed, scenarios=tuple(args.scenarios),
            snapshot_every=args.snapshot_every,
        )
        run = ServiceRun.start(config=config, journal_dir=args.journal)
        print(f"started journaled run in {args.journal}", file=sys.stderr)
    server = ServiceServer(run, host=args.host, port=args.port,
                           step_delay=args.step_delay)
    asyncio.run(server.serve())
    print(f"drained at round {run.rounds} (done={run.done})",
          file=sys.stderr)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    client = ServiceClient(host=args.host, port=_resolve_port(args))
    print(json.dumps(client.status(), indent=2, sort_keys=True))
    return 0


def _cmd_dispatch(args: argparse.Namespace) -> int:
    client = ServiceClient(host=args.host, port=_resolve_port(args))
    value: Optional[object] = args.value
    if args.action == "restrict-space":
        value = None if value in (None, "none", "None") else int(value)
    receipt = client.dispatch(DispatchCommand(
        command=args.action, device=args.device, value=value,
    ))
    print(json.dumps({
        "status": receipt.status, "apply_round": receipt.apply_round,
        "detail": receipt.detail,
    }, sort_keys=True))
    return 0 if receipt.status in ("accepted", "duplicate") else 1


def _spawn_server(journal: Path, args: argparse.Namespace,
                  resume: bool) -> subprocess.Popen:
    command: List[str] = [
        sys.executable, "-m", "repro.service", "serve",
        "--journal", str(journal),
        "--step-delay", "0.05",
    ]
    if resume:
        command.append("--resume")
    else:
        command += [
            "--policy", args.policy, "--scale", args.scale,
            "--devices", str(args.devices), "--seed", str(args.seed),
            "--snapshot-every", str(args.snapshot_every),
        ]
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(command, env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def _wait_for_port(journal: Path, process: subprocess.Popen,
                   timeout: float = 60.0) -> int:
    deadline = time.monotonic() + timeout
    port_file = journal / PORT_FILE
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise SystemExit(
                f"server exited early with code {process.returncode}"
            )
        if port_file.exists():
            text = port_file.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.05)
    raise SystemExit("server did not publish its port in time")


def _cmd_demo(args: argparse.Namespace) -> int:
    config = RunConfig(
        policy=args.policy, scale=args.scale, n_devices=args.devices,
        seed=args.seed, snapshot_every=args.snapshot_every,
    )

    journal = args.journal or Path(tempfile.mkdtemp(prefix="repro-demo-"))
    journal = Path(journal)
    print(f"[demo] journal directory: {journal}", file=sys.stderr)

    print("[demo] phase 1: serve, dispatch over HTTP, then kill -9",
          file=sys.stderr)
    server = _spawn_server(journal, args, resume=False)
    try:
        port = _wait_for_port(journal, server)
        client = ServiceClient(port=port, key_prefix="demo")
        client.wait_rounds(2)
        receipt = client.dispatch(DispatchCommand(
            command="restrict-space", device="device-00", value=1,
            idempotency_key="demo-cap",
        ))
        cap_round = receipt.apply_round
        print(f"[demo] dispatch receipt: {receipt.status} "
              f"@ round {cap_round}", file=sys.stderr)
        client.wait_rounds(max(args.kill_after_rounds, cap_round + 1))
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)
        print(f"[demo] killed server (SIGKILL) after round "
              f">= {args.kill_after_rounds}", file=sys.stderr)
    except BaseException:
        server.kill()
        raise

    print("[demo] phase 2: restart with --resume, run to completion",
          file=sys.stderr)
    (journal / PORT_FILE).unlink(missing_ok=True)
    server = _spawn_server(journal, args, resume=True)
    try:
        port = _wait_for_port(journal, server)
        client = ServiceClient(port=port, key_prefix="demo2")
        status = client.wait_done(timeout=300.0)
        digests = {device["name"]: device["digest"]
                   for device in status["devices"]}
        client.shutdown()
        server.wait(timeout=30)
    except BaseException:
        server.kill()
        raise
    if server.returncode != 0:
        print(f"[demo] FAIL: resumed server exited {server.returncode}",
              file=sys.stderr)
        return 1

    print("[demo] phase 3: uninterrupted in-process reference applying "
          f"the same dispatch at round {cap_round}", file=sys.stderr)
    reference = ServiceRun.start(config=config)
    while not reference.done:
        if reference.rounds == cap_round:
            reference.dispatch(DispatchCommand(
                command="restrict-space", device="device-00", value=1,
                idempotency_key="demo-cap",
            ))
        reference.step_round()
    expected = reference.digests()

    mismatched = {name for name in expected
                  if digests.get(name) != expected[name]}
    if mismatched:
        print(f"[demo] FAIL: digests diverged for {sorted(mismatched)}",
              file=sys.stderr)
        return 1
    print(f"[demo] OK: {len(expected)} devices bitwise identical to the "
          "uninterrupted reference after kill -9 + resume",
          file=sys.stderr)
    if not args.keep and args.journal is None:
        import shutil

        shutil.rmtree(journal, ignore_errors=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {"serve": _cmd_serve, "status": _cmd_status,
                "dispatch": _cmd_dispatch, "demo": _cmd_demo}
    try:
        return handlers[args.command](args)
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
