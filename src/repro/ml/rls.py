"""Recursive least squares (RLS) with exponential forgetting.

This is the core online-learning primitive of Section III-B: power and
performance models (e.g. the GPU frame-time model of Fig. 2) are linear in a
small set of performance-counter features and are updated after every sample
with an exponential forgetting factor so the model tracks workload changes.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ml.base import OnlineRegressor, as_2d


class RecursiveLeastSquares(OnlineRegressor):
    """RLS estimator ``y ≈ w.x (+ b)`` with exponential forgetting.

    Parameters
    ----------
    n_features:
        Dimensionality of the input feature vector (excluding intercept).
    forgetting_factor:
        λ in (0, 1]; smaller values forget old samples faster.  The paper's
        GPU model [12] uses an exponential forgetting factor; λ=1 recovers
        ordinary recursive least squares.
    delta:
        Initial covariance scale (P = delta * I).  Larger values mean less
        confidence in the initial weights.
    fit_intercept:
        If True an intercept term is appended internally.
    initial_weights:
        Optional initial weight vector (length ``n_features`` or
        ``n_features + 1`` when an intercept is fitted), used when a model
        trained offline bootstraps the online estimator.
    """

    def __init__(
        self,
        n_features: int,
        forgetting_factor: float = 0.98,
        delta: float = 100.0,
        fit_intercept: bool = True,
        initial_weights: Optional[np.ndarray] = None,
    ) -> None:
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        if not 0.0 < forgetting_factor <= 1.0:
            raise ValueError(
                f"forgetting_factor must be in (0, 1], got {forgetting_factor}"
            )
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.n_features = int(n_features)
        self.forgetting_factor = float(forgetting_factor)
        self.fit_intercept = bool(fit_intercept)
        self._dim = self.n_features + (1 if self.fit_intercept else 0)
        self.covariance = np.eye(self._dim) * float(delta)
        if initial_weights is None:
            self.weights = np.zeros(self._dim)
        else:
            init = np.asarray(initial_weights, dtype=float).ravel()
            if init.shape[0] == self.n_features and self.fit_intercept:
                init = np.append(init, 0.0)
            if init.shape[0] != self._dim:
                raise ValueError(
                    f"initial_weights has length {init.shape[0]}, expected {self._dim}"
                )
            self.weights = init.copy()
        self.n_updates = 0
        self.last_error = 0.0
        self.last_gain: Optional[np.ndarray] = None

    def _augment(self, features: np.ndarray) -> np.ndarray:
        row = np.asarray(features, dtype=float).ravel()
        if row.shape[0] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {row.shape[0]}"
            )
        if self.fit_intercept:
            row = np.append(row, 1.0)
        return row

    def predict_one(self, features: np.ndarray) -> float:
        """Predict the target for a single feature vector."""
        return float(self._augment(features) @ self.weights)

    def predict(self, features: np.ndarray) -> np.ndarray:
        data = as_2d(features)
        return np.array([self.predict_one(row) for row in data])

    def predict_batch(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for an ``(n_samples, n_features)`` matrix.

        One matmul over the whole candidate batch — this is what turns the
        online-IL runtime Oracle's per-candidate prediction loop into a
        single array operation.  Equivalent to :meth:`predict_one` per row
        up to the usual BLAS summation-order round-off (well below 1e-12
        relative); :meth:`predict` remains the exact scalar reference.
        """
        data = as_2d(np.asarray(features, dtype=float))
        if data.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {data.shape[1]}"
            )
        if self.fit_intercept:
            return data @ self.weights[:-1] + self.weights[-1]
        return data @ self.weights

    def update(self, features: np.ndarray, target: float) -> float:
        """One RLS update; returns the a-priori prediction error."""
        x = self._augment(features)
        lam = self.forgetting_factor
        prediction = float(x @ self.weights)
        error = float(target) - prediction
        px = self.covariance @ x
        denom = lam + float(x @ px)
        gain = px / denom
        self.weights = self.weights + gain * error
        self.covariance = (self.covariance - np.outer(gain, px)) / lam
        # Keep the covariance symmetric in the presence of round-off.
        self.covariance = 0.5 * (self.covariance + self.covariance.T)
        self.n_updates += 1
        self.last_error = error
        self.last_gain = gain
        return error

    @property
    def coef_(self) -> np.ndarray:
        """Weight vector excluding the intercept term."""
        if self.fit_intercept:
            return self.weights[:-1].copy()
        return self.weights.copy()

    @property
    def intercept_(self) -> float:
        return float(self.weights[-1]) if self.fit_intercept else 0.0

    def reset_covariance(self, delta: float = 100.0) -> None:
        """Re-inflate the covariance (used after detected workload changes)."""
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.covariance = np.eye(self._dim) * float(delta)


def rls_update_fleet(
    models: Sequence[RecursiveLeastSquares],
    features: np.ndarray,
    targets: np.ndarray,
    state: Optional[dict] = None,
) -> np.ndarray:
    """N independent rank-1 RLS updates as stacked matmuls.

    ``models[d]`` consumes ``(features[d], targets[d])`` exactly as its own
    :meth:`RecursiveLeastSquares.update` would — same gain, same weight and
    covariance result, bitwise.  The batch stacks the per-model precision
    matrices into one ``(devices, dim, dim)`` tensor and replaces the N
    gemv/ddot/outer calls per step with stacked ``np.matmul`` and broadcast
    products; per-slice BLAS dispatch makes each device's arithmetic
    identical to the scalar loop (``np.einsum`` would not be — its private
    summation kernels round differently).  The scalar :meth:`update` stays
    the equivalence reference.

    Models must be distinct objects sharing ``n_features``/``fit_intercept``
    (forgetting factors may differ).  Returns the per-model a-priori errors.

    ``state`` (an initially empty dict the caller keeps between steps)
    carries the stacked weight/precision tensors across calls: each call's
    output stacks become the next call's inputs, with per-model array
    *identity* revalidated so any model a scalar :meth:`update` rebound in
    between is re-copied into its row.  Same arithmetic, no per-step
    re-stacking or re-validation on the steady path.
    """
    if not models:
        raise ValueError("rls_update_fleet needs at least one model")
    n_models = len(models)
    first = models[0]
    n_features, dim = first.n_features, first._dim
    fit_intercept = first.fit_intercept
    cached = (
        state is not None
        and state.get("models") is not None
        and len(state["models"]) == n_models
        and all(m is c for m, c in zip(models, state["models"]))
    )
    if not cached:
        # Object set (identity hash, strong refs) — with every model
        # simultaneously alive, two set members are the same object iff
        # they really are shared; id() values can alias after GC.
        seen = set()
        for model in models:
            if (model.n_features != n_features
                    or model.fit_intercept != fit_intercept):
                raise ValueError("fleet RLS update requires homogeneous models")
            if model in seen:
                raise ValueError(
                    "fleet RLS update requires distinct model instances (a "
                    "shared model must take its updates sequentially)"
                )
            seen.add(model)
    data = as_2d(np.asarray(features, dtype=float))
    if data.shape != (n_models, n_features):
        raise ValueError(
            f"expected features of shape {(n_models, n_features)}, "
            f"got {data.shape}"
        )
    if fit_intercept:
        x = np.concatenate([data, np.ones((n_models, 1))], axis=1)
    else:
        x = data
    if cached:
        lam = state["lam"]
        weights = state["weights"]
        precision = state["precision"]
        w_views = state["w_views"]
        p_views = state["p_views"]
        for i, model in enumerate(models):
            if model.weights is not w_views[i]:
                weights[i] = model.weights
            if model.covariance is not p_views[i]:
                precision[i] = model.covariance
    else:
        lam = np.array([model.forgetting_factor for model in models])
        weights = np.stack([model.weights for model in models])
        precision = np.stack([model.covariance for model in models])
    x_col = x[:, :, None]
    x_row = x[:, None, :]
    prediction = np.matmul(x_row, weights[:, :, None])[:, 0, 0]
    error = np.asarray(targets, dtype=float) - prediction
    px = np.matmul(precision, x_col)[:, :, 0]
    denom = lam + np.matmul(x_row, px[:, :, None])[:, 0, 0]
    gain = px / denom[:, None]
    new_weights = weights + gain * error[:, None]
    new_precision = (
        (precision - gain[:, :, None] * px[:, None, :]) / lam[:, None, None]
    )
    # Keep the covariance symmetric in the presence of round-off.
    new_precision = 0.5 * (new_precision + new_precision.transpose(0, 2, 1))
    error_floats = error.tolist()
    new_w_views = list(new_weights)
    new_p_views = list(new_precision)
    for row, model in enumerate(models):
        model.weights = new_w_views[row]
        model.covariance = new_p_views[row]
        model.n_updates += 1
        model.last_error = error_floats[row]
        model.last_gain = gain[row]
    if state is not None:
        state["models"] = list(models)
        state["lam"] = lam
        state["weights"] = new_weights
        state["precision"] = new_precision
        state["w_views"] = new_w_views
        state["p_views"] = new_p_views
    return error
