"""Recursive least squares (RLS) with exponential forgetting.

This is the core online-learning primitive of Section III-B: power and
performance models (e.g. the GPU frame-time model of Fig. 2) are linear in a
small set of performance-counter features and are updated after every sample
with an exponential forgetting factor so the model tracks workload changes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import OnlineRegressor, as_2d


class RecursiveLeastSquares(OnlineRegressor):
    """RLS estimator ``y ≈ w.x (+ b)`` with exponential forgetting.

    Parameters
    ----------
    n_features:
        Dimensionality of the input feature vector (excluding intercept).
    forgetting_factor:
        λ in (0, 1]; smaller values forget old samples faster.  The paper's
        GPU model [12] uses an exponential forgetting factor; λ=1 recovers
        ordinary recursive least squares.
    delta:
        Initial covariance scale (P = delta * I).  Larger values mean less
        confidence in the initial weights.
    fit_intercept:
        If True an intercept term is appended internally.
    initial_weights:
        Optional initial weight vector (length ``n_features`` or
        ``n_features + 1`` when an intercept is fitted), used when a model
        trained offline bootstraps the online estimator.
    """

    def __init__(
        self,
        n_features: int,
        forgetting_factor: float = 0.98,
        delta: float = 100.0,
        fit_intercept: bool = True,
        initial_weights: Optional[np.ndarray] = None,
    ) -> None:
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        if not 0.0 < forgetting_factor <= 1.0:
            raise ValueError(
                f"forgetting_factor must be in (0, 1], got {forgetting_factor}"
            )
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.n_features = int(n_features)
        self.forgetting_factor = float(forgetting_factor)
        self.fit_intercept = bool(fit_intercept)
        self._dim = self.n_features + (1 if self.fit_intercept else 0)
        self.covariance = np.eye(self._dim) * float(delta)
        if initial_weights is None:
            self.weights = np.zeros(self._dim)
        else:
            init = np.asarray(initial_weights, dtype=float).ravel()
            if init.shape[0] == self.n_features and self.fit_intercept:
                init = np.append(init, 0.0)
            if init.shape[0] != self._dim:
                raise ValueError(
                    f"initial_weights has length {init.shape[0]}, expected {self._dim}"
                )
            self.weights = init.copy()
        self.n_updates = 0
        self.last_error = 0.0
        self.last_gain: Optional[np.ndarray] = None

    def _augment(self, features: np.ndarray) -> np.ndarray:
        row = np.asarray(features, dtype=float).ravel()
        if row.shape[0] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {row.shape[0]}"
            )
        if self.fit_intercept:
            row = np.append(row, 1.0)
        return row

    def predict_one(self, features: np.ndarray) -> float:
        """Predict the target for a single feature vector."""
        return float(self._augment(features) @ self.weights)

    def predict(self, features: np.ndarray) -> np.ndarray:
        data = as_2d(features)
        return np.array([self.predict_one(row) for row in data])

    def predict_batch(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for an ``(n_samples, n_features)`` matrix.

        One matmul over the whole candidate batch — this is what turns the
        online-IL runtime Oracle's per-candidate prediction loop into a
        single array operation.  Equivalent to :meth:`predict_one` per row
        up to the usual BLAS summation-order round-off (well below 1e-12
        relative); :meth:`predict` remains the exact scalar reference.
        """
        data = as_2d(np.asarray(features, dtype=float))
        if data.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {data.shape[1]}"
            )
        if self.fit_intercept:
            return data @ self.weights[:-1] + self.weights[-1]
        return data @ self.weights

    def update(self, features: np.ndarray, target: float) -> float:
        """One RLS update; returns the a-priori prediction error."""
        x = self._augment(features)
        lam = self.forgetting_factor
        prediction = float(x @ self.weights)
        error = float(target) - prediction
        px = self.covariance @ x
        denom = lam + float(x @ px)
        gain = px / denom
        self.weights = self.weights + gain * error
        self.covariance = (self.covariance - np.outer(gain, px)) / lam
        # Keep the covariance symmetric in the presence of round-off.
        self.covariance = 0.5 * (self.covariance + self.covariance.T)
        self.n_updates += 1
        self.last_error = error
        self.last_gain = gain
        return error

    @property
    def coef_(self) -> np.ndarray:
        """Weight vector excluding the intercept term."""
        if self.fit_intercept:
            return self.weights[:-1].copy()
        return self.weights.copy()

    @property
    def intercept_(self) -> float:
        return float(self.weights[-1]) if self.fit_intercept else 0.0

    def reset_covariance(self, delta: float = 100.0) -> None:
        """Re-inflate the covariance (used after detected workload changes)."""
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.covariance = np.eye(self._dim) * float(delta)
