"""Support vector regression (epsilon-SVR) with RBF / linear kernels.

Section III-C cites an SVR-based NoC latency model [34]: channel and source
waiting times from an analytical model plus simulator observations are used
as features of an SVR predictor.  This module implements epsilon-SVR trained
by projected gradient ascent on the dual problem — adequate for the small
training sets used in the NoC experiments and free of external dependencies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import Regressor, as_1d, as_2d


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """RBF kernel matrix between row sets ``a`` (n, d) and ``b`` (m, d)."""
    a_sq = np.sum(a**2, axis=1)[:, None]
    b_sq = np.sum(b**2, axis=1)[None, :]
    dist_sq = np.maximum(a_sq + b_sq - 2.0 * a @ b.T, 0.0)
    return np.exp(-gamma * dist_sq)


def linear_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """Linear kernel (gamma unused, kept for a uniform signature)."""
    return a @ b.T


_KERNELS = {"rbf": rbf_kernel, "linear": linear_kernel}


class SupportVectorRegressor(Regressor):
    """Epsilon-SVR solved in the dual by projected gradient ascent.

    The dual variables ``beta = alpha - alpha*`` are box-constrained to
    [-C, C]; the epsilon-insensitive loss enters the dual objective through an
    L1 penalty on ``beta``.  A final pass computes the bias from samples with
    ``|beta| < C`` (free support vectors).
    """

    def __init__(
        self,
        c: float = 10.0,
        epsilon: float = 0.1,
        kernel: str = "rbf",
        gamma: Optional[float] = None,
        max_iterations: int = 2000,
        learning_rate: float = 1e-3,
        tolerance: float = 1e-6,
    ) -> None:
        if c <= 0:
            raise ValueError(f"c must be positive, got {c}")
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        if kernel not in _KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}")
        self.c = float(c)
        self.epsilon = float(epsilon)
        self.kernel = kernel
        self.gamma = gamma
        self.max_iterations = int(max_iterations)
        self.learning_rate = float(learning_rate)
        self.tolerance = float(tolerance)
        self.support_vectors_: Optional[np.ndarray] = None
        self.beta_: Optional[np.ndarray] = None
        self.bias_: float = 0.0
        self._gamma_value: float = 1.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "SupportVectorRegressor":
        x = as_2d(features)
        y = as_1d(targets)
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and targets must have the same length")
        n_samples, n_features = x.shape
        if self.gamma is None:
            variance = float(x.var()) or 1.0
            self._gamma_value = 1.0 / (n_features * variance)
        else:
            self._gamma_value = float(self.gamma)
        kernel_fn = _KERNELS[self.kernel]
        gram = kernel_fn(x, x, self._gamma_value)
        beta = np.zeros(n_samples)
        # Projected gradient ascent on the dual objective:
        #   maximise  -0.5 b'Kb + y'b - eps*|b|_1   s.t.  |b_i| <= C
        step = self.learning_rate / (np.trace(gram) / n_samples + 1.0)
        previous_objective = -np.inf
        for _ in range(self.max_iterations):
            grad = y - gram @ beta - self.epsilon * np.sign(beta)
            beta = np.clip(beta + step * grad, -self.c, self.c)
            objective = float(
                -0.5 * beta @ gram @ beta + y @ beta
                - self.epsilon * np.abs(beta).sum()
            )
            if abs(objective - previous_objective) < self.tolerance:
                break
            previous_objective = objective
        self.support_vectors_ = x
        self.beta_ = beta
        # Bias from free support vectors: y_i - f(x_i) ∓ epsilon.
        free = (np.abs(beta) > 1e-8) & (np.abs(beta) < self.c - 1e-8)
        raw = gram @ beta
        if np.any(free):
            residual = y[free] - raw[free] - self.epsilon * np.sign(beta[free])
            self.bias_ = float(np.mean(residual))
        else:
            self.bias_ = float(np.mean(y - raw))
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.support_vectors_ is None or self.beta_ is None:
            raise RuntimeError("SupportVectorRegressor has not been fitted yet")
        x = as_2d(features)
        kernel_fn = _KERNELS[self.kernel]
        gram = kernel_fn(x, self.support_vectors_, self._gamma_value)
        return gram @ self.beta_ + self.bias_

    @property
    def n_support_(self) -> int:
        """Number of support vectors (non-zero dual coefficients)."""
        if self.beta_ is None:
            return 0
        return int(np.sum(np.abs(self.beta_) > 1e-8))
