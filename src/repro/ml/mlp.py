"""Multilayer perceptron with backpropagation (numpy only).

The online-IL policy in the paper "is represented as a neural network and it
is updated using the back-propagation algorithm" (Sec. IV-A3).  The same
network class also backs the deep-Q baseline.  The implementation supports
mini-batch SGD with momentum, incremental ``partial_fit`` (required for
runtime policy updates from the aggregation buffer) and both regression
(identity/linear output) and classification (softmax output) heads.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.base import Classifier, Regressor, as_1d, as_2d
from repro.utils.rng import make_rng


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(float)


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def tanh_grad(x: np.ndarray) -> np.ndarray:
    return 1.0 - np.tanh(x) ** 2


_ACTIVATIONS = {
    "relu": (relu, relu_grad),
    "tanh": (tanh, tanh_grad),
}


def softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class _MLPCore:
    """Shared weight container and forward/backward passes."""

    def __init__(
        self,
        layer_sizes: Sequence[int],
        activation: str,
        learning_rate: float,
        momentum: float,
        l2: float,
        rng: np.random.Generator,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("layer_sizes must contain input and output sizes")
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.layer_sizes = [int(s) for s in layer_sizes]
        self.activation_name = activation
        self.activation, self.activation_grad = _ACTIVATIONS[activation]
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.l2 = float(l2)
        self.rng = rng
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        self._w_vel: List[np.ndarray] = []
        self._b_vel: List[np.ndarray] = []
        for fan_in, fan_out in zip(self.layer_sizes[:-1], self.layer_sizes[1:]):
            scale = np.sqrt(2.0 / float(fan_in))
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
            self._w_vel.append(np.zeros((fan_in, fan_out)))
            self._b_vel.append(np.zeros(fan_out))

    def forward(self, batch: np.ndarray) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Return (pre-activations, post-activations) for each layer."""
        pre: List[np.ndarray] = []
        post: List[np.ndarray] = [batch]
        current = batch
        n_layers = len(self.weights)
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            z = current @ weight + bias
            pre.append(z)
            if index < n_layers - 1:
                current = self.activation(z)
            else:
                current = z  # linear output head; softmax applied by classifier
            post.append(current)
        return pre, post

    def backward(self, pre: List[np.ndarray], post: List[np.ndarray],
                 output_grad: np.ndarray) -> None:
        """Backpropagate ``output_grad`` (dL/d output) and apply one SGD step."""
        batch_size = post[0].shape[0]
        grad = output_grad
        weight_grads: List[np.ndarray] = [np.empty(0)] * len(self.weights)
        bias_grads: List[np.ndarray] = [np.empty(0)] * len(self.biases)
        for layer in reversed(range(len(self.weights))):
            weight_grads[layer] = post[layer].T @ grad / batch_size
            bias_grads[layer] = grad.mean(axis=0)
            if layer > 0:
                grad = (grad @ self.weights[layer].T) * self.activation_grad(pre[layer - 1])
        for layer in range(len(self.weights)):
            dw = weight_grads[layer] + self.l2 * self.weights[layer]
            db = bias_grads[layer]
            self._w_vel[layer] = self.momentum * self._w_vel[layer] - self.learning_rate * dw
            self._b_vel[layer] = self.momentum * self._b_vel[layer] - self.learning_rate * db
            self.weights[layer] += self._w_vel[layer]
            self.biases[layer] += self._b_vel[layer]

    def copy_parameters_from(self, other: "_MLPCore") -> None:
        """Copy weights/biases from another core (DQN target networks)."""
        self.weights = [w.copy() for w in other.weights]
        self.biases = [b.copy() for b in other.biases]

    def parameter_count(self) -> int:
        return int(sum(w.size + b.size for w, b in zip(self.weights, self.biases)))


class _FitScratch:
    """Preallocated per-(group size, minibatch size) training buffers.

    One fleet fit round runs ``epochs`` iterations over identically shaped
    minibatches; every intermediate (pre-activations, activations, softmax,
    one-hot targets, per-layer gradients and the flattened gradient /
    update temporaries) is written into these reusable arrays with
    ``out=``, so the hot loop performs no heap allocation beyond the
    per-minibatch sample gather.
    """

    __slots__ = ("z", "act", "grad", "maxb", "sumb", "probs", "onehot",
                 "grad_w", "grad_b", "tmp_w", "tmp_b", "gw3", "gb2",
                 "m_range")

    def __init__(self, n_group: int, m: int, sizes: Sequence[int],
                 w_segments: Sequence[Tuple[int, int]],
                 b_segments: Sequence[Tuple[int, int]],
                 n_w: int, n_b: int) -> None:
        shapes = list(zip(sizes[:-1], sizes[1:]))
        n_classes = sizes[-1]
        self.z = [np.empty((n_group, m, fo)) for _, fo in shapes]
        self.act = [np.empty((n_group, m, fo)) for _, fo in shapes[:-1]]
        self.grad = [np.empty((n_group, m, fo)) for _, fo in shapes[:-1]]
        self.maxb = np.empty((n_group, m))
        self.sumb = np.empty((n_group, m, 1))
        self.probs = np.empty((n_group, m, n_classes))
        self.onehot = np.empty((n_group, m, n_classes))
        self.grad_w = np.empty((n_group, n_w))
        self.grad_b = np.empty((n_group, n_b))
        self.tmp_w = np.empty((n_group, n_w))
        self.tmp_b = np.empty((n_group, n_b))
        self.gw3 = [self.grad_w[:, a:b].reshape(n_group, fi, fo)
                    for (a, b), (fi, fo) in zip(w_segments, shapes)]
        self.gb2 = [self.grad_b[:, a:b] for a, b in b_segments]
        self.m_range = np.arange(m)[None, :]


class FleetMLPStack:
    """Cross-device stacked parameters for same-architecture MLP classifiers.

    The online-IL fleet path adopts every device's classifier once: all
    layers' weights (and biases, and momentum velocities) are packed into
    one persistent flat ``(devices, total_params)`` tensor, and each
    per-layer ``(devices, fan_in, fan_out)`` stack in :attr:`weights` /
    :attr:`biases` is a strided *view* of that flat storage.  The
    classifier's own arrays are re-pointed at the per-device view rows.
    Because the scalar SGD step mutates weights and biases **in place**
    (``+=``), scalar fallbacks and direct ``partial_fit`` calls keep
    writing through the stack, so batched forwards read fresh parameters
    without per-step re-stacking.  Momentum velocities are *rebound* (not
    mutated) by the scalar step, so each batched fit revalidates per-row
    velocity identity and re-syncs only rows a scalar step detached.

    The flat layout lets the SGD parameter update run as six whole-network
    array passes instead of six passes per layer, and every batched
    operation mirrors the scalar :class:`_MLPCore` statement order with
    stacked ``np.matmul`` (per-slice BLAS dispatch — bitwise equal per
    device, unlike einsum), broadcast bias adds and axis-1 reductions, so
    a lockstep fleet stays bitwise identical to independent sequential
    devices.
    """

    def __init__(self, classifiers: Sequence["MLPClassifier"]) -> None:
        cores: List[_MLPCore] = []
        for classifier in classifiers:
            core = classifier._core
            if core is None:
                raise ValueError(
                    "every classifier must be initialised (fit or "
                    "ensure_classes) before fleet adoption"
                )
            cores.append(core)
        first = cores[0]
        for core in cores[1:]:
            if (core.layer_sizes != first.layer_sizes
                    or core.activation_name != first.activation_name):
                raise ValueError(
                    "fleet MLP stack requires one shared architecture"
                )
        if len(set(cores)) != len(cores):
            raise ValueError(
                "fleet MLP stack requires distinct classifier instances"
            )
        self.classifiers = list(classifiers)
        self.cores = cores
        self.n_layers = len(first.weights)
        self.n_devices = len(cores)
        self.activation = first.activation
        self.activation_grad = first.activation_grad
        self._relu = first.activation_name == "relu"
        self._sizes = list(first.layer_sizes)
        shapes = list(zip(self._sizes[:-1], self._sizes[1:]))
        self._w_segments: List[Tuple[int, int]] = []
        self._b_segments: List[Tuple[int, int]] = []
        w_off = b_off = 0
        for fan_in, fan_out in shapes:
            self._w_segments.append((w_off, w_off + fan_in * fan_out))
            self._b_segments.append((b_off, b_off + fan_out))
            w_off += fan_in * fan_out
            b_off += fan_out
        self._n_w = w_off
        self._n_b = b_off
        n = self.n_devices
        self.flat_weights = np.empty((n, self._n_w))
        self.flat_biases = np.empty((n, self._n_b))
        self._flat_w_vel = np.empty((n, self._n_w))
        self._flat_b_vel = np.empty((n, self._n_b))
        self.weights: List[np.ndarray] = [
            self.flat_weights[:, a:b].reshape(n, fi, fo)
            for (a, b), (fi, fo) in zip(self._w_segments, shapes)
        ]
        self.biases: List[np.ndarray] = [
            self.flat_biases[:, a:b] for a, b in self._b_segments
        ]
        w_vel_views = [
            self._flat_w_vel[:, a:b].reshape(n, fi, fo)
            for (a, b), (fi, fo) in zip(self._w_segments, shapes)
        ]
        b_vel_views = [
            self._flat_b_vel[:, a:b] for a, b in self._b_segments
        ]
        # Per-row view objects are stored so velocity re-syncs can compare
        # by identity (a fresh ``view[row]`` would never be ``is``-equal).
        self._w_vel_rows: List[List[np.ndarray]] = []
        self._b_vel_rows: List[List[np.ndarray]] = []
        for row, core in enumerate(cores):
            w_row = [w_vel_views[layer][row] for layer in range(self.n_layers)]
            b_row = [b_vel_views[layer][row] for layer in range(self.n_layers)]
            self._w_vel_rows.append(w_row)
            self._b_vel_rows.append(b_row)
            for layer in range(self.n_layers):
                self.weights[layer][row] = core.weights[layer]
                self.biases[layer][row] = core.biases[layer]
                w_row[layer][...] = core._w_vel[layer]
                b_row[layer][...] = core._b_vel[layer]
                core.weights[layer] = self.weights[layer][row]
                core.biases[layer] = self.biases[layer][row]
                core._w_vel[layer] = w_row[layer]
                core._b_vel[layer] = b_row[layer]
        self._scratch: dict = {}
        self._arange = np.arange(n)

    def _is_full(self, rows: np.ndarray) -> bool:
        return (len(rows) == self.n_devices
                and bool((rows == self._arange).all()))

    def _layer_views(self, flat_w: np.ndarray, flat_b: np.ndarray
                     ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        n_group = flat_w.shape[0]
        shapes = list(zip(self._sizes[:-1], self._sizes[1:]))
        w3 = [flat_w[:, a:b].reshape(n_group, fi, fo)
              for (a, b), (fi, fo) in zip(self._w_segments, shapes)]
        b2 = [flat_b[:, a:b] for a, b in self._b_segments]
        return w3, b2

    def _sync_velocities(self, rows: np.ndarray,
                         cores: Sequence[_MLPCore]) -> None:
        """Re-attach velocities any scalar step rebound since the last fit."""
        for i, core in enumerate(cores):
            w_row = self._w_vel_rows[rows[i]]
            b_row = self._b_vel_rows[rows[i]]
            for layer in range(self.n_layers):
                if core._w_vel[layer] is not w_row[layer]:
                    w_row[layer][...] = core._w_vel[layer]
                    core._w_vel[layer] = w_row[layer]
                if core._b_vel[layer] is not b_row[layer]:
                    b_row[layer][...] = core._b_vel[layer]
                    core._b_vel[layer] = b_row[layer]

    def predict_encoded(self, rows: np.ndarray,
                        features: np.ndarray) -> np.ndarray:
        """Argmax class *positions* for one feature row per device.

        ``features[i]`` is what device ``rows[i]``'s scalar
        ``classifier.predict`` would have received (one sample); the
        stacked forward, row-wise softmax and row-wise argmax reproduce
        each device's scalar prediction exactly (first maximum wins on
        exact ties, like ``np.argmax`` over the single scalar row).  The
        caller maps positions through each classifier's ``classes_``.
        """
        rows = np.asarray(rows, dtype=np.intp)
        if self._is_full(rows):
            w3, b2 = self.weights, self.biases
        else:
            w3, b2 = self._layer_views(self.flat_weights[rows],
                                       self.flat_biases[rows])
        current = features[:, None, :]
        last = self.n_layers - 1
        for layer in range(self.n_layers):
            z = np.matmul(current, w3[layer]) + b2[layer][:, None, :]
            current = self.activation(z) if layer < last else z
        probs = softmax(current[:, 0, :])
        return np.argmax(probs, axis=1)

    def partial_fit_rows(self, rows: np.ndarray,
                         datasets: Sequence[np.ndarray],
                         encoded: Sequence[np.ndarray],
                         epochs: int) -> None:
        """Batched ``partial_fit`` over a subset of devices (bitwise-equal).

        ``datasets[i]``/``encoded[i]`` are device ``rows[i]``'s training
        matrix (equal sample counts across the subset) and label positions
        in its ``classes_``.  Hyper-parameters (learning rate, momentum,
        l2, batch size) must match across the subset — the caller groups
        by them.  Per-device shuffle orders are pre-drawn from each
        classifier's own generator in epoch order (exactly the scalar draw
        order), then every minibatch runs as stacked matmuls over
        ``(devices, batch, features)`` tensors, writing every intermediate
        into preallocated scratch and applying the SGD step as six
        in-place passes over the flat parameter tensors (bitwise equal to
        the scalar per-layer statements, which are element-independent).
        """
        rows = np.asarray(rows, dtype=np.intp)
        classifiers = [self.classifiers[row] for row in rows]
        cores = [self.cores[row] for row in rows]
        n_samples = datasets[0].shape[0]
        batch_size = classifiers[0].batch_size
        learning_rate = cores[0].learning_rate
        momentum = cores[0].momentum
        l2 = cores[0].l2
        epochs = max(1, int(epochs))
        self._sync_velocities(rows, cores)
        # Device-major pre-draw: device i consumes its own generator's
        # permutations in epoch order, exactly like its scalar run.
        n_group = len(cores)
        perm_all = np.empty((n_group, epochs, n_samples), dtype=np.intp)
        for i, classifier in enumerate(classifiers):
            rng = classifier.rng
            for epoch in range(epochs):
                perm_all[i, epoch] = rng.permutation(n_samples)
        data = np.stack(datasets)
        labels = np.stack(encoded)
        full = self._is_full(rows)
        if full:
            flat_w, flat_b = self.flat_weights, self.flat_biases
            vel_w, vel_b = self._flat_w_vel, self._flat_b_vel
            w3, b2 = self.weights, self.biases
        else:
            flat_w = self.flat_weights[rows]
            flat_b = self.flat_biases[rows]
            vel_w = self._flat_w_vel[rows]
            vel_b = self._flat_b_vel[rows]
            w3, b2 = self._layer_views(flat_w, flat_b)
        n_layers = self.n_layers
        last = n_layers - 1
        relu_head = self._relu
        device_rows = np.arange(n_group)[:, None]
        for epoch in range(epochs):
            for start in range(0, n_samples, batch_size):
                idx = perm_all[:, epoch, start:start + batch_size]
                m = idx.shape[1]
                buf = self._scratch.get((n_group, m))
                if buf is None:
                    buf = _FitScratch(n_group, m, self._sizes,
                                      self._w_segments, self._b_segments,
                                      self._n_w, self._n_b)
                    self._scratch[(n_group, m)] = buf
                batch = data[device_rows, idx]
                # Forward: buf.z[layer] holds the pre-activation, buf.act
                # the hidden post-activation (post[0] is the batch itself).
                post = batch
                for layer in range(n_layers):
                    z = buf.z[layer]
                    np.matmul(post, w3[layer], out=z)
                    np.add(z, b2[layer][:, None, :], out=z)
                    if layer < last:
                        if relu_head:
                            np.maximum(z, 0.0, out=buf.act[layer])
                        else:
                            buf.act[layer][...] = self.activation(z)
                        post = buf.act[layer]
                    else:
                        post = z
                # Softmax + cross-entropy gradient (probs - onehot), all
                # written into buf.probs (the scalar statement order of
                # ``softmax``: shift by rowwise max, exp, divide by sum).
                logits = buf.z[last]
                logits.max(axis=2, out=buf.maxb)
                np.subtract(logits, buf.maxb[:, :, None], out=buf.probs)
                np.exp(buf.probs, out=buf.probs)
                buf.probs.sum(axis=2, keepdims=True, out=buf.sumb)
                np.divide(buf.probs, buf.sumb, out=buf.probs)
                buf.onehot.fill(0.0)
                buf.onehot[device_rows, buf.m_range,
                           labels[device_rows, idx]] = 1.0
                np.subtract(buf.probs, buf.onehot, out=buf.probs)
                # Backward: weight/bias gradients land directly in the
                # flat gradient tensors through per-layer strided views.
                grad = buf.probs
                for layer in reversed(range(n_layers)):
                    post = batch if layer == 0 else buf.act[layer - 1]
                    np.matmul(post.transpose(0, 2, 1), grad,
                              out=buf.gw3[layer])
                    # ``mean`` is computed as sum then true_divide; doing
                    # the divide flat below is the same arithmetic.
                    grad.sum(axis=1, out=buf.gb2[layer])
                    if layer > 0:
                        nxt = buf.grad[layer - 1]
                        np.matmul(grad, w3[layer].transpose(0, 2, 1),
                                  out=nxt)
                        if relu_head:
                            # float64 * bool upcasts the mask to exact
                            # 0.0/1.0 — bitwise equal to the scalar
                            # ``astype(float)`` multiply.
                            np.multiply(nxt, buf.z[layer - 1] > 0.0,
                                        out=nxt)
                        else:
                            np.multiply(
                                nxt, self.activation_grad(buf.z[layer - 1]),
                                out=nxt)
                        grad = nxt
                # One contiguous pass applies the scalar per-layer ``/ m``
                # to every weight and bias gradient at once
                # (element-independent, and far faster than dividing the
                # strided per-layer views).
                np.divide(buf.grad_w, m, out=buf.grad_w)
                np.divide(buf.grad_b, m, out=buf.grad_b)
                # SGD step over the whole network at once; per-element this
                # is exactly the scalar  dw = wg + l2*w;  v = mom*v - lr*dw;
                # w += v  chain (and db = bg for biases).  Blocks of 16
                # device rows keep the four weight tensors L2-resident
                # across the six passes (element-independent, so blocking
                # cannot change any value).
                grad_w, tmp_w = buf.grad_w, buf.tmp_w
                for s in range(0, n_group, 16):
                    rows_s = slice(s, s + 16)
                    w_s, v_s, t_s = flat_w[rows_s], vel_w[rows_s], tmp_w[rows_s]
                    np.multiply(w_s, l2, out=t_s)
                    np.add(grad_w[rows_s], t_s, out=t_s)
                    np.multiply(t_s, learning_rate, out=t_s)
                    np.multiply(v_s, momentum, out=v_s)
                    np.subtract(v_s, t_s, out=v_s)
                    np.add(w_s, v_s, out=w_s)
                np.multiply(buf.grad_b, learning_rate, out=buf.tmp_b)
                np.multiply(vel_b, momentum, out=vel_b)
                np.subtract(vel_b, buf.tmp_b, out=vel_b)
                np.add(flat_b, vel_b, out=flat_b)
        if not full:
            # Write the trained subset back into the persistent flat
            # storage; the per-classifier views (weights, biases and
            # velocities alike) keep pointing at these rows.
            self.flat_weights[rows] = flat_w
            self.flat_biases[rows] = flat_b
            self._flat_w_vel[rows] = vel_w
            self._flat_b_vel[rows] = vel_b


class MLPRegressor(Regressor):
    """Feed-forward regression network (possibly multi-output)."""

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (32, 32),
        activation: str = "relu",
        learning_rate: float = 1e-2,
        momentum: float = 0.9,
        l2: float = 1e-5,
        epochs: int = 200,
        batch_size: int = 32,
        seed: Optional[int] = None,
    ) -> None:
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.activation = activation
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.l2 = l2
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.rng = make_rng(seed)
        self._core: Optional[_MLPCore] = None
        self.n_outputs_: int = 1

    def _build(self, n_features: int, n_outputs: int) -> None:
        sizes = [n_features, *self.hidden_sizes, n_outputs]
        self._core = _MLPCore(sizes, self.activation, self.learning_rate,
                              self.momentum, self.l2, self.rng)
        self.n_outputs_ = n_outputs

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "MLPRegressor":
        data = as_2d(features)
        targ = np.asarray(targets, dtype=float)
        if targ.ndim == 1:
            targ = targ.reshape(-1, 1)
        if data.shape[0] != targ.shape[0]:
            raise ValueError("features and targets must have the same length")
        self._build(data.shape[1], targ.shape[1])
        for _ in range(self.epochs):
            self._run_epoch(data, targ)
        return self

    def partial_fit(self, features: np.ndarray, targets: np.ndarray,
                    epochs: int = 1) -> "MLPRegressor":
        """Incrementally train on a new batch without reinitialising weights."""
        data = as_2d(features)
        targ = np.asarray(targets, dtype=float)
        if targ.ndim == 1:
            targ = targ.reshape(-1, 1)
        if self._core is None:
            self._build(data.shape[1], targ.shape[1])
        for _ in range(max(1, int(epochs))):
            self._run_epoch(data, targ)
        return self

    def _run_epoch(self, data: np.ndarray, targ: np.ndarray) -> None:
        assert self._core is not None
        n = data.shape[0]
        order = self.rng.permutation(n)
        for start in range(0, n, self.batch_size):
            idx = order[start:start + self.batch_size]
            pre, post = self._core.forward(data[idx])
            grad = 2.0 * (post[-1] - targ[idx])
            self._core.backward(pre, post, grad)

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._core is None:
            raise RuntimeError("MLPRegressor has not been fitted yet")
        data = as_2d(features)
        _, post = self._core.forward(data)
        out = post[-1]
        if self.n_outputs_ == 1:
            return out.ravel()
        return out

    def parameter_count(self) -> int:
        """Number of trainable parameters (storage-overhead reporting)."""
        if self._core is None:
            return 0
        return self._core.parameter_count()


class MLPClassifier(Classifier):
    """Feed-forward softmax classifier used for the IL configuration policy."""

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (32, 32),
        activation: str = "relu",
        learning_rate: float = 1e-2,
        momentum: float = 0.9,
        l2: float = 1e-5,
        epochs: int = 200,
        batch_size: int = 32,
        seed: Optional[int] = None,
    ) -> None:
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.activation = activation
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.l2 = l2
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.rng = make_rng(seed)
        self._core: Optional[_MLPCore] = None
        self.classes_: Optional[np.ndarray] = None

    def _build(self, n_features: int, n_classes: int) -> None:
        sizes = [n_features, *self.hidden_sizes, n_classes]
        self._core = _MLPCore(sizes, self.activation, self.learning_rate,
                              self.momentum, self.l2, self.rng)

    def _encode(self, labels: np.ndarray) -> np.ndarray:
        # ``classes_`` is sorted (np.unique / ensure_classes), so the
        # label-to-index mapping is one vectorized binary search; callers
        # (fit/partial_fit) have already validated label membership.
        assert self.classes_ is not None
        return np.searchsorted(self.classes_, labels).astype(int)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "MLPClassifier":
        data = as_2d(features)
        labs = np.asarray(labels).ravel().astype(int)
        if data.shape[0] != labs.shape[0]:
            raise ValueError("features and labels must have the same length")
        self.classes_ = np.unique(labs)
        self._build(data.shape[1], len(self.classes_))
        encoded = self._encode(labs)
        for _ in range(self.epochs):
            self._run_epoch(data, encoded)
        return self

    def ensure_classes(self, classes: Sequence[int], n_features: int) -> None:
        """Pre-register the full action set before any fit/partial_fit call.

        The online-IL policy must be able to output any SoC configuration even
        if early training data only covers a subset of them.
        """
        self.classes_ = np.array(sorted(int(c) for c in classes))
        if self._core is None:
            self._build(int(n_features), len(self.classes_))

    def partial_fit(self, features: np.ndarray, labels: np.ndarray,
                    epochs: int = 1) -> "MLPClassifier":
        """Incremental update from the online-IL aggregation buffer."""
        data = as_2d(features)
        labs = np.asarray(labels).ravel().astype(int)
        if self.classes_ is None or self._core is None:
            raise RuntimeError(
                "call fit() or ensure_classes() before partial_fit()"
            )
        unknown = set(labs.tolist()) - set(int(c) for c in self.classes_)
        if unknown:
            raise ValueError(f"labels {sorted(unknown)} not in registered classes")
        encoded = self._encode(labs)
        for _ in range(max(1, int(epochs))):
            self._run_epoch(data, encoded)
        return self

    def _run_epoch(self, data: np.ndarray, encoded: np.ndarray) -> None:
        assert self._core is not None and self.classes_ is not None
        n = data.shape[0]
        n_classes = len(self.classes_)
        order = self.rng.permutation(n)
        for start in range(0, n, self.batch_size):
            idx = order[start:start + self.batch_size]
            pre, post = self._core.forward(data[idx])
            probs = softmax(post[-1])
            onehot = np.zeros((len(idx), n_classes))
            onehot[np.arange(len(idx)), encoded[idx]] = 1.0
            grad = probs - onehot
            self._core.backward(pre, post, grad)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._core is None or self.classes_ is None:
            raise RuntimeError("MLPClassifier has not been fitted yet")
        data = as_2d(features)
        _, post = self._core.forward(data)
        return softmax(post[-1])

    def predict(self, features: np.ndarray) -> np.ndarray:
        probs = self.predict_proba(features)
        assert self.classes_ is not None
        return self.classes_[np.argmax(probs, axis=1)]

    def parameter_count(self) -> int:
        if self._core is None:
            return 0
        return self._core.parameter_count()
