"""Multilayer perceptron with backpropagation (numpy only).

The online-IL policy in the paper "is represented as a neural network and it
is updated using the back-propagation algorithm" (Sec. IV-A3).  The same
network class also backs the deep-Q baseline.  The implementation supports
mini-batch SGD with momentum, incremental ``partial_fit`` (required for
runtime policy updates from the aggregation buffer) and both regression
(identity/linear output) and classification (softmax output) heads.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.base import Classifier, Regressor, as_1d, as_2d
from repro.utils.rng import make_rng


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(float)


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def tanh_grad(x: np.ndarray) -> np.ndarray:
    return 1.0 - np.tanh(x) ** 2


_ACTIVATIONS = {
    "relu": (relu, relu_grad),
    "tanh": (tanh, tanh_grad),
}


def softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class _MLPCore:
    """Shared weight container and forward/backward passes."""

    def __init__(
        self,
        layer_sizes: Sequence[int],
        activation: str,
        learning_rate: float,
        momentum: float,
        l2: float,
        rng: np.random.Generator,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("layer_sizes must contain input and output sizes")
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.layer_sizes = [int(s) for s in layer_sizes]
        self.activation_name = activation
        self.activation, self.activation_grad = _ACTIVATIONS[activation]
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.l2 = float(l2)
        self.rng = rng
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        self._w_vel: List[np.ndarray] = []
        self._b_vel: List[np.ndarray] = []
        for fan_in, fan_out in zip(self.layer_sizes[:-1], self.layer_sizes[1:]):
            scale = np.sqrt(2.0 / float(fan_in))
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
            self._w_vel.append(np.zeros((fan_in, fan_out)))
            self._b_vel.append(np.zeros(fan_out))

    def forward(self, batch: np.ndarray) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Return (pre-activations, post-activations) for each layer."""
        pre: List[np.ndarray] = []
        post: List[np.ndarray] = [batch]
        current = batch
        n_layers = len(self.weights)
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            z = current @ weight + bias
            pre.append(z)
            if index < n_layers - 1:
                current = self.activation(z)
            else:
                current = z  # linear output head; softmax applied by classifier
            post.append(current)
        return pre, post

    def backward(self, pre: List[np.ndarray], post: List[np.ndarray],
                 output_grad: np.ndarray) -> None:
        """Backpropagate ``output_grad`` (dL/d output) and apply one SGD step."""
        batch_size = post[0].shape[0]
        grad = output_grad
        weight_grads: List[np.ndarray] = [np.empty(0)] * len(self.weights)
        bias_grads: List[np.ndarray] = [np.empty(0)] * len(self.biases)
        for layer in reversed(range(len(self.weights))):
            weight_grads[layer] = post[layer].T @ grad / batch_size
            bias_grads[layer] = grad.mean(axis=0)
            if layer > 0:
                grad = (grad @ self.weights[layer].T) * self.activation_grad(pre[layer - 1])
        for layer in range(len(self.weights)):
            dw = weight_grads[layer] + self.l2 * self.weights[layer]
            db = bias_grads[layer]
            self._w_vel[layer] = self.momentum * self._w_vel[layer] - self.learning_rate * dw
            self._b_vel[layer] = self.momentum * self._b_vel[layer] - self.learning_rate * db
            self.weights[layer] += self._w_vel[layer]
            self.biases[layer] += self._b_vel[layer]

    def copy_parameters_from(self, other: "_MLPCore") -> None:
        """Copy weights/biases from another core (DQN target networks)."""
        self.weights = [w.copy() for w in other.weights]
        self.biases = [b.copy() for b in other.biases]

    def parameter_count(self) -> int:
        return int(sum(w.size + b.size for w, b in zip(self.weights, self.biases)))


class MLPRegressor(Regressor):
    """Feed-forward regression network (possibly multi-output)."""

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (32, 32),
        activation: str = "relu",
        learning_rate: float = 1e-2,
        momentum: float = 0.9,
        l2: float = 1e-5,
        epochs: int = 200,
        batch_size: int = 32,
        seed: Optional[int] = None,
    ) -> None:
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.activation = activation
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.l2 = l2
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.rng = make_rng(seed)
        self._core: Optional[_MLPCore] = None
        self.n_outputs_: int = 1

    def _build(self, n_features: int, n_outputs: int) -> None:
        sizes = [n_features, *self.hidden_sizes, n_outputs]
        self._core = _MLPCore(sizes, self.activation, self.learning_rate,
                              self.momentum, self.l2, self.rng)
        self.n_outputs_ = n_outputs

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "MLPRegressor":
        data = as_2d(features)
        targ = np.asarray(targets, dtype=float)
        if targ.ndim == 1:
            targ = targ.reshape(-1, 1)
        if data.shape[0] != targ.shape[0]:
            raise ValueError("features and targets must have the same length")
        self._build(data.shape[1], targ.shape[1])
        for _ in range(self.epochs):
            self._run_epoch(data, targ)
        return self

    def partial_fit(self, features: np.ndarray, targets: np.ndarray,
                    epochs: int = 1) -> "MLPRegressor":
        """Incrementally train on a new batch without reinitialising weights."""
        data = as_2d(features)
        targ = np.asarray(targets, dtype=float)
        if targ.ndim == 1:
            targ = targ.reshape(-1, 1)
        if self._core is None:
            self._build(data.shape[1], targ.shape[1])
        for _ in range(max(1, int(epochs))):
            self._run_epoch(data, targ)
        return self

    def _run_epoch(self, data: np.ndarray, targ: np.ndarray) -> None:
        assert self._core is not None
        n = data.shape[0]
        order = self.rng.permutation(n)
        for start in range(0, n, self.batch_size):
            idx = order[start:start + self.batch_size]
            pre, post = self._core.forward(data[idx])
            grad = 2.0 * (post[-1] - targ[idx])
            self._core.backward(pre, post, grad)

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._core is None:
            raise RuntimeError("MLPRegressor has not been fitted yet")
        data = as_2d(features)
        _, post = self._core.forward(data)
        out = post[-1]
        if self.n_outputs_ == 1:
            return out.ravel()
        return out

    def parameter_count(self) -> int:
        """Number of trainable parameters (storage-overhead reporting)."""
        if self._core is None:
            return 0
        return self._core.parameter_count()


class MLPClassifier(Classifier):
    """Feed-forward softmax classifier used for the IL configuration policy."""

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (32, 32),
        activation: str = "relu",
        learning_rate: float = 1e-2,
        momentum: float = 0.9,
        l2: float = 1e-5,
        epochs: int = 200,
        batch_size: int = 32,
        seed: Optional[int] = None,
    ) -> None:
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.activation = activation
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.l2 = l2
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.rng = make_rng(seed)
        self._core: Optional[_MLPCore] = None
        self.classes_: Optional[np.ndarray] = None

    def _build(self, n_features: int, n_classes: int) -> None:
        sizes = [n_features, *self.hidden_sizes, n_classes]
        self._core = _MLPCore(sizes, self.activation, self.learning_rate,
                              self.momentum, self.l2, self.rng)

    def _encode(self, labels: np.ndarray) -> np.ndarray:
        # ``classes_`` is sorted (np.unique / ensure_classes), so the
        # label-to-index mapping is one vectorized binary search; callers
        # (fit/partial_fit) have already validated label membership.
        assert self.classes_ is not None
        return np.searchsorted(self.classes_, labels).astype(int)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "MLPClassifier":
        data = as_2d(features)
        labs = np.asarray(labels).ravel().astype(int)
        if data.shape[0] != labs.shape[0]:
            raise ValueError("features and labels must have the same length")
        self.classes_ = np.unique(labs)
        self._build(data.shape[1], len(self.classes_))
        encoded = self._encode(labs)
        for _ in range(self.epochs):
            self._run_epoch(data, encoded)
        return self

    def ensure_classes(self, classes: Sequence[int], n_features: int) -> None:
        """Pre-register the full action set before any fit/partial_fit call.

        The online-IL policy must be able to output any SoC configuration even
        if early training data only covers a subset of them.
        """
        self.classes_ = np.array(sorted(int(c) for c in classes))
        if self._core is None:
            self._build(int(n_features), len(self.classes_))

    def partial_fit(self, features: np.ndarray, labels: np.ndarray,
                    epochs: int = 1) -> "MLPClassifier":
        """Incremental update from the online-IL aggregation buffer."""
        data = as_2d(features)
        labs = np.asarray(labels).ravel().astype(int)
        if self.classes_ is None or self._core is None:
            raise RuntimeError(
                "call fit() or ensure_classes() before partial_fit()"
            )
        unknown = set(labs.tolist()) - set(int(c) for c in self.classes_)
        if unknown:
            raise ValueError(f"labels {sorted(unknown)} not in registered classes")
        encoded = self._encode(labs)
        for _ in range(max(1, int(epochs))):
            self._run_epoch(data, encoded)
        return self

    def _run_epoch(self, data: np.ndarray, encoded: np.ndarray) -> None:
        assert self._core is not None and self.classes_ is not None
        n = data.shape[0]
        n_classes = len(self.classes_)
        order = self.rng.permutation(n)
        for start in range(0, n, self.batch_size):
            idx = order[start:start + self.batch_size]
            pre, post = self._core.forward(data[idx])
            probs = softmax(post[-1])
            onehot = np.zeros((len(idx), n_classes))
            onehot[np.arange(len(idx)), encoded[idx]] = 1.0
            grad = probs - onehot
            self._core.backward(pre, post, grad)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._core is None or self.classes_ is None:
            raise RuntimeError("MLPClassifier has not been fitted yet")
        data = as_2d(features)
        _, post = self._core.forward(data)
        return softmax(post[-1])

    def predict(self, features: np.ndarray) -> np.ndarray:
        probs = self.predict_proba(features)
        assert self.classes_ is not None
        return self.classes_[np.argmax(probs, axis=1)]

    def parameter_count(self) -> int:
        if self._core is None:
            return 0
        return self._core.parameter_count()
