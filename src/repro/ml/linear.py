"""Ordinary and ridge least-squares regression.

Linear models are the workhorse of the paper's modelling layer: offline IL
policies in prior work use linear regression [18, 19], and the explicit-NMPC
surface can be approximated with simple regression models.  Both solvers use
``numpy.linalg.lstsq`` / normal equations and support an optional intercept.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import Regressor, as_1d, as_2d, check_fitted


class LinearRegressor(Regressor):
    """Ordinary least squares with optional intercept."""

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = bool(fit_intercept)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def _design(self, features: np.ndarray) -> np.ndarray:
        data = as_2d(features)
        if self.fit_intercept:
            ones = np.ones((data.shape[0], 1))
            data = np.hstack([data, ones])
        return data

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LinearRegressor":
        design = self._design(features)
        y = as_1d(targets)
        if design.shape[0] != y.shape[0]:
            raise ValueError("features and targets must have the same length")
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.coef_ = solution[:-1]
            self.intercept_ = float(solution[-1])
        else:
            self.coef_ = solution
            self.intercept_ = 0.0
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        check_fitted(self.coef_, "LinearRegressor")
        data = as_2d(features)
        return data @ self.coef_ + self.intercept_


class RidgeRegressor(Regressor):
    """L2-regularised least squares (closed-form normal-equation solve)."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)
        self.fit_intercept = bool(fit_intercept)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RidgeRegressor":
        data = as_2d(features)
        y = as_1d(targets)
        if data.shape[0] != y.shape[0]:
            raise ValueError("features and targets must have the same length")
        if self.fit_intercept:
            x_mean = data.mean(axis=0)
            y_mean = float(y.mean())
            centered_x = data - x_mean
            centered_y = y - y_mean
        else:
            x_mean = np.zeros(data.shape[1])
            y_mean = 0.0
            centered_x = data
            centered_y = y
        gram = centered_x.T @ centered_x + self.alpha * np.eye(data.shape[1])
        self.coef_ = np.linalg.solve(gram, centered_x.T @ centered_y)
        self.intercept_ = y_mean - float(x_mean @ self.coef_) if self.fit_intercept else 0.0
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        check_fitted(self.coef_, "RidgeRegressor")
        data = as_2d(features)
        return data @ self.coef_ + self.intercept_
