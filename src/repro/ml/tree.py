"""CART decision trees (regression and classification).

Regression-tree based IL policies are one of the "off-the-shelf machine
learning models" used by the offline IL works [18, 19] the paper builds on.
The implementation is a standard greedy CART: binary splits on single
features, variance reduction (regression) or Gini impurity (classification),
with depth / minimum-samples stopping rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ml.base import Classifier, Regressor, as_1d, as_2d


@dataclass
class _Node:
    """One node of a binary decision tree."""

    prediction: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _best_split_regression(x: np.ndarray, y: np.ndarray, min_leaf: int):
    """Return (feature, threshold, score) minimising weighted child variance."""
    n_samples, n_features = x.shape
    parent_score = float(np.var(y)) * n_samples
    best = (None, 0.0, parent_score)
    for feature in range(n_features):
        order = np.argsort(x[:, feature], kind="stable")
        xs = x[order, feature]
        ys = y[order]
        cumsum = np.cumsum(ys)
        cumsum_sq = np.cumsum(ys**2)
        total_sum = cumsum[-1]
        total_sq = cumsum_sq[-1]
        for i in range(min_leaf, n_samples - min_leaf + 1):
            if i < 1 or i >= n_samples:
                continue
            if xs[i - 1] == xs[i]:
                continue
            left_n = i
            right_n = n_samples - i
            left_sum = cumsum[i - 1]
            left_sq = cumsum_sq[i - 1]
            right_sum = total_sum - left_sum
            right_sq = total_sq - left_sq
            left_sse = left_sq - left_sum**2 / left_n
            right_sse = right_sq - right_sum**2 / right_n
            score = left_sse + right_sse
            if score < best[2] - 1e-12:
                threshold = 0.5 * (xs[i - 1] + xs[i])
                best = (feature, float(threshold), float(score))
    return best


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p**2))


def _best_split_classification(x: np.ndarray, y: np.ndarray, n_classes: int,
                               min_leaf: int):
    """Return (feature, threshold, score) minimising weighted Gini impurity."""
    n_samples, n_features = x.shape
    parent_counts = np.bincount(y, minlength=n_classes)
    parent_score = _gini(parent_counts) * n_samples
    best = (None, 0.0, parent_score)
    for feature in range(n_features):
        order = np.argsort(x[:, feature], kind="stable")
        xs = x[order, feature]
        ys = y[order]
        left_counts = np.zeros(n_classes)
        right_counts = parent_counts.astype(float).copy()
        for i in range(1, n_samples):
            cls = ys[i - 1]
            left_counts[cls] += 1
            right_counts[cls] -= 1
            if i < min_leaf or n_samples - i < min_leaf:
                continue
            if xs[i - 1] == xs[i]:
                continue
            score = _gini(left_counts) * i + _gini(right_counts) * (n_samples - i)
            if score < best[2] - 1e-12:
                threshold = 0.5 * (xs[i - 1] + xs[i])
                best = (feature, float(threshold), float(score))
    return best


class _BaseTree:
    """Common tree construction machinery."""

    def __init__(self, max_depth: int, min_samples_split: int,
                 min_samples_leaf: int) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2, got {min_samples_split}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.root_: Optional[_Node] = None
        self.n_features_: int = 0

    def _predict_row(self, row: np.ndarray) -> float:
        node = self.root_
        if node is None:
            raise RuntimeError("tree has not been fitted yet")
        while not node.is_leaf:
            assert node.feature is not None
            if row[node.feature] <= node.threshold:
                assert node.left is not None
                node = node.left
            else:
                assert node.right is not None
                node = node.right
        return node.prediction

    def depth(self) -> int:
        """Return the depth of the fitted tree (root-only tree has depth 1)."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 1 if node is not None else 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    def node_count(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return 1 + walk(node.left) + walk(node.right)

        return walk(self.root_)


class DecisionTreeRegressor(_BaseTree, Regressor):
    """CART regression tree minimising squared error."""

    def __init__(self, max_depth: int = 8, min_samples_split: int = 4,
                 min_samples_leaf: int = 2) -> None:
        super().__init__(max_depth, min_samples_split, min_samples_leaf)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        x = as_2d(features)
        y = as_1d(targets)
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and targets must have the same length")
        self.n_features_ = x.shape[1]
        self.root_ = self._grow(x, y, depth=1)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(np.mean(y)))
        if depth >= self.max_depth or x.shape[0] < self.min_samples_split:
            return node
        if np.allclose(y, y[0]):
            return node
        feature, threshold, _ = _best_split_regression(x, y, self.min_samples_leaf)
        if feature is None:
            return node
        mask = x[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    def predict(self, features: np.ndarray) -> np.ndarray:
        x = as_2d(features)
        return np.array([self._predict_row(row) for row in x])


class DecisionTreeClassifier(_BaseTree, Classifier):
    """CART classification tree minimising Gini impurity."""

    def __init__(self, max_depth: int = 8, min_samples_split: int = 4,
                 min_samples_leaf: int = 2) -> None:
        super().__init__(max_depth, min_samples_split, min_samples_leaf)
        self.classes_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTreeClassifier":
        x = as_2d(features)
        y = np.asarray(labels).ravel().astype(int)
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and labels must have the same length")
        self.classes_ = np.unique(y)
        index = {int(c): i for i, c in enumerate(self.classes_)}
        encoded = np.array([index[int(v)] for v in y], dtype=int)
        self.n_features_ = x.shape[1]
        self.root_ = self._grow(x, encoded, depth=1, n_classes=len(self.classes_))
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int, n_classes: int) -> _Node:
        counts = np.bincount(y, minlength=n_classes)
        node = _Node(prediction=float(np.argmax(counts)))
        if depth >= self.max_depth or x.shape[0] < self.min_samples_split:
            return node
        if len(np.unique(y)) == 1:
            return node
        feature, threshold, _ = _best_split_classification(
            x, y, n_classes, self.min_samples_leaf
        )
        if feature is None:
            return node
        mask = x[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1, n_classes)
        node.right = self._grow(x[~mask], y[~mask], depth + 1, n_classes)
        return node

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("DecisionTreeClassifier has not been fitted yet")
        x = as_2d(features)
        encoded = np.array([int(self._predict_row(row)) for row in x])
        return self.classes_[encoded]
