"""CART decision trees (regression and classification).

Regression-tree based IL policies are one of the "off-the-shelf machine
learning models" used by the offline IL works [18, 19] the paper builds on.
The implementation is a standard greedy CART: binary splits on single
features, variance reduction (regression) or Gini impurity (classification),
with depth / minimum-samples stopping rules.

Both training and inference are NumPy-vectorized.  Split search evaluates
every candidate threshold of every feature at once — cumulative-sum SSE for
regression, one-hot cumulative class counts and Gini for classification —
and ``predict`` / ``predict_proba`` route the whole input matrix through the
tree level by level instead of walking one row at a time.  The original
scalar kernels are retained (``split_search="scalar"`` and
``_predict_row``) as the reference implementation: the vectorized paths
reproduce their splits, tie-breaking and predictions bitwise, which the
equivalence suite in ``tests/test_ml_tree_equivalence.py`` and the
``benchmarks/test_bench_ml_kernels.py`` perf gate both assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.ml.base import Classifier, Regressor, as_1d, as_2d

#: A candidate split must beat the incumbent by more than this margin, so
#: float noise cannot flip ties; earlier (feature, threshold) candidates win.
_SPLIT_TOLERANCE = 1e-12

#: Valid values of the ``split_search`` constructor argument.
_SPLIT_SEARCH_MODES = ("vectorized", "scalar")


@dataclass
class _Node:
    """One node of a binary decision tree."""

    prediction: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    class_counts: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _sequential_best(scores: np.ndarray, initial_best: float) -> Tuple[int, float]:
    """Replay the scalar candidate scan over a precomputed score vector.

    The scalar kernels accept a candidate only when it beats the running best
    by more than ``_SPLIT_TOLERANCE``, so the winner depends on scan order,
    not just on the minimum.  A candidate the scan accepts is necessarily a
    strict prefix minimum (every earlier candidate — accepted or skipped —
    scored higher), so one vectorized ``minimum.accumulate`` pass shrinks the
    scan to the prefix-minima subsequence (typically ~log n entries) and the
    exact tolerance chain is replayed over just those.  Returns
    ``(-1, initial_best)`` when nothing qualifies.
    """
    n = scores.shape[0]
    if n == 0:
        return -1, float(initial_best)
    is_record = scores < initial_best
    if n > 1:
        prefix_min = np.minimum.accumulate(scores[:-1])
        is_record[1:] &= scores[1:] < prefix_min
    best = float(initial_best)
    index = -1
    for candidate in np.nonzero(is_record)[0]:
        score = scores[candidate]
        if score < best - _SPLIT_TOLERANCE:
            index = int(candidate)
            best = float(score)
    return index, best


def _candidate_validity(xs: np.ndarray, n_samples: int, min_leaf: int) -> np.ndarray:
    """Mask of admissible split positions per feature (shape (n-1, features)).

    Candidate ``i`` puts the first ``i`` sorted samples on the left; it is
    valid when both children satisfy ``min_leaf`` and the sorted feature
    values actually change across the boundary.
    """
    i = np.arange(1, n_samples)
    valid = ((i >= min_leaf) & (i <= n_samples - min_leaf))[:, None]
    return valid & (xs[:-1] != xs[1:])


def _best_split_regression(x: np.ndarray, y: np.ndarray, min_leaf: int):
    """Return (feature, threshold, score) minimising weighted child variance.

    Vectorized over all thresholds of all features: per-feature stable sorts,
    cumulative sums of ``y`` and ``y**2``, and the SSE identity
    ``sum((y - mean)^2) = sum(y^2) - sum(y)^2 / n`` evaluated for every
    prefix/suffix pair at once.  Candidates are then scanned in the scalar
    kernel's order (feature-major, threshold-ascending) so the selected split
    and its score are bitwise identical to ``_best_split_regression_scalar``.
    """
    n_samples, n_features = x.shape
    parent_score = float(np.var(y)) * n_samples
    best = (None, 0.0, parent_score)
    if n_samples < 2:
        return best
    order = np.argsort(x, axis=0, kind="stable")
    xs = np.take_along_axis(x, order, axis=0)
    ys = y[order]
    cumsum = np.cumsum(ys, axis=0)
    cumsum_sq = np.cumsum(ys**2, axis=0)
    left_n = np.arange(1, n_samples, dtype=float)[:, None]
    right_n = float(n_samples) - left_n
    left_sum = cumsum[:-1]
    left_sq = cumsum_sq[:-1]
    right_sum = cumsum[-1][None, :] - left_sum
    right_sq = cumsum_sq[-1][None, :] - left_sq
    left_sse = left_sq - left_sum**2 / left_n
    right_sse = right_sq - right_sum**2 / right_n
    scores = left_sse + right_sse
    scores[~_candidate_validity(xs, n_samples, min_leaf)] = np.inf
    index, score = _sequential_best(scores.ravel(order="F"), parent_score)
    if index < 0:
        return best
    feature, row = divmod(index, n_samples - 1)
    threshold = 0.5 * (xs[row, feature] + xs[row + 1, feature])
    return (int(feature), float(threshold), float(score))


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p**2))


def _best_split_classification(x: np.ndarray, y: np.ndarray, n_classes: int,
                               min_leaf: int):
    """Return (feature, threshold, score) minimising weighted Gini impurity.

    One-hot encodes the sorted labels per feature and takes a cumulative sum,
    which yields the left-child class-count matrix for every candidate
    threshold in one pass (the right child is the integer complement against
    the parent counts — no float drift).  Candidate scanning mirrors the
    scalar kernel's order, so splits match ``_best_split_classification_scalar``
    bitwise.
    """
    n_samples, n_features = x.shape
    parent_counts = np.bincount(y, minlength=n_classes)
    parent_score = _gini(parent_counts) * n_samples
    best = (None, 0.0, parent_score)
    if n_samples < 2:
        return best
    order = np.argsort(x, axis=0, kind="stable")
    xs = np.take_along_axis(x, order, axis=0)
    ys = y[order]
    one_hot = np.zeros((n_samples, n_features, n_classes), dtype=np.int64)
    np.put_along_axis(one_hot, ys[:, :, None], 1, axis=2)
    left_counts = np.cumsum(one_hot, axis=0)[:-1]
    right_counts = parent_counts[None, None, :] - left_counts
    left_n = np.arange(1, n_samples)
    right_n = n_samples - left_n
    p_left = left_counts / left_n[:, None, None]
    p_right = right_counts / right_n[:, None, None]
    gini_left = 1.0 - np.sum(p_left**2, axis=2)
    gini_right = 1.0 - np.sum(p_right**2, axis=2)
    scores = gini_left * left_n[:, None] + gini_right * right_n[:, None]
    scores[~_candidate_validity(xs, n_samples, min_leaf)] = np.inf
    index, score = _sequential_best(scores.ravel(order="F"), parent_score)
    if index < 0:
        return best
    feature, row = divmod(index, n_samples - 1)
    threshold = 0.5 * (xs[row, feature] + xs[row + 1, feature])
    return (int(feature), float(threshold), float(score))


# --------------------------------------------------------------------- #
# Scalar reference kernels (the original per-sample loops), kept so the
# equivalence suite and the benchmark gate always have a ground truth.
# --------------------------------------------------------------------- #
def _best_split_regression_scalar(x: np.ndarray, y: np.ndarray, min_leaf: int):
    """Reference scalar split search (per-sample Python loops)."""
    n_samples, n_features = x.shape
    parent_score = float(np.var(y)) * n_samples
    best = (None, 0.0, parent_score)
    for feature in range(n_features):
        order = np.argsort(x[:, feature], kind="stable")
        xs = x[order, feature]
        ys = y[order]
        cumsum = np.cumsum(ys)
        cumsum_sq = np.cumsum(ys**2)
        total_sum = cumsum[-1]
        total_sq = cumsum_sq[-1]
        for i in range(min_leaf, n_samples - min_leaf + 1):
            if i < 1 or i >= n_samples:
                continue
            if xs[i - 1] == xs[i]:
                continue
            left_n = i
            right_n = n_samples - i
            left_sum = cumsum[i - 1]
            left_sq = cumsum_sq[i - 1]
            right_sum = total_sum - left_sum
            right_sq = total_sq - left_sq
            left_sse = left_sq - left_sum**2 / left_n
            right_sse = right_sq - right_sum**2 / right_n
            score = left_sse + right_sse
            if score < best[2] - _SPLIT_TOLERANCE:
                threshold = 0.5 * (xs[i - 1] + xs[i])
                best = (feature, float(threshold), float(score))
    return best


def _best_split_classification_scalar(x: np.ndarray, y: np.ndarray,
                                      n_classes: int, min_leaf: int):
    """Reference scalar split search (incremental integer class counts)."""
    n_samples, n_features = x.shape
    parent_counts = np.bincount(y, minlength=n_classes)
    parent_score = _gini(parent_counts) * n_samples
    best = (None, 0.0, parent_score)
    for feature in range(n_features):
        order = np.argsort(x[:, feature], kind="stable")
        xs = x[order, feature]
        ys = y[order]
        left_counts = np.zeros(n_classes, dtype=np.int64)
        right_counts = parent_counts.copy()
        for i in range(1, n_samples):
            cls = ys[i - 1]
            left_counts[cls] += 1
            right_counts[cls] -= 1
            if i < min_leaf or n_samples - i < min_leaf:
                continue
            if xs[i - 1] == xs[i]:
                continue
            score = _gini(left_counts) * i + _gini(right_counts) * (n_samples - i)
            if score < best[2] - _SPLIT_TOLERANCE:
                threshold = 0.5 * (xs[i - 1] + xs[i])
                best = (feature, float(threshold), float(score))
    return best


def trees_identical(a: "_BaseTree", b: "_BaseTree") -> bool:
    """Structural bitwise equality of two fitted trees.

    Compares split features, thresholds, predictions and (for classifiers)
    leaf class counts node by node — the invariant the vectorized kernels
    guarantee against the scalar reference, used by both the equivalence
    suite and the benchmark gate.
    """

    def walk(na: Optional[_Node], nb: Optional[_Node]) -> bool:
        if (na is None) != (nb is None):
            return False
        if na is None:
            return True
        if (na.feature != nb.feature or na.threshold != nb.threshold
                or na.prediction != nb.prediction):
            return False
        if (na.class_counts is None) != (nb.class_counts is None):
            return False
        if na.class_counts is not None and not np.array_equal(
                na.class_counts, nb.class_counts):
            return False
        return walk(na.left, nb.left) and walk(na.right, nb.right)

    return walk(a.root_, b.root_)


@dataclass
class _FlatTree:
    """Array form of a fitted tree for level-by-level batch traversal.

    ``feature[k] == -1`` marks node ``k`` as a leaf; internal nodes route to
    ``left[k]`` / ``right[k]``.  ``class_counts`` is only present for
    classifiers (one row of training-label counts per node).
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    prediction: np.ndarray
    class_counts: Optional[np.ndarray] = None


class _BaseTree:
    """Common tree construction machinery."""

    def __init__(self, max_depth: int, min_samples_split: int,
                 min_samples_leaf: int, split_search: str = "vectorized") -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2, got {min_samples_split}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        if split_search not in _SPLIT_SEARCH_MODES:
            raise ValueError(
                f"split_search must be one of {_SPLIT_SEARCH_MODES}, "
                f"got {split_search!r}"
            )
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.split_search = split_search
        self.root_: Optional[_Node] = None
        self.n_features_: int = 0
        self._flat: Optional[_FlatTree] = None

    def _flatten(self) -> _FlatTree:
        """Flatten the node tree into arrays (cached until the next fit)."""
        if self._flat is not None:
            return self._flat
        if self.root_ is None:
            raise RuntimeError("tree has not been fitted yet")
        nodes: List[_Node] = [self.root_]
        cursor = 0
        while cursor < len(nodes):
            node = nodes[cursor]
            cursor += 1
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                nodes.append(node.left)
                nodes.append(node.right)
        index = {id(node): k for k, node in enumerate(nodes)}
        n = len(nodes)
        flat = _FlatTree(
            feature=np.full(n, -1, dtype=np.int64),
            threshold=np.zeros(n, dtype=float),
            left=np.zeros(n, dtype=np.int64),
            right=np.zeros(n, dtype=np.int64),
            prediction=np.zeros(n, dtype=float),
        )
        if nodes[0].class_counts is not None:
            flat.class_counts = np.zeros(
                (n, nodes[0].class_counts.shape[0]), dtype=np.int64
            )
        for k, node in enumerate(nodes):
            flat.prediction[k] = node.prediction
            if flat.class_counts is not None:
                flat.class_counts[k] = node.class_counts
            if not node.is_leaf:
                flat.feature[k] = node.feature
                flat.threshold[k] = node.threshold
                flat.left[k] = index[id(node.left)]
                flat.right[k] = index[id(node.right)]
        self._flat = flat
        return flat

    def _batch_leaf_indices(self, x: np.ndarray) -> np.ndarray:
        """Route all rows of ``x`` to their leaves, one tree level per step.

        Uses the same ``row[feature] <= threshold`` comparison as the scalar
        ``_predict_row`` walk, so the destination leaves — and therefore the
        predictions — are identical.
        """
        flat = self._flatten()
        nodes = np.zeros(x.shape[0], dtype=np.int64)
        active = np.nonzero(flat.feature[nodes] >= 0)[0]
        while active.size:
            node_ids = nodes[active]
            go_left = (x[active, flat.feature[node_ids]]
                       <= flat.threshold[node_ids])
            nodes[active] = np.where(go_left, flat.left[node_ids],
                                     flat.right[node_ids])
            active = active[flat.feature[nodes[active]] >= 0]
        return nodes

    def _predict_row(self, row: np.ndarray) -> float:
        """Reference scalar traversal (one row at a time)."""
        node = self.root_
        if node is None:
            raise RuntimeError("tree has not been fitted yet")
        while not node.is_leaf:
            assert node.feature is not None
            if row[node.feature] <= node.threshold:
                assert node.left is not None
                node = node.left
            else:
                assert node.right is not None
                node = node.right
        return node.prediction

    def depth(self) -> int:
        """Return the depth of the fitted tree (root-only tree has depth 1)."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 1 if node is not None else 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    def node_count(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return 1 + walk(node.left) + walk(node.right)

        return walk(self.root_)


class DecisionTreeRegressor(_BaseTree, Regressor):
    """CART regression tree minimising squared error."""

    def __init__(self, max_depth: int = 8, min_samples_split: int = 4,
                 min_samples_leaf: int = 2,
                 split_search: str = "vectorized") -> None:
        super().__init__(max_depth, min_samples_split, min_samples_leaf,
                         split_search=split_search)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        x = as_2d(features)
        y = as_1d(targets)
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and targets must have the same length")
        self.n_features_ = x.shape[1]
        self._flat = None
        self.root_ = self._grow(x, y, depth=1)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(np.mean(y)))
        if depth >= self.max_depth or x.shape[0] < self.min_samples_split:
            return node
        if np.allclose(y, y[0]):
            return node
        search = (_best_split_regression_scalar if self.split_search == "scalar"
                  else _best_split_regression)
        feature, threshold, _ = search(x, y, self.min_samples_leaf)
        if feature is None:
            return node
        mask = x[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    def predict(self, features: np.ndarray) -> np.ndarray:
        x = as_2d(features)
        flat = self._flatten()
        return flat.prediction[self._batch_leaf_indices(x)]


class DecisionTreeClassifier(_BaseTree, Classifier):
    """CART classification tree minimising Gini impurity."""

    def __init__(self, max_depth: int = 8, min_samples_split: int = 4,
                 min_samples_leaf: int = 2,
                 split_search: str = "vectorized") -> None:
        super().__init__(max_depth, min_samples_split, min_samples_leaf,
                         split_search=split_search)
        self.classes_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTreeClassifier":
        x = as_2d(features)
        y = np.asarray(labels).ravel().astype(int)
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and labels must have the same length")
        self.classes_ = np.unique(y)
        encoded = np.searchsorted(self.classes_, y)
        self.n_features_ = x.shape[1]
        self._flat = None
        self.root_ = self._grow(x, encoded, depth=1, n_classes=len(self.classes_))
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int, n_classes: int) -> _Node:
        counts = np.bincount(y, minlength=n_classes)
        node = _Node(prediction=float(np.argmax(counts)), class_counts=counts)
        if depth >= self.max_depth or x.shape[0] < self.min_samples_split:
            return node
        if len(np.unique(y)) == 1:
            return node
        search = (_best_split_classification_scalar if self.split_search == "scalar"
                  else _best_split_classification)
        feature, threshold, _ = search(x, y, n_classes, self.min_samples_leaf)
        if feature is None:
            return node
        mask = x[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1, n_classes)
        node.right = self._grow(x[~mask], y[~mask], depth + 1, n_classes)
        return node

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("DecisionTreeClassifier has not been fitted yet")
        x = as_2d(features)
        flat = self._flatten()
        encoded = flat.prediction[self._batch_leaf_indices(x)].astype(int)
        return self.classes_[encoded]

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Per-class probabilities, shape (n_samples, n_classes).

        Column ``j`` corresponds to ``classes_[j]``; each row is the
        training-label distribution of the leaf the sample lands in.
        """
        if self.classes_ is None:
            raise RuntimeError("DecisionTreeClassifier has not been fitted yet")
        x = as_2d(features)
        flat = self._flatten()
        counts = flat.class_counts[self._batch_leaf_indices(x)].astype(float)
        return counts / counts.sum(axis=1, keepdims=True)
