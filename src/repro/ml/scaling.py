"""Feature scaling utilities.

Counter values on real SoCs span many orders of magnitude (cycles vs. branch
mispredictions), so both the IL policy networks and the explicit-NMPC surface
models standardise their inputs.  Scalers support incremental updates because
the online-IL policy keeps adapting to new workloads at runtime.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import as_2d


class StandardScaler:
    """Zero-mean / unit-variance scaling with optional online updates."""

    def __init__(self, epsilon: float = 1e-12) -> None:
        self.epsilon = float(epsilon)
        self.mean_: Optional[np.ndarray] = None
        self.var_: Optional[np.ndarray] = None
        self.count_: int = 0

    def fit(self, features: np.ndarray) -> "StandardScaler":
        data = as_2d(features)
        self.mean_ = data.mean(axis=0)
        self.var_ = data.var(axis=0)
        self.count_ = data.shape[0]
        return self

    def partial_fit(self, features: np.ndarray) -> "StandardScaler":
        """Update running mean/variance with a new batch (Chan's algorithm)."""
        data = as_2d(features)
        if self.mean_ is None or self.var_ is None:
            return self.fit(data)
        n_new = data.shape[0]
        new_mean = data.mean(axis=0)
        new_var = data.var(axis=0)
        n_total = self.count_ + n_new
        delta = new_mean - self.mean_
        combined_mean = self.mean_ + delta * n_new / n_total
        m_old = self.var_ * self.count_
        m_new = new_var * n_new
        combined_var = (m_old + m_new + delta**2 * self.count_ * n_new / n_total) / n_total
        self.mean_ = combined_mean
        self.var_ = combined_var
        self.count_ = n_total
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.var_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        data = as_2d(features)
        return (data - self.mean_) / np.sqrt(self.var_ + self.epsilon)

    def inverse_transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.var_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        data = as_2d(features)
        return data * np.sqrt(self.var_ + self.epsilon) + self.mean_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)


class MinMaxScaler:
    """Scale features to the [0, 1] range (used by the Q-table discretiser)."""

    def __init__(self, epsilon: float = 1e-12) -> None:
        self.epsilon = float(epsilon)
        self.min_: Optional[np.ndarray] = None
        self.max_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "MinMaxScaler":
        data = as_2d(features)
        self.min_ = data.min(axis=0)
        self.max_ = data.max(axis=0)
        return self

    def partial_fit(self, features: np.ndarray) -> "MinMaxScaler":
        data = as_2d(features)
        if self.min_ is None or self.max_ is None:
            return self.fit(data)
        self.min_ = np.minimum(self.min_, data.min(axis=0))
        self.max_ = np.maximum(self.max_, data.max(axis=0))
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.max_ is None:
            raise RuntimeError("MinMaxScaler is not fitted")
        data = as_2d(features)
        span = np.maximum(self.max_ - self.min_, self.epsilon)
        return np.clip((data - self.min_) / span, 0.0, 1.0)

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)
