"""Regression and classification metrics used across the experiments.

The paper reports model quality as percentage error (Fig. 2: "<5% error"),
policy quality as accuracy w.r.t. the Oracle (Fig. 3), and energy normalised
to the Oracle (Table II, Fig. 4); the helpers below provide those metrics.
"""

from __future__ import annotations

import numpy as np


def _pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple:
    a = np.asarray(y_true, dtype=float).ravel()
    b = np.asarray(y_pred, dtype=float).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("metrics require at least one sample")
    return a, b


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    a, b = _pair(y_true, y_pred)
    return float(np.mean((a - b) ** 2))


def root_mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    a, b = _pair(y_true, y_pred)
    return float(np.mean(np.abs(a - b)))


def mean_absolute_percentage_error(y_true: np.ndarray, y_pred: np.ndarray,
                                   epsilon: float = 1e-12) -> float:
    """MAPE in percent.  ``epsilon`` guards against division by zero."""
    a, b = _pair(y_true, y_pred)
    denom = np.maximum(np.abs(a), epsilon)
    return float(np.mean(np.abs(a - b) / denom) * 100.0)


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    a, b = _pair(y_true, y_pred)
    ss_res = float(np.sum((a - b) ** 2))
    ss_tot = float(np.sum((a - np.mean(a)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    a = np.asarray(y_true).ravel()
    b = np.asarray(y_pred).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("accuracy requires at least one sample")
    return float(np.mean(a == b))


def normalized_energy(energy: float, oracle_energy: float) -> float:
    """Energy normalised to the Oracle policy (Table II / Fig. 4 metric)."""
    if oracle_energy <= 0:
        raise ValueError(f"oracle energy must be positive, got {oracle_energy}")
    return float(energy) / float(oracle_energy)


def energy_savings_percent(baseline_energy: float, improved_energy: float) -> float:
    """Percent energy savings of ``improved`` vs ``baseline`` (Fig. 5 metric)."""
    if baseline_energy <= 0:
        raise ValueError(f"baseline energy must be positive, got {baseline_energy}")
    return 100.0 * (baseline_energy - improved_energy) / baseline_energy
