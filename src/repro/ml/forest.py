"""Bagged regression-tree ensembles.

A small bagged ensemble of CART trees is used as one of the candidate
approximators for the explicit-NMPC control surface and as a robustness
baseline for the offline IL policy comparisons.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.base import Regressor, as_1d, as_2d
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.rng import make_rng


class BaggedTreesRegressor(Regressor):
    """Bootstrap-aggregated CART regression trees."""

    def __init__(
        self,
        n_estimators: int = 10,
        max_depth: int = 8,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if max_features is not None and not 0.0 < max_features <= 1.0:
            raise ValueError(f"max_features must be in (0, 1], got {max_features}")
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.rng = make_rng(seed)
        self.estimators_: List[DecisionTreeRegressor] = []
        self.feature_subsets_: List[np.ndarray] = []

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "BaggedTreesRegressor":
        x = as_2d(features)
        y = as_1d(targets)
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and targets must have the same length")
        n_samples, n_features = x.shape
        if self.max_features is None:
            subset_size = n_features
        else:
            subset_size = max(1, int(round(self.max_features * n_features)))
        self.estimators_ = []
        self.feature_subsets_ = []
        for _ in range(self.n_estimators):
            sample_idx = self.rng.integers(0, n_samples, size=n_samples)
            feature_idx = np.sort(
                self.rng.choice(n_features, size=subset_size, replace=False)
            )
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit(x[np.ix_(sample_idx, feature_idx)], y[sample_idx])
            self.estimators_.append(tree)
            self.feature_subsets_.append(feature_idx)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("BaggedTreesRegressor has not been fitted yet")
        x = as_2d(features)
        predictions = np.zeros((len(self.estimators_), x.shape[0]))
        for i, (tree, subset) in enumerate(zip(self.estimators_, self.feature_subsets_)):
            predictions[i] = tree.predict(x[:, subset])
        return predictions.mean(axis=0)
