"""From-scratch machine-learning substrate used by the online-learning framework.

Every model used in the paper (recursive least squares, regression trees,
neural-network policies, support vector regression, k-NN surfaces) is
implemented here on top of ``numpy`` only, so the resource-management layer
has no dependency on external ML frameworks — mirroring the paper's emphasis
on firmware-friendly, low-overhead models.
"""

from repro.ml.base import Regressor, Classifier, OnlineRegressor
from repro.ml.scaling import StandardScaler, MinMaxScaler
from repro.ml.metrics import (
    mean_squared_error,
    root_mean_squared_error,
    mean_absolute_error,
    mean_absolute_percentage_error,
    r2_score,
    accuracy_score,
)
from repro.ml.linear import LinearRegressor, RidgeRegressor
from repro.ml.rls import RecursiveLeastSquares
from repro.ml.mlp import MLPRegressor, MLPClassifier
from repro.ml.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    trees_identical,
)
from repro.ml.forest import BaggedTreesRegressor
from repro.ml.svr import SupportVectorRegressor
from repro.ml.knn import KNeighborsRegressor

__all__ = [
    "Regressor",
    "Classifier",
    "OnlineRegressor",
    "StandardScaler",
    "MinMaxScaler",
    "mean_squared_error",
    "root_mean_squared_error",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "r2_score",
    "accuracy_score",
    "LinearRegressor",
    "RidgeRegressor",
    "RecursiveLeastSquares",
    "MLPRegressor",
    "MLPClassifier",
    "DecisionTreeRegressor",
    "DecisionTreeClassifier",
    "trees_identical",
    "BaggedTreesRegressor",
    "SupportVectorRegressor",
    "KNeighborsRegressor",
]
