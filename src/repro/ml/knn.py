"""k-nearest-neighbour regression.

A k-NN look-up table over low-discrepancy samples of the NMPC surface is one
of the classic explicit-MPC approximations (cf. [20]); it is provided here as
an alternative surface model for the explicit-NMPC controller and for
ablation benchmarks comparing approximator choices.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import Regressor, as_1d, as_2d


class KNeighborsRegressor(Regressor):
    """Distance-weighted k-NN regression with Euclidean distance."""

    def __init__(self, n_neighbors: int = 5, weights: str = "distance") -> None:
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if weights not in ("uniform", "distance"):
            raise ValueError(f"weights must be 'uniform' or 'distance', got {weights!r}")
        self.n_neighbors = int(n_neighbors)
        self.weights = weights
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "KNeighborsRegressor":
        x = as_2d(features)
        y = as_1d(targets)
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and targets must have the same length")
        if x.shape[0] < self.n_neighbors:
            raise ValueError(
                f"need at least n_neighbors={self.n_neighbors} samples, got {x.shape[0]}"
            )
        self._x = x.copy()
        self._y = y.copy()
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._x is None or self._y is None:
            raise RuntimeError("KNeighborsRegressor has not been fitted yet")
        queries = as_2d(features)
        predictions = np.empty(queries.shape[0])
        for i, query in enumerate(queries):
            distances = np.sqrt(np.sum((self._x - query) ** 2, axis=1))
            neighbor_idx = np.argsort(distances, kind="stable")[: self.n_neighbors]
            neighbor_dist = distances[neighbor_idx]
            neighbor_y = self._y[neighbor_idx]
            if self.weights == "uniform":
                predictions[i] = float(np.mean(neighbor_y))
            else:
                if np.any(neighbor_dist < 1e-12):
                    # Exact match: return the matching target(s).
                    predictions[i] = float(np.mean(neighbor_y[neighbor_dist < 1e-12]))
                else:
                    w = 1.0 / neighbor_dist
                    predictions[i] = float(np.sum(w * neighbor_y) / np.sum(w))
        return predictions
