"""Abstract interfaces for the ML substrate.

Three roles appear throughout the resource-management stack:

* :class:`Regressor` — batch-trained function approximators used for Oracle
  approximation (offline IL) and explicit-NMPC surface fitting.
* :class:`Classifier` — batch-trained discrete-decision models used when the
  IL policy predicts a configuration index directly.
* :class:`OnlineRegressor` — incrementally updated models (RLS and friends)
  used for runtime power/performance/sensitivity modelling.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np


def as_2d(x: np.ndarray) -> np.ndarray:
    """Coerce ``x`` to a 2-D float array of shape (n_samples, n_features)."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D input, got shape {arr.shape}")
    return arr


def as_1d(y: np.ndarray) -> np.ndarray:
    """Coerce ``y`` to a 1-D float array."""
    arr = np.asarray(y, dtype=float)
    if arr.ndim == 2 and arr.shape[1] == 1:
        arr = arr.ravel()
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D target, got shape {arr.shape}")
    return arr


class Regressor(abc.ABC):
    """Batch regression model interface."""

    @abc.abstractmethod
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "Regressor":
        """Fit the model to ``features`` (n, d) and ``targets`` (n,)."""

    @abc.abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n, d); returns shape (n,)."""

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Return the coefficient of determination R^2 on the given data."""
        from repro.ml.metrics import r2_score

        return r2_score(as_1d(targets), self.predict(features))


class Classifier(abc.ABC):
    """Batch classification model interface (integer class labels)."""

    @abc.abstractmethod
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "Classifier":
        """Fit the model to ``features`` (n, d) and integer ``labels`` (n,)."""

    @abc.abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict integer labels for ``features`` (n, d)."""

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Return classification accuracy on the given data."""
        from repro.ml.metrics import accuracy_score

        return accuracy_score(np.asarray(labels), self.predict(features))


class OnlineRegressor(abc.ABC):
    """Incrementally updated regression model interface."""

    @abc.abstractmethod
    def update(self, features: np.ndarray, target: float) -> float:
        """Consume one sample and return the pre-update prediction error."""

    @abc.abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for one or more feature vectors."""

    def warm_start(self, features: np.ndarray, targets: np.ndarray) -> None:
        """Feed a batch of samples one at a time (offline bootstrap phase)."""
        feats = as_2d(features)
        targs = as_1d(targets)
        if feats.shape[0] != targs.shape[0]:
            raise ValueError("features and targets must have the same length")
        for row, target in zip(feats, targs):
            self.update(row, float(target))


def check_fitted(attribute: Optional[object], name: str) -> None:
    """Raise a consistent error when a model is used before fitting."""
    if attribute is None:
        raise RuntimeError(f"{name} has not been fitted yet; call fit() first")
