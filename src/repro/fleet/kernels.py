"""Cross-session vectorized execution kernel for lockstep fleets.

:func:`lockstep_execute` is the many-device twin of
:meth:`~repro.soc.simulator.SoCSimulator.run_snippet`: one step of ``S``
devices — each with its *own* snippet and its *own* configuration — is
computed as elementwise NumPy arithmetic over length-``S`` arrays instead
of ``S`` scalar simulator calls.

Bitwise equivalence with the scalar path is maintained the same way the
engine sweep (:meth:`~repro.soc.simulator.SoCSimulator
.evaluate_expected_batch`) maintains it: every per-OPP quantity comes from
the simulator's cached scalar-built tables
(:meth:`~repro.soc.simulator.SoCSimulator._cluster_sweep_tables`), and the
remaining operations are ordered exactly like their scalar counterparts —
IEEE-754 elementwise array arithmetic rounds identically to the equivalent
Python-scalar arithmetic.  Measurement noise is handled by the caller
(:class:`~repro.fleet.engine.FleetEngine` pre-draws each device's
log-normal factor stream from the device's own generator, which consumes
the generator exactly like the scalar path's two per-step draws); the
kernel just applies the factors with the scalar path's arithmetic.

The difference from ``evaluate_expected_batch`` is the axis: that kernel
sweeps *one snippet across many configurations* (Oracle construction);
this one sweeps *many (snippet, configuration) pairs* — one per device —
which is why snippet characteristics arrive as per-device rows
(:class:`TraceArrays`) rather than scalars.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.soc.configuration import SoCConfiguration
from repro.soc.counters import PerformanceCounters
from repro.soc.simulator import SnippetResult, SoCSimulator
from repro.soc.snippet import Snippet

#: Column layout of :attr:`TraceArrays.matrix`.
TRACE_COLUMNS = (
    "n_instructions",
    "memory_intensity",
    "memory_access_rate",
    "external_request_rate",
    "branch_misprediction_mpki",
    "ilp_factor",
    "parallel_fraction",
    "thread_count",
    "big_fraction",
)


class TraceArrays:
    """Configuration-independent per-step arrays of one snippet trace.

    Built once per device when a fleet adopts its session; the per-step
    lockstep kernel then gathers one row per device instead of touching
    snippet objects on the hot path.
    """

    __slots__ = ("snippets", "matrix")

    def __init__(self, snippets: Sequence[Snippet]) -> None:
        self.snippets = list(snippets)
        matrix = np.empty((len(self.snippets), len(TRACE_COLUMNS)))
        for t, snippet in enumerate(self.snippets):
            chars = snippet.characteristics
            row = matrix[t]
            row[0] = snippet.n_instructions
            row[1] = chars.memory_intensity
            row[2] = chars.memory_access_rate
            row[3] = chars.external_request_rate
            row[4] = chars.branch_misprediction_mpki
            row[5] = chars.ilp_factor
            row[6] = chars.parallel_fraction
            row[7] = chars.thread_count
            row[8] = chars.big_fraction
        self.matrix = matrix

    def __len__(self) -> int:
        return len(self.snippets)


#: Row value returned by :func:`masked_first_argmin` for an all-masked row
#: under ``on_empty="sentinel"``.
ARGMIN_EMPTY = -1


def masked_first_argmin(costs: np.ndarray, valid: np.ndarray,
                        on_empty: str = "raise") -> np.ndarray:
    """Row-wise argmin over the valid prefix of padded cost rows.

    ``costs`` is a ``(devices, max_candidates)`` matrix whose rows are
    ragged candidate sweeps padded to a common width; ``valid`` is the
    boolean mask of real entries.  Padding is replaced by ``+inf`` so it
    can never win, and ``np.argmin`` over each full row then returns the
    *first* minimum among the valid entries — exactly the scalar sweep's
    first-minimum tie-breaking (``np.argmin`` over the unpadded row, or
    ``min`` over an estimate list).  This is the segmented-argmin step of
    the fleet-wide candidate sweep.

    A row with *no* valid entry has no argmin; letting it fall through to
    ``np.argmin`` over an all-``+inf`` row silently returned position 0.
    The behaviour is now explicit: ``on_empty="raise"`` (default) raises
    :class:`ValueError` naming the offending rows, ``on_empty="sentinel"``
    marks them with :data:`ARGMIN_EMPTY` (``-1``) so callers can degrade
    those rows to a scalar path (as
    :meth:`~repro.core.runtime_oracle.RuntimeOracle.fleet_best_indices`
    does).  ``costs`` entries that are already ``+inf`` but *valid* still
    win normally — only the mask defines emptiness.
    """
    if on_empty not in ("raise", "sentinel"):
        raise ValueError(f"on_empty must be 'raise' or 'sentinel', "
                         f"got {on_empty!r}")
    masked = np.where(valid, costs, np.inf)
    best = np.argmin(masked, axis=1)
    empty = ~valid.any(axis=1)
    if empty.any():
        if on_empty == "raise":
            raise ValueError(
                "masked_first_argmin: rows "
                f"{np.flatnonzero(empty).tolist()} have no valid candidates"
            )
        best = np.where(empty, ARGMIN_EMPTY, best)
    return best


def lockstep_execute(
    simulator: SoCSimulator,
    snippets: Sequence[Snippet],
    char_rows: np.ndarray,
    opp_index: Dict[str, np.ndarray],
    cores: Dict[str, np.ndarray],
    configurations: Sequence[SoCConfiguration],
    noise_factors: Optional[np.ndarray],
) -> List[SnippetResult]:
    """Execute one lockstep step of ``S`` devices on ``simulator``.

    Parameters
    ----------
    snippets / configurations:
        Per-device snippet and configuration objects (result metadata).
    char_rows:
        ``(S, len(TRACE_COLUMNS))`` characteristics matrix — one
        :class:`TraceArrays` row per device.
    opp_index / cores:
        Per-cluster ``(S,)`` integer arrays of each device's decided
        configuration.
    noise_factors:
        ``(S, 2)`` pre-drawn ``exp(normal)`` factors (time, power) in the
        scalar draw order, or ``None`` for noise-free execution.

    Returns the per-device :class:`~repro.soc.simulator.SnippetResult`
    list, bitwise identical to per-device
    :meth:`~repro.soc.simulator.SoCSimulator.run_snippet` calls fed the
    same noise draws.
    """
    n = char_rows.shape[0]
    platform = simulator.platform
    cluster_names = platform.cluster_names

    n_instr = char_rows[:, 0]
    memory_intensity = char_rows[:, 1]
    memory_access_rate = char_rows[:, 2]
    external_request_rate = char_rows[:, 3]
    branch_mpki = char_rows[:, 4]
    ilp_factor = char_rows[:, 5]
    parallel_fraction = char_rows[:, 6]
    thread_count = char_rows[:, 7]
    big_fraction = char_rows[:, 8]

    elapsed: Dict[str, np.ndarray] = {}
    busy: Dict[str, np.ndarray] = {}
    cycles: Dict[str, np.ndarray] = {}
    for name in cluster_names:
        spec = platform.cluster(name)
        frequency_hz, frequency_ghz, _, _ = simulator._cluster_sweep_tables(name)
        if name == "big":
            instructions = n_instr * big_fraction
        else:
            instructions = n_instr * (1.0 - big_fraction)
        # Term grouping mirrors _cluster_cpi / _cluster_time_and_work
        # exactly; zero-instruction lanes flow through as exact 0.0, which
        # is what the scalar early-return produces.
        cpi = spec.base_cpi / ilp_factor
        cpi = cpi + branch_mpki / 1000.0 * spec.branch_penalty_cycles
        cpi = cpi + (memory_intensity / 1000.0 * spec.l2_miss_penalty_ns
                     * frequency_ghz[opp_index[name]])
        lane_cycles = instructions * cpi
        serial_time = lane_cycles / frequency_hz[opp_index[name]]
        usable_cores = np.maximum(
            1.0, np.minimum(cores[name].astype(float), thread_count)
        )
        amdahl_speedup = 1.0 / (
            (1.0 - parallel_fraction) + parallel_fraction / usable_cores
        )
        elapsed[name] = serial_time / amdahl_speedup
        busy[name] = serial_time
        cycles[name] = lane_cycles

    total_time = elapsed[cluster_names[0]]
    for name in cluster_names[1:]:
        total_time = np.maximum(total_time, elapsed[name])
    if np.any(total_time <= 0.0):
        raise ValueError("snippet produced zero execution time")

    l2_misses = n_instr * memory_intensity / 1000.0
    external_requests = l2_misses * external_request_rate
    utilizations, power_breakdown, total_power = (
        simulator._batch_utilization_and_power(
            opp_index, cores, busy, total_time, external_requests, n
        )
    )

    if noise_factors is None:
        measured_time = total_time
        measured_power = total_power
    else:
        measured_time = total_time * noise_factors[:, 0]
        measured_power = total_power * noise_factors[:, 1]
    energy = measured_power * measured_time

    total_cycles = np.zeros(n)
    for name in cluster_names:
        total_cycles = total_cycles + cycles[name]

    # Bulk-convert every array once (tolist is far cheaper than S per-lane
    # float() casts of NumPy scalars) and materialise the result objects.
    time_l = measured_time.tolist()
    power_l = measured_power.tolist()
    energy_l = energy.tolist()
    cycles_l = total_cycles.tolist()
    instr_l = n_instr.tolist()
    branch_l = (n_instr * branch_mpki / 1000.0).tolist()
    l2_l = l2_misses.tolist()
    dma_l = (n_instr * memory_access_rate).tolist()
    external_l = external_requests.tolist()
    util_l = {name: utilizations[name].tolist() for name in cluster_names}
    breakdown_keys = list(power_breakdown)
    breakdown_l = {key: power_breakdown[key].tolist() for key in breakdown_keys}

    little_util = util_l.get("little")
    big_util = util_l.get("big")
    zero = [0.0] * n
    if little_util is None:
        little_util = zero
    if big_util is None:
        big_util = zero
    breakdown_rows = zip(*(breakdown_l[key] for key in breakdown_keys))
    # Field values are valid by construction (they mirror the scalar path,
    # whose identical values pass the dataclass validation every step), so
    # the dataclasses are materialised through their _from_values fast
    # constructors — measurably cheaper than the generated __init__ on
    # this per-device hot path.
    counters_from_values = PerformanceCounters._from_values
    result_from_values = SnippetResult._from_values
    results: List[SnippetResult] = []
    append = results.append
    for (snippet, config, time_s, power_w, energy_j, cycles_i, instr,
         branch, l2, dma, external, u_little, u_big, breakdown) in zip(
            snippets, configurations, time_l, power_l, energy_l, cycles_l,
            instr_l, branch_l, l2_l, dma_l, external_l, little_util,
            big_util, breakdown_rows):
        counters = counters_from_values({
            "instructions_retired": instr,
            "cpu_cycles": cycles_i,
            "branch_mispredictions": branch,
            "l2_cache_misses": l2,
            "data_memory_accesses": dma,
            "noncache_external_memory_requests": external,
            "little_cluster_utilization": u_little,
            "big_cluster_utilization": u_big,
            "total_chip_power_w": power_w,
            "execution_time_s": time_s,
        })
        append(result_from_values({
            "snippet": snippet,
            "configuration": config,
            "execution_time_s": time_s,
            "energy_j": energy_j,
            "average_power_w": power_w,
            "counters": counters,
            "power_breakdown_w": dict(zip(breakdown_keys, breakdown)),
        }))
    return results
