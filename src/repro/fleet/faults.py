"""Deterministic fault injection for fleet simulations.

Real deployments of the paper's online-IL governor do not run on pristine
hardware: performance counters drop out or saturate, devices crash and
reboot mid-trace, stragglers hang, and telemetry arrives corrupted.  This
module makes those failure modes *first-class, reproducible inputs* of a
fleet run, mirroring the scenario-engine design
(:mod:`repro.scenarios.base`):

* A :class:`FaultSpec` is a small frozen dataclass naming one fault on one
  device at one trace step — counter dropout (NaN fields), telemetry
  corruption (saturated/garbage readings), a device crash, a straggler
  stall, or an unplanned snapshot-restart.  Specs are pure data:
  serializable via ``to_dict``/:func:`fault_from_dict` and registered by
  class name, so fault campaigns can live in config files and cross
  process boundaries.
* A :class:`FaultPlan` is the immutable campaign for a whole fleet.
  :meth:`FaultPlan.generate` draws each device's fault from a **per-device
  derived RNG stream** (``derive_seed(seed, (stream, stable_name_id(name)))``
  — never built-in ``hash()``), so a device's faults depend only on the
  plan seed and its own name: adding or removing *other* devices never
  changes what happens to this one.  That independence is what makes the
  quarantine-isolation invariant provable (see
  :mod:`repro.fleet.supervisor`).

Observation faults implement :meth:`ObservationFault.corrupt`, a pure
transform of a :class:`~repro.soc.simulator.SnippetResult` that rewrites
only the *counters* (the telemetry channel) — measured energy/time are the
physical ground truth and stay intact, so a corrupted observation poisons
the learning stack, not the energy accounting.  Corrupted counters are
built through ``PerformanceCounters._from_values`` because the validating
constructor would (correctly) refuse NaN utilizations.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.soc.counters import COUNTER_NAMES, PerformanceCounters
from repro.soc.simulator import SnippetResult
from repro.utils.rng import derive_seed, make_rng, stable_name_id

#: Seed-stream key for everything :meth:`FaultPlan.generate` draws.
_FAULT_STREAM = stable_name_id("fault-plan")

#: Serialization registry: FaultSpec subclass name -> class.
_FAULT_TYPES: Dict[str, type] = {}

#: Counter fields an observation fault may touch.
_CORRUPTIBLE_FIELDS = tuple(COUNTER_NAMES) + ("execution_time_s",)


class FaultSpec(abc.ABC):
    """One named, serializable fault on one device at one trace step.

    Subclasses are frozen dataclasses whose fields are the fault's
    parameters, always including ``device`` (the target's name) and
    ``step`` (the trace cursor at which the fault fires).  ``kind``
    classifies how the supervisor injects it:

    * ``"observation"`` — corrupts the step's telemetry via
      :meth:`ObservationFault.corrupt`; the step still executes.
    * ``"crash"`` — the device dies before deciding the step
      (:class:`~repro.fleet.supervisor.DeviceCrashError`).
    * ``"stall"`` — the device hangs for a number of lockstep rounds
      without making progress (flatlined log).
    * ``"restart"`` — the device reboots unexpectedly and resumes from its
      last durable snapshot.
    """

    #: Injection category (class attribute on each subclass).
    kind: str = ""

    #: One-line human description (class attribute on each subclass).
    description: str = ""

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        _FAULT_TYPES[cls.__name__] = cls

    # -- shared validation ---------------------------------------------- #
    def _validate_target(self) -> None:
        device = getattr(self, "device", "")
        step = getattr(self, "step", -1)
        if not device:
            raise ValueError(f"{type(self).__name__} needs a device name")
        if step < 0:
            raise ValueError(
                f"{type(self).__name__} step must be non-negative, got {step}"
            )

    # -- serialization --------------------------------------------------- #
    def params(self) -> Dict[str, Any]:
        """The fault's parameters as a JSON-compatible dict."""
        if not dataclasses.is_dataclass(self):
            raise TypeError("FaultSpec subclasses must be dataclasses")
        out: Dict[str, Any] = {}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, tuple):
                value = list(value)
            out[spec_field.name] = value
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Serializable description: fault type plus parameters."""
        return {"type": type(self).__name__, "params": self.params()}

    @classmethod
    def from_params(cls, params: Dict[str, Any]) -> "FaultSpec":
        """Reconstruct a fault from :meth:`params` output."""
        return cls(**params)  # type: ignore[call-arg]


class ObservationFault(FaultSpec):
    """Fault that corrupts the telemetry of an executed step."""

    kind = "observation"

    @abc.abstractmethod
    def _corrupt_counters(self, values: Dict[str, float]) -> None:
        """Rewrite the counter field dict in place."""

    def corrupt(self, result: SnippetResult) -> SnippetResult:
        """Pure transform: ``result`` with corrupted counters.

        The input is never mutated; energy/time/power stay intact (they
        are the physically measured outcome — only the counter telemetry
        channel is faulty).  The corrupted counters bypass the validating
        constructor, which would refuse exactly the values a broken sensor
        produces.
        """
        values = result.counters.as_dict()
        self._corrupt_counters(values)
        payload = dict(result.__dict__)
        payload["counters"] = PerformanceCounters._from_values(values)
        return SnippetResult._from_values(payload)


@dataclass(frozen=True)
class CounterDropout(ObservationFault):
    """Named counter fields read back as NaN (sensor dropout)."""

    device: str
    step: int
    fields: Tuple[str, ...] = ("big_cluster_utilization",
                               "little_cluster_utilization")

    description = "performance-counter fields drop out as NaN"

    def __post_init__(self) -> None:
        object.__setattr__(self, "fields", tuple(self.fields))
        self._validate_target()
        unknown = [name for name in self.fields
                   if name not in _CORRUPTIBLE_FIELDS]
        if unknown:
            raise ValueError(
                f"unknown counter fields {unknown}; known: "
                f"{sorted(_CORRUPTIBLE_FIELDS)}"
            )
        if not self.fields:
            raise ValueError("CounterDropout needs at least one field")

    def _corrupt_counters(self, values: Dict[str, float]) -> None:
        for name in self.fields:
            values[name] = float("nan")


@dataclass(frozen=True)
class TelemetryCorruption(ObservationFault):
    """Counters arrive scaled by a garbage gain (saturated/glitched bus).

    Cycle and power counts are multiplied by ``gain``; the utilization
    fields are overwritten *with* ``gain`` (a saturated sensor pegs at its
    rail), which puts them outside ``[0, 1]`` for any ``gain > 1`` — the
    signature :meth:`~repro.soc.counters.PerformanceCounters.is_valid`
    detects.
    """

    device: str
    step: int
    gain: float = 1e6

    description = "telemetry scaled by a garbage gain / saturated sensors"

    def __post_init__(self) -> None:
        self._validate_target()
        if not self.gain > 1.0:
            raise ValueError(
                f"gain must exceed 1 (got {self.gain}); smaller gains are "
                "indistinguishable from measurement noise"
            )

    def _corrupt_counters(self, values: Dict[str, float]) -> None:
        values["cpu_cycles"] *= self.gain
        values["total_chip_power_w"] *= self.gain
        values["big_cluster_utilization"] = self.gain
        values["little_cluster_utilization"] = self.gain


@dataclass(frozen=True)
class DeviceCrash(FaultSpec):
    """The device dies just before deciding step ``step``."""

    device: str
    step: int

    kind = "crash"
    description = "device crashes before deciding the step"

    def __post_init__(self) -> None:
        self._validate_target()


@dataclass(frozen=True)
class StragglerStall(FaultSpec):
    """The device hangs for ``rounds`` lockstep rounds at step ``step``.

    Its log flatlines while the rest of the fleet advances — the signature
    the supervisor's watchdog detects.
    """

    device: str
    step: int
    rounds: int = 6

    kind = "stall"
    description = "device hangs; log flatlines for N lockstep rounds"

    def __post_init__(self) -> None:
        self._validate_target()
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")


@dataclass(frozen=True)
class SnapshotRestart(FaultSpec):
    """The device reboots at step ``step`` and resumes from its snapshot."""

    device: str
    step: int

    kind = "restart"
    description = "unplanned reboot; device resumes from its last snapshot"

    def __post_init__(self) -> None:
        self._validate_target()


def fault_from_dict(payload: Dict[str, Any]) -> FaultSpec:
    """Inverse of :meth:`FaultSpec.to_dict` (registry-dispatched)."""
    try:
        spec_type = payload["type"]
        params = dict(payload.get("params", {}))
    except (TypeError, KeyError) as exc:
        raise ValueError(f"malformed fault payload: {payload!r}") from exc
    if spec_type not in _FAULT_TYPES:
        raise KeyError(
            f"unknown fault type {spec_type!r}; known: {sorted(_FAULT_TYPES)}"
        )
    cls = _FAULT_TYPES[spec_type]
    return cls.from_params(params)


#: Kinds :meth:`FaultPlan.generate` draws from, in a fixed order (the order
#: is part of the deterministic contract — reordering would change every
#: generated plan).
_GENERATED_KINDS: Tuple[str, ...] = (
    "dropout", "corruption", "crash", "stall", "restart",
)


@dataclass(frozen=True)
class FaultPlan:
    """Immutable fault campaign for one fleet run.

    ``faults`` is the full fleet-wide fault list; ``seed`` records the
    generation seed (informational for hand-built plans).  Plans are pure
    data: two plans generated from the same ``(device_names, fault_rate,
    seed, horizon)`` are equal, and :meth:`to_dict`/:meth:`from_dict`
    round-trip through JSON-compatible structures.
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    def device_names(self) -> List[str]:
        """Names of all faulted devices, sorted."""
        return sorted({fault.device for fault in self.faults})

    def for_device(self, name: str) -> Tuple[FaultSpec, ...]:
        """This device's faults, ordered by firing step."""
        return tuple(sorted(
            (fault for fault in self.faults if fault.device == name),
            key=lambda fault: fault.step,
        ))

    # -- serialization --------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        faults = tuple(fault_from_dict(item)
                       for item in payload.get("faults", ()))
        return cls(faults=faults, seed=int(payload.get("seed", 0)))

    # -- generation ------------------------------------------------------ #
    @classmethod
    def generate(
        cls,
        device_names: Any,
        fault_rate: float,
        seed: int = 0,
        horizon: int = 20,
    ) -> "FaultPlan":
        """Draw one fault per device with probability ``fault_rate``.

        Every device's draw comes from its own derived stream
        (``derive_seed(seed, (_FAULT_STREAM, stable_name_id(name)))``), so
        whether/what/when a device faults depends only on ``seed`` and its
        name — never on the rest of the fleet.  ``horizon`` bounds the
        firing step to ``[1, horizon)`` (step 0 is excluded so every device
        observes at least one healthy step and the baseline snapshot is
        meaningful).
        """
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError(
                f"fault_rate must be within [0, 1], got {fault_rate}"
            )
        if horizon < 2:
            raise ValueError(f"horizon must be >= 2, got {horizon}")
        faults: List[FaultSpec] = []
        for name in device_names:
            rng = make_rng(derive_seed(
                seed, (_FAULT_STREAM, stable_name_id(name))
            ))
            # Fixed draw order per device: gate, kind, step, parameters.
            gate = float(rng.random())
            kind = _GENERATED_KINDS[int(rng.integers(len(_GENERATED_KINDS)))]
            step = int(rng.integers(1, horizon))
            if gate >= fault_rate:
                continue
            if kind == "dropout":
                faults.append(CounterDropout(device=name, step=step))
            elif kind == "corruption":
                faults.append(TelemetryCorruption(device=name, step=step))
            elif kind == "crash":
                faults.append(DeviceCrash(device=name, step=step))
            elif kind == "stall":
                rounds = int(rng.integers(2, 9))
                faults.append(StragglerStall(device=name, step=step,
                                             rounds=rounds))
            else:
                faults.append(SnapshotRestart(device=name, step=step))
        return cls(faults=tuple(faults), seed=int(seed))
