"""Lockstep multi-device fleet simulation.

Public surface:

* :class:`~repro.fleet.device.DeviceSpec` — one device's policy, trace,
  seed, and optional scenario / restricted space.
* :func:`~repro.fleet.device.build_fleet` /
  :func:`~repro.fleet.device.device_session` — lower device specs onto
  sessions and a ready engine.
* :class:`~repro.fleet.engine.FleetEngine` — advance N sessions in
  lockstep with cross-session batched decides and executions, bitwise
  identical to N independent sequential runs.
* :func:`~repro.fleet.kernels.lockstep_execute` /
  :class:`~repro.fleet.kernels.TraceArrays` — the vectorized
  many-device execution kernel.
"""

from repro.fleet.device import DeviceSpec, build_fleet, device_session
from repro.fleet.engine import FleetEngine
from repro.fleet.kernels import TraceArrays, lockstep_execute

__all__ = [
    "DeviceSpec",
    "FleetEngine",
    "TraceArrays",
    "build_fleet",
    "device_session",
    "lockstep_execute",
]
