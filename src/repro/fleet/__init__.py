"""Lockstep multi-device fleet simulation.

Public surface:

* :class:`~repro.fleet.device.DeviceSpec` — one device's policy, trace,
  seed, and optional scenario / restricted space.
* :func:`~repro.fleet.device.build_fleet` /
  :func:`~repro.fleet.device.device_session` — lower device specs onto
  sessions and a ready engine (warning about RNG hazards via
  :class:`~repro.fleet.device.FleetBuildWarning`).
* :class:`~repro.fleet.engine.FleetEngine` — advance N sessions in
  lockstep with cross-session batched decides and executions, bitwise
  identical to N independent sequential runs.
* :func:`~repro.fleet.kernels.lockstep_execute` /
  :class:`~repro.fleet.kernels.TraceArrays` — the vectorized
  many-device execution kernel.
* :class:`~repro.fleet.faults.FaultPlan` and the
  :class:`~repro.fleet.faults.FaultSpec` family — deterministic,
  seedable fault injection (counter dropout, telemetry corruption,
  crashes, stragglers, snapshot-restarts).
* :class:`~repro.fleet.supervisor.FleetSupervisor` — health state
  machine, flatline watchdog, quarantine and snapshot-restart recovery
  layered over the engine without disturbing its bitwise contract.
* :class:`~repro.fleet.sharding.ShardedFleetEngine` — partition the
  device list across a persistent worker-process pool (step tensors via
  shared memory, O(devices) streamed summaries), bitwise identical to
  the single-process engine and invariant to the shard count.
"""

from repro.fleet.device import (
    DeviceSpec,
    FleetBuildWarning,
    build_fleet,
    device_session,
)
from repro.fleet.engine import FleetEngine
from repro.fleet.faults import (
    CounterDropout,
    DeviceCrash,
    FaultPlan,
    FaultSpec,
    ObservationFault,
    SnapshotRestart,
    StragglerStall,
    TelemetryCorruption,
    fault_from_dict,
)
from repro.fleet.kernels import TraceArrays, lockstep_execute
from repro.fleet.sharding import (
    ShardDeviceSummary,
    ShardedFleetEngine,
    ShardExecutionError,
    shutdown_workers,
)
from repro.fleet.supervisor import (
    DeviceCrashError,
    DeviceHealth,
    DeviceStatus,
    FleetSupervisor,
)

__all__ = [
    "CounterDropout",
    "DeviceCrash",
    "DeviceCrashError",
    "DeviceHealth",
    "DeviceSpec",
    "DeviceStatus",
    "FaultPlan",
    "FaultSpec",
    "FleetBuildWarning",
    "FleetEngine",
    "FleetSupervisor",
    "ObservationFault",
    "ShardDeviceSummary",
    "ShardExecutionError",
    "ShardedFleetEngine",
    "SnapshotRestart",
    "StragglerStall",
    "TelemetryCorruption",
    "TraceArrays",
    "build_fleet",
    "device_session",
    "fault_from_dict",
    "lockstep_execute",
    "shutdown_workers",
]
