"""Lockstep fleet engine: advance many :class:`PolicySession`\\ s together.

The paper's deployment story is the online-IL governor running on *every*
device of a fleet.  :class:`FleetEngine` simulates exactly that: ``N``
heterogeneous devices — each with its own seed, snippet sequence, policy
state and (optionally) scenario schedule or restricted configuration space
— advanced one decision epoch at a time, in lockstep.

Equivalence contract
--------------------
A lockstep fleet produces **bitwise-identical per-device RunLogs** to the
same ``N`` sessions driven to completion sequentially, provided each
session owns an independent measurement-noise generator (sessions share no
mutable state, so interleaving their steps cannot change any value).  The
engine exploits that freedom on two phases:

* **decide** — sessions whose policies advertise a shared
  :meth:`~repro.control.policy.DRMPolicy.fleet_decide_key` have their
  per-step decisions computed by one batched
  :meth:`~repro.control.policy.DRMPolicy.fleet_decide` call (the policy
  implements the batch as an exact mirror of its scalar rule); everyone
  else falls back to per-session scalar :meth:`~repro.core.session
  .PolicySession.decide`.
* **execute** — sessions running on a stock
  :class:`~repro.soc.simulator.SoCSimulator` are executed through the
  cross-session vectorized kernel
  (:func:`~repro.fleet.kernels.lockstep_execute`).  Their
  configuration-independent snippet characteristics and their pre-drawn
  log-normal noise factors (consumed from each device's own generator in
  the scalar draw order) live in fleet-wide padded tensors built once at
  :meth:`prepare`, so the per-step inputs are two fancy-indexing gathers.
  Sessions with exotic simulators (or shared/missing generators) fall
  back to scalar :meth:`~repro.core.session.PolicySession.execute`.

* **observe** — policies advertising a shared
  :meth:`~repro.control.policy.DRMPolicy.fleet_observe_key` (online-IL:
  its per-device observe is two rank-1 RLS model updates) have their
  feedback delivered by one batched
  :meth:`~repro.control.policy.DRMPolicy.fleet_observe` call before the
  per-session bookkeeping (:meth:`~repro.core.session.PolicySession
  .observe` with ``policy_observed=True``: counters, accounting, log
  record) runs unchanged.  Everyone else observes scalar, which is what
  lets arbitrary learning policies ride in the same fleet.

Sessions under a scenario schedule batch too: the engine mirrors the
session's clamp/throttle phase on the batched decisions before installing
the pending step, so restricted-space windows stay bitwise faithful.

Once :meth:`run` (or :meth:`prepare`) has adopted a session for batched
execution, its noise stream has been pre-drawn — keep driving it through
the engine rather than calling ``session.execute`` directly.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.session import PolicySession, SessionStep
from repro.fleet.kernels import TraceArrays, lockstep_execute
from repro.soc.simulator import SnippetResult, SoCSimulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fleet -> core)
    from repro.core.framework import PolicyRunResult


class _ExecGroup:
    """Sessions sharing one simulator, with fleet-wide step tensors.

    ``chars`` is the padded ``(n_sessions, T_max, n_columns)`` snippet
    characteristics tensor and ``noise`` the matching ``(n_sessions,
    T_max, 2)`` pre-drawn ``exp(normal)`` factor tensor (``None`` for
    noise-free simulators).  A session's tensor row is its *position* in
    ``sessions`` — an explicit index, never an ``id()``-derived key, so
    the group survives pickling and can be rebuilt across process
    boundaries (sharded fleets).  ``fleet_rows`` maps each group row to
    the session's row in the owning engine's session list.  One step of
    the group gathers both tensors with a single fancy index.
    """

    __slots__ = ("simulator", "sessions", "fleet_rows", "chars", "noise",
                 "uniform_soa", "active_members", "active_rows",
                 "active_fleet_rows", "initial_rng", "preset")

    def __init__(self, simulator: SoCSimulator,
                 sessions: List[PolicySession],
                 fleet_rows: List[int],
                 preset: Optional[Tuple[np.ndarray,
                                        Optional[np.ndarray]]] = None) -> None:
        self.simulator = simulator
        self.sessions = sessions
        self.fleet_rows = fleet_rows
        # Generator state of each session *before* its noise stream is
        # pre-drawn below, keyed by the session's group row, with the step
        # index the stream was positioned at.  FleetEngine
        # .sequential_rng_state reconstructs the sequential-equivalent
        # generator from it.
        self.initial_rng: Dict[int, Tuple[dict, int]] = {}
        spaces = {session.space.content_key() for session in sessions}
        self.uniform_soa = (sessions[0].space.soa_view()
                            if len(spaces) == 1 else None)
        self.active_members: List[PolicySession] = []
        self.active_rows = np.empty(0, dtype=np.intp)
        self.active_fleet_rows: List[int] = []
        self.preset = preset
        if preset is not None:
            # Precomputed step tensors (shared-memory shards): the parent
            # engine already drew every session's noise factors from a
            # clone of its generator state — exactly the draws below — so
            # the tensors are adopted as-is.  The generator-state
            # bookkeeping still runs (the sessions' streams were never
            # consumed here), keeping sequential_rng_state exact.
            self.chars, self.noise = preset
            noise_scale = simulator.noise_scale
            if noise_scale == 0.0 or self.noise is None:
                self.noise = None
                return
            for row, session in enumerate(sessions):
                remaining = len(session) - session.step_index
                if remaining <= 0:
                    continue
                self.initial_rng[row] = (
                    session.rng.bit_generator.state, session.step_index
                )
                # Consume the pre-drawn prefix so session.rng sits exactly
                # where the in-process pre-draw would have left it.
                session.rng.normal(0.0, noise_scale, size=(remaining, 2))
            return
        t_max = max(len(session) for session in sessions)
        traces = [TraceArrays(session.snippets) for session in sessions]
        n_columns = traces[0].matrix.shape[1]
        self.chars = np.zeros((len(sessions), t_max, n_columns))
        for row, trace in enumerate(traces):
            self.chars[row, :len(trace)] = trace.matrix
        noise_scale = simulator.noise_scale
        if noise_scale == 0.0:
            self.noise: Optional[np.ndarray] = None
            return
        self.noise = np.ones((len(sessions), t_max, 2))
        for row, session in enumerate(sessions):
            remaining = len(session) - session.step_index
            if remaining <= 0:
                continue
            # Exactly the scalar path's per-step draws: two normals per
            # step (time then power), consumed in step order from the
            # session's own generator, exponentiated elementwise.
            start = session.step_index
            self.initial_rng[row] = (
                session.rng.bit_generator.state, start
            )
            self.noise[row, start:start + remaining] = np.exp(
                session.rng.normal(0.0, noise_scale, size=(remaining, 2))
            )

    def refresh(self) -> None:
        self.active_members = []
        self.active_fleet_rows = []
        rows: List[int] = []
        for row, session in enumerate(self.sessions):
            if session._cursor < session._trace_len:
                self.active_members.append(session)
                self.active_fleet_rows.append(self.fleet_rows[row])
                rows.append(row)
        self.active_rows = np.array(rows, dtype=np.intp)


class _DecideGroup:
    """Sessions whose policies share one batched-decide key.

    ``active_members``/``active_policies`` cache the not-yet-finished
    subset; the engine refreshes them only when some session completes,
    so steady-state steps skip the per-step filtering entirely.  ``state``
    is the group's persistent scratch dict, handed to every
    ``fleet_decide`` call so stateful policies (online-IL) can memoise
    their adopted cross-device stacks across steps.
    """

    __slots__ = ("sessions", "active_members", "active_policies", "state")

    def __init__(self, sessions: List[PolicySession]) -> None:
        self.sessions = sessions
        self.active_members: List[PolicySession] = []
        self.active_policies: List = []
        self.state: Dict = {}

    def refresh(self) -> None:
        self.active_members = [session for session in self.sessions
                               if session._cursor < session._trace_len]
        self.active_policies = [session.policy
                                for session in self.active_members]


class _ObserveGroup(_DecideGroup):
    """Sessions whose policies share one batched-observe key.

    Same caching/refresh structure as :class:`_DecideGroup` (the keys are
    computed independently, so decide and observe groups may partition the
    fleet differently); ``state`` persists across ``fleet_observe`` calls.
    """

    __slots__ = ()


class FleetEngine:
    """Advances a set of policy sessions in lockstep with cross-session batching."""

    def __init__(
        self,
        sessions: Sequence[PolicySession],
        batch_decide: bool = True,
        batch_execute: bool = True,
        batch_observe: bool = True,
    ) -> None:
        self.sessions: List[PolicySession] = list(sessions)
        if not self.sessions:
            raise ValueError("FleetEngine needs at least one session")
        self.batch_decide = bool(batch_decide)
        self.batch_execute = bool(batch_execute)
        self.batch_observe = bool(batch_observe)
        self.steps_executed = 0
        self.batched_executions = 0
        self.batched_decisions = 0
        self.batched_observes = 0
        self._prepared = False
        # Fleet row of each session: its explicit position in
        # self.sessions.  Keyed by the session object itself (identity
        # hash, holding a strong reference) — never by id(), whose values
        # are process-local and reusable after garbage collection.
        self._fleet_row: Dict[PolicySession, int] = {
            session: row for row, session in enumerate(self.sessions)
        }
        self._scalar_decide: List[PolicySession] = []
        self._decide_groups: List[_DecideGroup] = []
        self._exec_groups: List[_ExecGroup] = []
        self._scalar_execute: List[PolicySession] = []
        self._scalar_execute_rows: List[int] = []
        self._observe_groups: List[_ObserveGroup] = []
        self._active: List[PolicySession] = []
        self._active_rows: List[int] = []
        self._active_dirty = True
        # Optional precomputed (chars, noise) step tensors per exec group,
        # keyed by the sorted tuple of member fleet rows; installed by
        # ShardedFleetEngine workers before prepare() so the padded
        # tensors come from shared memory instead of being rebuilt.
        self._exec_presets: Dict[Tuple[int, ...],
                                 Tuple[np.ndarray,
                                       Optional[np.ndarray]]] = {}

    # ------------------------------------------------------------------ #
    # Preparation
    # ------------------------------------------------------------------ #
    def _session_decide_key(self, session: PolicySession) -> Optional[Tuple]:
        """Batched-decide group key of ``session`` (None = scalar fallback).

        Batching a decide requires the policy to reason over exactly the
        session's space; a scenario schedule is fine — the engine mirrors
        the session's clamp/throttle phase on the batched decisions before
        installing each pending step.
        """
        if not self.batch_decide:
            return None
        if session.policy.space is not session.space:
            return None
        return session.policy.fleet_decide_key()

    def _session_observe_key(self, session: PolicySession) -> Optional[Tuple]:
        """Batched-observe group key of ``session`` (None = scalar observe)."""
        if not self.batch_observe:
            return None
        if session.policy.space is not session.space:
            return None
        return session.policy.fleet_observe_key()

    def _execute_batchable(self, session: PolicySession,
                           rng_users: Counter) -> bool:
        """Whether ``session`` may run through the vectorized kernel.

        Requires a stock :class:`SoCSimulator` execution path (subclasses
        overriding ``run_snippet`` keep their override) and a private
        noise generator — pre-drawing from a stream some other consumer
        also draws from (another session, the simulator itself, or the
        session's own policy via a shared/aliased generator) would reorder
        draws relative to sequential runs.  Policies stashing a generator
        under an unconventional attribute name escape the heuristic
        aliasing check — give every device a generator of its own.
        """
        if not self.batch_execute:
            return False
        simulator = session.simulator
        if type(simulator).run_snippet is not SoCSimulator.run_snippet:
            return False
        rng = session.rng
        if rng is None or rng is simulator.rng:
            return False
        for attr in ("rng", "_rng"):
            if getattr(session.policy, attr, None) is rng:
                return False
        return rng_users[rng] == 1

    def prepare(self) -> None:
        """Classify sessions and build the fleet step tensors (idempotent)."""
        if self._prepared:
            return
        # Counters/dicts below key on the objects themselves (generators,
        # simulators) — identity-hashed with strong references, so keys
        # can never alias through address reuse the way id() keys can.
        rng_users = Counter(
            session.rng for session in self.sessions
            if session.rng is not None
        )
        decide_groups: Dict[Tuple, List[PolicySession]] = {}
        exec_groups: Dict[SoCSimulator, List[PolicySession]] = {}
        observe_groups: Dict[Tuple, List[PolicySession]] = {}
        for session in self.sessions:
            key = self._session_decide_key(session)
            if key is None:
                self._scalar_decide.append(session)
            else:
                decide_groups.setdefault(key, []).append(session)
            if self._execute_batchable(session, rng_users):
                exec_groups.setdefault(session.simulator, []).append(session)
            else:
                self._scalar_execute.append(session)
                self._scalar_execute_rows.append(self._fleet_row[session])
            observe_key = self._session_observe_key(session)
            if observe_key is not None:
                observe_groups.setdefault(observe_key, []).append(session)
        self._decide_groups = [
            _DecideGroup(members) for members in decide_groups.values()
        ]
        self._exec_groups = []
        for simulator, members in exec_groups.items():
            fleet_rows = [self._fleet_row[session] for session in members]
            preset = self._exec_presets.get(tuple(sorted(fleet_rows)))
            self._exec_groups.append(
                _ExecGroup(simulator, members, fleet_rows, preset=preset)
            )
        self._observe_groups = [
            _ObserveGroup(members) for members in observe_groups.values()
            if len(members) >= 2
        ]
        self._prepared = True

    def execute_fallback_sessions(self) -> List[PolicySession]:
        """Sessions whose executions would run scalar (no batched kernel).

        Pure classification — usable before :meth:`prepare` (no step
        tensors are built and no noise is pre-drawn), so fleet builders
        can surface the silent performance degradation eagerly
        (:func:`~repro.fleet.device.build_fleet` warns with the device
        names).
        """
        rng_users = Counter(
            session.rng for session in self.sessions
            if session.rng is not None
        )
        return [session for session in self.sessions
                if not self._execute_batchable(session, rng_users)]

    def sequential_rng_state(
        self, session: PolicySession
    ) -> Optional[np.random.Generator]:
        """Generator positioned as sequential scalar stepping would leave it.

        Adopting a session for batched execution pre-draws its private
        noise stream for the whole remaining trace at :meth:`prepare`, so
        ``session.rng`` no longer reflects the session's *logical*
        position.  For snapshotting an engine-resident session, this
        rebuilds an equivalent generator: the pre-draw-time state is
        restored into a fresh bit generator and exactly the draws of the
        completed steps (two normals each, the scalar order) are consumed.
        Scalar-execute and noise-free sessions return ``session.rng``
        unchanged — their stream already is sequential.
        """
        self.prepare()
        for group in self._exec_groups:
            row = next((r for r, member in enumerate(group.sessions)
                        if member is session), None)
            if row is None:
                continue
            entry = group.initial_rng.get(row)
            if entry is None:  # noise-free simulator: stream never touched
                return session.rng
            state, start = entry
            bit_generator = type(session.rng.bit_generator)()
            bit_generator.state = state
            rng = np.random.Generator(bit_generator)
            consumed = session._cursor - start
            if consumed > 0:
                # Same prefix consumption as the pre-draw (numpy fills the
                # output sequentially from the bit stream), so the rebuilt
                # generator sits exactly after the observed steps' draws.
                rng.normal(0.0, group.simulator.noise_scale,
                           size=(consumed, 2))
            return rng
        return session.rng

    def release_sessions(self) -> List[PolicySession]:
        """Detach every session with a sequential-equivalent noise stream.

        Adopted sessions had their private generators pre-drawn to the end
        of the trace at :meth:`prepare`; this resets each ``session.rng``
        to :meth:`sequential_rng_state` so the sessions can be handed to a
        *new* engine (or driven scalar) and continue bitwise identically
        to an uninterrupted sequential run.  The control plane uses this
        to rebuild the engine after a structural dispatch (e.g. a policy
        swap).  This engine must be discarded afterwards — its pre-drawn
        tensors no longer own the sessions' streams.
        """
        self.prepare()
        for session in self.sessions:
            session.rng = self.sequential_rng_state(session)
        return self.sessions

    # ------------------------------------------------------------------ #
    # Lockstep stepping
    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        return all(session.done for session in self.sessions)

    def step(self) -> int:
        """Advance every unfinished session by one step; returns the count."""
        self.prepare()
        if self._active_dirty:
            self._refresh_active()
            self._active_dirty = False
        active = self._active
        if not active:
            return 0
        self._decide_phase()
        self._execute_and_observe_phase()
        self.steps_executed += len(active)
        for session in active:
            if session.done:
                self._active_dirty = True
                break
        return len(active)

    def run(self) -> List["PolicyRunResult"]:
        """Drive every session to completion; returns per-device results."""
        self.prepare()
        while not self.done:
            self.step()
        return [session.result() for session in self.sessions]

    # ------------------------------------------------------------------ #
    # Phase implementations
    # ------------------------------------------------------------------ #
    def _refresh_active(self) -> None:
        """Rebuild the cached not-yet-finished views (on fleet shrinkage)."""
        self._active = []
        self._active_rows = []
        for row, session in enumerate(self.sessions):
            if session._cursor < session._trace_len:
                self._active.append(session)
                self._active_rows.append(row)
        for decide_group in self._decide_groups:
            decide_group.refresh()
        for exec_group in self._exec_groups:
            exec_group.refresh()
        for observe_group in self._observe_groups:
            observe_group.refresh()

    def _decide_phase(self) -> None:
        """Install a pending :class:`SessionStep` on every active session."""
        for session in self._scalar_decide:
            if session._cursor < session._trace_len:
                session.decide()
        step_from_values = SessionStep._from_values
        for group in self._decide_groups:
            members = group.active_members
            if not members:
                continue
            policies = group.active_policies
            counters = [session.counters for session in members]
            snippets = []
            for session in members:
                if session._pending is not None:
                    # Same invariant session.decide() enforces: a step
                    # decided outside the engine (or left behind by a
                    # failed observe) must not be silently clobbered —
                    # its policy state already advanced past ours.
                    raise RuntimeError(
                        f"session {session.name!r} has an unobserved "
                        "pending step"
                    )
                snippets.append(session.snippets[session._cursor])
            configs, indices = type(policies[0]).fleet_decide(
                policies, counters, snippets, group.state
            )
            for session, snippet, proposed, index in zip(
                    members, snippets, configs, indices):
                # Fast-path construction of the step the session's own
                # decide() would have produced; installing it directly is
                # adopt_step() minus the cursor-alignment check the
                # lockstep loop guarantees by construction (the pending
                # check ran above).  The clamp/throttle mirror below is
                # session.decide()'s, statement for statement.
                config = proposed
                throttled = False
                if session.space_schedule is not None:
                    active_space = session.space_schedule(session._cursor)
                    throttled = active_space is not session.space
                    if throttled and not active_space.contains(config):
                        config = active_space.clamp(config)
                        index = session.space._index.get(config)
                session._pending = step_from_values({
                    "index": session._cursor,
                    "snippet": snippet,
                    "proposed": proposed,
                    "configuration": config,
                    "throttled": throttled,
                    "configuration_index": index,
                })
            self.batched_decisions += len(members)

    def _execute_and_observe_phase(self) -> None:
        """Execute every pending step and feed the outcomes back.

        Execution results are collected first (batched kernel groups plus
        scalar stragglers), then observe groups deliver their policies'
        feedback through one ``fleet_observe`` call each before the
        per-session bookkeeping observe runs; everyone else observes
        scalar.  Sessions share no mutable state, so the regrouping cannot
        change any value relative to the sequential order.
        """
        # Execution results indexed by explicit fleet row (the session's
        # position in self.sessions) — no id()-keyed maps on the hot path.
        results_of: List[Optional[SnippetResult]] = [None] * len(self.sessions)
        for group in self._exec_groups:
            members = group.active_members
            if not members:
                continue
            results = self._execute_group(group, members)
            for fleet_row, result in zip(group.active_fleet_rows, results):
                results_of[fleet_row] = result
            self.batched_executions += len(members)
        for fleet_row, session in zip(self._scalar_execute_rows,
                                      self._scalar_execute):
            if session._pending is not None:
                results_of[fleet_row] = session.execute(session._pending)
        batch_observed: set = set()
        fleet_row_of = self._fleet_row
        for group in self._observe_groups:
            members = group.active_members
            if len(members) < 2:
                continue
            steps = [session._pending for session in members]
            member_rows = [fleet_row_of[session] for session in members]
            results = [results_of[row] for row in member_rows]
            policies = group.active_policies
            type(policies[0]).fleet_observe(
                policies, steps, results, group.state
            )
            for session, step, result in zip(members, steps, results):
                session.observe(step, result, policy_observed=True)
            self.batched_observes += len(members)
            batch_observed.update(member_rows)
        for fleet_row, session in zip(self._active_rows, self._active):
            if fleet_row in batch_observed:
                continue
            step = session._pending
            if step is not None:
                session.observe(step, results_of[fleet_row])

    def _execute_group(
        self,
        group: _ExecGroup,
        members: Sequence[PolicySession],
    ) -> List[SnippetResult]:
        n = len(members)
        rows = group.active_rows
        cursors = np.fromiter((session._cursor for session in members),
                              dtype=np.intp, count=n)
        char_rows = group.chars[rows, cursors]
        noise = None if group.noise is None else group.noise[rows, cursors]
        group_steps = [session._pending for session in members]
        simulator = group.simulator
        cluster_names = simulator.platform.cluster_names
        opp_index: Dict[str, np.ndarray] = {}
        cores: Dict[str, np.ndarray] = {}
        soa = group.uniform_soa
        if (soa is not None
                and all(step.configuration_index is not None
                        for step in group_steps)):
            # Every decided configuration is index-addressed in one shared
            # space: gather the knob columns straight from its SoA view.
            indices = np.fromiter(
                (step.configuration_index for step in group_steps),
                dtype=np.intp, count=n,
            )
            for name in cluster_names:
                arrays = soa.cluster(name)
                opp_index[name] = arrays.opp_index[indices]
                cores[name] = arrays.active_cores[indices]
        else:
            for name in cluster_names:
                opp_index[name] = np.fromiter(
                    (step.configuration.opp_index(name)
                     for step in group_steps), dtype=np.intp, count=n,
                )
                cores[name] = np.fromiter(
                    (step.configuration.cores(name)
                     for step in group_steps), dtype=np.intp, count=n,
                )
        return lockstep_execute(
            simulator,
            [step.snippet for step in group_steps],
            char_rows,
            opp_index,
            cores,
            [step.configuration for step in group_steps],
            noise,
        )
