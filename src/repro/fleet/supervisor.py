"""Fleet supervision: health tracking, fault injection, graceful recovery.

:class:`FleetSupervisor` wraps the lockstep :class:`~repro.fleet.engine
.FleetEngine` with the control-plane behaviour a real deployment needs
(the gridworks-scada precedent: per-device health, flatline detection,
snapshot/restart):

* **Partitioned execution.**  Devices named in the :class:`~repro.fleet
  .faults.FaultPlan` are driven *scalar* by the supervisor (fault
  injection needs per-phase access); all fault-free devices run inside an
  untouched inner ``FleetEngine`` with full cross-device batching.  This
  partition is what makes the two robustness invariants provable rather
  than aspirational:

  - **zero-fault identity** — with an empty plan every device lives in
    the inner engine and the supervisor adds nothing but read-only health
    scans, so a supervised run is *bitwise identical* to a bare
    ``FleetEngine`` run;
  - **quarantine isolation** — faulted devices never enter the engine, and
    per-device noise/fault streams are derived independently of fleet
    membership, so the surviving devices of a fleet where K devices crash
    are *bitwise identical* to a fleet built without the crashed devices.

* **Health state machine.**  Every device is ``HEALTHY`` until the
  watchdog flags it ``DEGRADED`` (its log flatlined for
  ``watchdog_rounds`` lockstep rounds), and is ``QUARANTINED`` on a crash
  or a sustained flatline.  Quarantine never disturbs the other devices:
  the supervisor simply stops driving the session.  A quarantined device
  with restart budget left restores from its last durable snapshot
  (checksummed, atomic temp+rename — :meth:`~repro.core.session
  .PolicySession.save_snapshot`) and becomes ``RECOVERED``; replayed
  steps re-execute deterministically, so a recovered device's final log
  is bitwise identical to an uninterrupted run.

* **Durable snapshots.**  A baseline snapshot is taken before the first
  step and refreshed every ``snapshot_every`` completed steps — in memory
  by default, or under ``snapshot_dir`` as checksummed snapshot files
  that survive the process.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.session import PolicySession
from repro.fleet.device import DeviceSpec, build_fleet, device_session
from repro.fleet.engine import FleetEngine
from repro.fleet.faults import FaultPlan, FaultSpec, ObservationFault
from repro.soc.configuration import ConfigurationSpace
from repro.soc.simulator import SoCSimulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fleet -> core)
    from repro.core.framework import PolicyRunResult


class DeviceHealth(Enum):
    """Per-device supervision state."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    QUARANTINED = "quarantined"
    RECOVERED = "recovered"


class DeviceCrashError(RuntimeError):
    """A supervised device died mid-step (injected or real)."""


@dataclass
class DeviceStatus:
    """Snapshot of one device's supervision outcome (JSON-friendly)."""

    name: str
    health: str
    supervised: bool
    steps_completed: int
    trace_steps: int
    completed: bool
    crashes: int = 0
    stalls: int = 0
    restarts: int = 0
    replayed_steps: int = 0
    wasted_energy_j: float = 0.0
    corrupted_observations: int = 0
    watchdog_flags: int = 0


class _Supervised:
    """Book-keeping for one scalar-driven (fault-plan) device."""

    __slots__ = (
        "device", "session", "faults", "fired", "health", "history",
        "stall_remaining", "restarts_used", "snapshot", "snapshot_path",
        "last_cursor", "no_progress_rounds", "crashes", "stalls",
        "replayed_steps", "wasted_energy_j", "corrupted_observations",
        "watchdog_flags",
    )

    def __init__(self, device: DeviceSpec, session: PolicySession,
                 faults: Tuple[FaultSpec, ...]) -> None:
        self.device = device
        self.session = session
        self.faults = faults
        self.fired: set = set()
        self.health = DeviceHealth.HEALTHY
        self.history: List[DeviceHealth] = [DeviceHealth.HEALTHY]
        self.stall_remaining = 0
        self.restarts_used = 0
        self.snapshot: Optional[bytes] = None
        self.snapshot_path: Optional[Path] = None
        self.last_cursor = session.step_index
        self.no_progress_rounds = 0
        self.crashes = 0
        self.stalls = 0
        self.replayed_steps = 0
        self.wasted_energy_j = 0.0
        self.corrupted_observations = 0
        self.watchdog_flags = 0

    def transition(self, health: DeviceHealth) -> None:
        if health is not self.health:
            self.health = health
            self.history.append(health)


class FleetSupervisor:
    """Drive a device fleet to completion under supervision and faults.

    ``plan`` selects which devices are scalar-supervised (those it names)
    versus batched through the inner engine (everyone else); ``None`` or
    an empty plan supervises nothing and is bitwise identical to a bare
    :class:`~repro.fleet.engine.FleetEngine`.  ``snapshot_every`` is the
    durable-snapshot cadence in completed steps (a baseline snapshot at
    step 0 is always taken); ``watchdog_rounds`` is how many lockstep
    rounds a supervised device's log may flatline before it is flagged
    ``DEGRADED`` (quarantine follows at twice that); ``max_restarts``
    bounds snapshot-restarts per device — a device that exhausts it stays
    ``QUARANTINED`` and the fleet completes without it.  ``snapshot_dir``
    switches snapshots from in-memory bytes to on-disk checksummed files.
    """

    def __init__(
        self,
        devices: Sequence[DeviceSpec],
        simulator: SoCSimulator,
        base_space: ConfigurationSpace,
        plan: Optional[FaultPlan] = None,
        batch_decide: bool = True,
        batch_execute: bool = True,
        snapshot_every: int = 5,
        watchdog_rounds: int = 3,
        max_restarts: int = 2,
        snapshot_dir: Optional[Union[str, Path]] = None,
        sessions: Optional[Sequence[PolicySession]] = None,
    ) -> None:
        self.devices: List[DeviceSpec] = list(devices)
        if not self.devices:
            raise ValueError("FleetSupervisor needs at least one device")
        names = [device.name for device in self.devices]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate device names in fleet: {names}")
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        if watchdog_rounds < 1:
            raise ValueError(
                f"watchdog_rounds must be >= 1, got {watchdog_rounds}"
            )
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.plan = plan if plan is not None else FaultPlan()
        unknown = set(self.plan.device_names()) - set(names)
        if unknown:
            raise ValueError(
                f"fault plan names devices not in the fleet: {sorted(unknown)}"
            )
        self.simulator = simulator
        self.base_space = base_space
        self.snapshot_every = int(snapshot_every)
        self.watchdog_rounds = int(watchdog_rounds)
        self.max_restarts = int(max_restarts)
        self.snapshot_dir = Path(snapshot_dir) if snapshot_dir is not None \
            else None
        self.rounds = 0
        self._batch_decide = bool(batch_decide)
        self._batch_execute = bool(batch_execute)

        if sessions is not None and len(sessions) != len(self.devices):
            raise ValueError(
                f"sessions count {len(sessions)} does not match device "
                f"count {len(self.devices)}"
            )
        faulted = set(self.plan.device_names())
        self._supervised: List[_Supervised] = []
        self._by_name: Dict[str, _Supervised] = {}
        engine_devices: List[DeviceSpec] = []
        engine_sessions: List[PolicySession] = []
        #: Original order: ("engine", engine_index) | ("supervised", index).
        self._slots: List[Tuple[str, int]] = []
        for index, device in enumerate(self.devices):
            if device.name in faulted:
                # A pre-built session (restore path) is adopted as-is —
                # its policy/log/rng state must not be reset; a fresh run
                # lowers the DeviceSpec the usual way.
                session = (sessions[index] if sessions is not None
                           else device_session(device, simulator, base_space))
                supervised = _Supervised(
                    device, session, self.plan.for_device(device.name)
                )
                self._slots.append(("supervised", len(self._supervised)))
                self._supervised.append(supervised)
                self._by_name[device.name] = supervised
            else:
                self._slots.append(("engine", len(engine_devices)))
                engine_devices.append(device)
                if sessions is not None:
                    engine_sessions.append(sessions[index])
        if not engine_devices:
            self.engine: Optional[FleetEngine] = None
        elif sessions is not None:
            # Restored sessions: skip build_fleet's session construction
            # (and its hazard validation, which targets fresh fleets).
            self.engine = FleetEngine(engine_sessions,
                                      batch_decide=self._batch_decide,
                                      batch_execute=self._batch_execute)
        else:
            self.engine = build_fleet(engine_devices, simulator, base_space,
                                      batch_decide=batch_decide,
                                      batch_execute=batch_execute)
        # Baseline durable snapshot: every supervised device can restart
        # from step 0 even if it crashes before the first cadence point.
        for supervised in self._supervised:
            self._take_snapshot(supervised)

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def _take_snapshot(self, supervised: _Supervised) -> None:
        session = supervised.session
        if self.snapshot_dir is None:
            supervised.snapshot = session.snapshot_bytes()
        else:
            path = self.snapshot_dir / f"{supervised.device.name}.snapshot"
            session.save_snapshot(path)
            supervised.snapshot_path = path

    def _restore_snapshot(self, supervised: _Supervised) -> None:
        """Replace the live session with its last durable snapshot."""
        old = supervised.session
        if self.snapshot_dir is None:
            assert supervised.snapshot is not None
            session = PolicySession.restore(supervised.snapshot,
                                            self.simulator)
        else:
            assert supervised.snapshot_path is not None
            session = PolicySession.load_snapshot(supervised.snapshot_path,
                                                  self.simulator)
        if supervised.device.scenario is not None:
            # The schedule is a closure over the space object; rebuild it
            # over the *restored* space so throttle-window identity
            # comparisons keep working (see PolicySession.restore).
            from repro.scenarios.runtime import make_space_schedule

            session.space_schedule = make_space_schedule(
                session.space, supervised.device.scenario
            )
        supervised.replayed_steps += old.step_index - session.step_index
        supervised.wasted_energy_j += (old.account.total_energy_j
                                       - session.account.total_energy_j)
        supervised.session = session
        supervised.stall_remaining = 0
        supervised.no_progress_rounds = 0
        supervised.last_cursor = session.step_index

    # ------------------------------------------------------------------ #
    # Health transitions
    # ------------------------------------------------------------------ #
    def _quarantine(self, supervised: _Supervised) -> None:
        """Isolate a dead/hung device, then attempt a snapshot-restart.

        Quarantine touches nothing but this device's own record — the
        engine's groups, tensors and the other devices' RNG streams are
        untouched by construction (the device was never part of them).
        """
        supervised.transition(DeviceHealth.QUARANTINED)
        if supervised.restarts_used >= self.max_restarts:
            return  # stays quarantined; the fleet completes without it
        self._restore_snapshot(supervised)
        supervised.restarts_used += 1
        supervised.transition(DeviceHealth.RECOVERED)

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def _advance_supervised(self, supervised: _Supervised) -> int:
        """One lockstep round of one supervised device (with injection).

        Returns the number of steps completed (0 when stalled, crashed,
        restarting, or quarantined).  Raises :class:`DeviceCrashError`
        for an injected crash; the caller quarantines.
        """
        session = supervised.session
        if supervised.stall_remaining > 0:
            supervised.stall_remaining -= 1
            return 0  # hung: no progress, the log flatlines
        cursor = session.step_index
        observation_faults: List[ObservationFault] = []
        for index, fault in enumerate(supervised.faults):
            if index in supervised.fired or fault.step != cursor:
                continue
            if fault.kind == "crash":
                supervised.fired.add(index)
                supervised.crashes += 1
                raise DeviceCrashError(
                    f"device {supervised.device.name!r} crashed at step "
                    f"{cursor}"
                )
            if fault.kind == "stall":
                supervised.fired.add(index)
                supervised.stalls += 1
                supervised.stall_remaining = fault.rounds  # type: ignore[attr-defined]
                return 0
            if fault.kind == "restart":
                supervised.fired.add(index)
                self._restore_snapshot(supervised)
                supervised.restarts_used += 1
                supervised.transition(DeviceHealth.RECOVERED)
                return 0
            assert isinstance(fault, ObservationFault)
            supervised.fired.add(index)
            observation_faults.append(fault)
        step = session.decide()
        result = session.execute(step)
        for fault in observation_faults:
            result = fault.corrupt(result)
            supervised.corrupted_observations += 1
        session.observe(step, result)
        if (not session.done
                and session.step_index % self.snapshot_every == 0):
            self._take_snapshot(supervised)
        return 1

    def _watchdog_scan(self) -> None:
        """Flatline detection over the supervised devices.

        A supervised device whose log made no progress for
        ``watchdog_rounds`` rounds is flagged ``DEGRADED``; at twice that
        it is quarantined (and restarted, budget permitting).  Inner
        engine sessions are advanced synchronously every round and cannot
        flatline while unfinished, so the watchdog only scans supervised
        sessions.
        """
        for supervised in self._supervised:
            session = supervised.session
            if session.done or self._terminal(supervised):
                continue
            cursor = session.step_index
            if cursor > supervised.last_cursor:
                supervised.last_cursor = cursor
                supervised.no_progress_rounds = 0
                if supervised.health is DeviceHealth.DEGRADED:
                    # The hang cleared on its own before quarantine.
                    supervised.transition(DeviceHealth.HEALTHY)
                continue
            supervised.no_progress_rounds += 1
            if supervised.no_progress_rounds >= 2 * self.watchdog_rounds:
                self._quarantine(supervised)
            elif (supervised.no_progress_rounds >= self.watchdog_rounds
                    and supervised.health in (DeviceHealth.HEALTHY,
                                              DeviceHealth.RECOVERED)):
                supervised.watchdog_flags += 1
                supervised.transition(DeviceHealth.DEGRADED)

    def _terminal(self, supervised: _Supervised) -> bool:
        """Whether this device will never advance again."""
        return (supervised.session.done
                or supervised.health is DeviceHealth.QUARANTINED)

    @property
    def done(self) -> bool:
        engine_done = self.engine is None or self.engine.done
        return engine_done and all(
            self._terminal(supervised) for supervised in self._supervised
        )

    def step_round(self) -> int:
        """Advance the whole fleet by one lockstep round."""
        advanced = 0
        if self.engine is not None and not self.engine.done:
            advanced += self.engine.step()
        for supervised in self._supervised:
            if self._terminal(supervised):
                continue
            try:
                advanced += self._advance_supervised(supervised)
            except DeviceCrashError:
                self._quarantine(supervised)
        self._watchdog_scan()
        self.rounds += 1
        return advanced

    def run(self) -> List["PolicyRunResult"]:
        """Drive the fleet to completion; per-device results in input order.

        Quarantined devices that exhausted their restart budget contribute
        their partial (pre-crash snapshot-replayed) results.
        """
        while not self.done:
            self.step_round()
        return [self._session_at(slot).result() for slot in self._slots]

    def _session_at(self, slot: Tuple[str, int]) -> PolicySession:
        kind, index = slot
        if kind == "engine":
            assert self.engine is not None
            return self.engine.sessions[index]
        return self._supervised[index].session

    # ------------------------------------------------------------------ #
    # Control-plane surface (the service layer drives these)
    # ------------------------------------------------------------------ #
    @property
    def sessions(self) -> List[PolicySession]:
        """Live sessions in device input order."""
        return [self._session_at(slot) for slot in self._slots]

    def session_named(self, name: str) -> PolicySession:
        """The live session of one device."""
        for device, slot in zip(self.devices, self._slots):
            if device.name == name:
                return self._session_at(slot)
        raise KeyError(f"unknown device {name!r}")

    def sequential_rng_state(self, session: PolicySession):
        """Sequential-equivalent noise generator of one fleet session.

        Engine-resident sessions delegate to :meth:`~repro.fleet.engine
        .FleetEngine.sequential_rng_state` (their streams were pre-drawn
        at adoption); supervised sessions step scalar, so their live
        generator already is sequential.
        """
        if self.engine is not None:
            return self.engine.sequential_rng_state(session)
        return session.rng

    def health_map(self) -> Dict[str, DeviceHealth]:
        """Current health of every device, keyed by name."""
        return {device.name: self.health_of(device.name)
                for device in self.devices}

    def replace_policy(self, name: str, policy) -> None:
        """Swap one device's policy at a round boundary (dispatch path).

        ``policy`` must be built over the target session's own space
        (``policy.space is session.space``), or the engine's batched
        decide would reason over the wrong configuration set.  For an
        engine-resident device the engine is rebuilt around the same
        session objects: every session's generator is first restored to
        its sequential-equivalent state (:meth:`~repro.fleet.engine
        .FleetEngine.release_sessions`), so the new engine's pre-draw
        reproduces exactly the draws the old engine had in store and all
        other devices continue bitwise unchanged.
        """
        session = self.session_named(name)
        if session.pending is not None:
            raise RuntimeError(
                f"device {name!r} has an unobserved pending step; policies "
                "can only be swapped at a round boundary"
            )
        if policy.space is not session.space:
            raise ValueError(
                f"replacement policy for {name!r} must be built over the "
                "session's own configuration space"
            )
        kind = next(slot[0] for device, slot
                    in zip(self.devices, self._slots) if device.name == name)
        if kind == "engine":
            assert self.engine is not None
            old = self.engine
            old.release_sessions()
            session.policy = policy
            self.engine = FleetEngine(old.sessions,
                                      batch_decide=self._batch_decide,
                                      batch_execute=self._batch_execute)
            # Keep cumulative batching counters meaningful across rebuilds.
            self.engine.steps_executed = old.steps_executed
            self.engine.batched_decisions = old.batched_decisions
            self.engine.batched_executions = old.batched_executions
            self.engine.batched_observes = old.batched_observes
        else:
            session.policy = policy

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def reports(self) -> List[DeviceStatus]:
        """Per-device supervision outcomes, in input order."""
        out: List[DeviceStatus] = []
        for device, slot in zip(self.devices, self._slots):
            session = self._session_at(slot)
            if slot[0] == "engine":
                out.append(DeviceStatus(
                    name=device.name,
                    health=DeviceHealth.HEALTHY.value,
                    supervised=False,
                    steps_completed=session.step_index,
                    trace_steps=len(session),
                    completed=session.done,
                ))
                continue
            supervised = self._supervised[slot[1]]
            out.append(DeviceStatus(
                name=device.name,
                health=supervised.health.value,
                supervised=True,
                steps_completed=session.step_index,
                trace_steps=len(session),
                completed=session.done,
                crashes=supervised.crashes,
                stalls=supervised.stalls,
                restarts=supervised.restarts_used,
                replayed_steps=supervised.replayed_steps,
                wasted_energy_j=supervised.wasted_energy_j,
                corrupted_observations=supervised.corrupted_observations,
                watchdog_flags=supervised.watchdog_flags,
            ))
        return out

    def health_of(self, name: str) -> DeviceHealth:
        """Current health of one device (engine devices are HEALTHY)."""
        supervised = self._by_name.get(name)
        if supervised is not None:
            return supervised.health
        if not any(device.name == name for device in self.devices):
            raise KeyError(f"unknown device {name!r}")
        return DeviceHealth.HEALTHY

    def health_history(self, name: str) -> List[DeviceHealth]:
        """Transition history of one supervised device."""
        supervised = self._by_name.get(name)
        if supervised is None:
            raise KeyError(f"device {name!r} is not supervised")
        return list(supervised.history)

    @property
    def survival_fraction(self) -> float:
        """Fraction of devices that completed their full trace."""
        done = sum(1 for slot in self._slots
                   if self._session_at(slot).done)
        return done / len(self.devices)
