"""Device descriptions for fleet simulations.

A :class:`DeviceSpec` captures everything that distinguishes one device of
a fleet: its name, its policy instance (with whatever learned state it
carries), its snippet trace *or* scenario trace, its own seed (or
generator) for measurement noise, an optional per-device restricted
configuration space, and an optional Oracle table for accuracy/energy
normalisation.  :func:`device_session` lowers a spec onto a
:class:`~repro.core.session.PolicySession`; :func:`build_fleet` lowers a
whole device list onto a ready :class:`~repro.fleet.engine.FleetEngine`.

Scenario-driven devices get their snippets and throttle schedule from the
scenario trace via :func:`~repro.scenarios.runtime.make_space_schedule`,
exactly like :func:`~repro.scenarios.runtime.run_policy_on_scenario` does
for single runs — so a throttled fleet device behaves bitwise like the
equivalent sequential scenario run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.control.policy import DRMPolicy
from repro.core.oracle import OracleTable
from repro.core.session import PolicySession
from repro.fleet.engine import FleetEngine
from repro.scenarios.base import ScenarioTrace
from repro.soc.configuration import ConfigurationSpace, SoCConfiguration
from repro.soc.simulator import SoCSimulator
from repro.soc.snippet import Snippet
from repro.utils.rng import SeedLike, make_rng


@dataclass
class DeviceSpec:
    """One device of a simulated fleet.

    Exactly one of ``snippets`` / ``scenario`` provides the trace.  ``seed``
    derives the device's private measurement-noise generator (``rng``
    overrides it with an explicit generator); fleets whose devices share a
    generator lose the lockstep==sequential equivalence, so give every
    device its own.  ``space`` optionally restricts this device to a
    subset of the fleet's base configuration space (e.g. a permanently
    capped low-cost SKU).
    """

    name: str
    policy: DRMPolicy
    snippets: Sequence[Snippet] = field(default_factory=tuple)
    scenario: Optional[ScenarioTrace] = None
    seed: Optional[SeedLike] = None
    rng: Optional[np.random.Generator] = None
    space: Optional[ConfigurationSpace] = None
    oracle_table: Optional[OracleTable] = None
    initial_configuration: Optional[SoCConfiguration] = None
    reset_policy: bool = True

    def __post_init__(self) -> None:
        if self.scenario is not None and len(self.snippets) > 0:
            raise ValueError(
                f"device {self.name!r}: give either snippets or a scenario, "
                "not both"
            )
        if self.scenario is None and len(self.snippets) == 0:
            raise ValueError(f"device {self.name!r} has no trace to run")


def device_session(
    device: DeviceSpec,
    simulator: SoCSimulator,
    base_space: ConfigurationSpace,
) -> PolicySession:
    """Lower one :class:`DeviceSpec` onto a :class:`PolicySession`."""
    from repro.scenarios.runtime import make_space_schedule

    space = device.space if device.space is not None else base_space
    if device.scenario is not None:
        snippets: Sequence[Snippet] = device.scenario.snippets
        schedule = make_space_schedule(space, device.scenario)
    else:
        snippets = device.snippets
        schedule = None
    rng = device.rng
    if rng is None and device.seed is not None:
        rng = make_rng(device.seed)
    return PolicySession(
        simulator,
        space,
        device.policy,
        snippets,
        oracle_table=device.oracle_table,
        rng=rng,
        reset_policy=device.reset_policy,
        initial_configuration=device.initial_configuration,
        space_schedule=schedule,
        name=device.name,
    )


def build_fleet(
    devices: Sequence[DeviceSpec],
    simulator: SoCSimulator,
    base_space: ConfigurationSpace,
    batch_decide: bool = True,
    batch_execute: bool = True,
) -> FleetEngine:
    """Lower a device list onto a ready-to-run :class:`FleetEngine`."""
    sessions: List[PolicySession] = [
        device_session(device, simulator, base_space) for device in devices
    ]
    return FleetEngine(sessions, batch_decide=batch_decide,
                       batch_execute=batch_execute)
