"""Device descriptions for fleet simulations.

A :class:`DeviceSpec` captures everything that distinguishes one device of
a fleet: its name, its policy instance (with whatever learned state it
carries), its snippet trace *or* scenario trace, its own seed (or
generator) for measurement noise, an optional per-device restricted
configuration space, and an optional Oracle table for accuracy/energy
normalisation.  :func:`device_session` lowers a spec onto a
:class:`~repro.core.session.PolicySession`; :func:`build_fleet` lowers a
whole device list onto a ready :class:`~repro.fleet.engine.FleetEngine`.

Scenario-driven devices get their snippets and throttle schedule from the
scenario trace via :func:`~repro.scenarios.runtime.make_space_schedule`,
exactly like :func:`~repro.scenarios.runtime.run_policy_on_scenario` does
for single runs — so a throttled fleet device behaves bitwise like the
equivalent sequential scenario run.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.control.policy import DRMPolicy
from repro.core.oracle import OracleTable
from repro.core.session import PolicySession
from repro.fleet.engine import FleetEngine
from repro.scenarios.base import ScenarioTrace
from repro.soc.configuration import ConfigurationSpace, SoCConfiguration
from repro.soc.simulator import SoCSimulator
from repro.soc.snippet import Snippet
from repro.utils.rng import SeedLike, make_rng


class FleetBuildWarning(UserWarning):
    """A fleet is configured in a way that silently degrades it.

    Emitted by :func:`build_fleet` when devices share a measurement-noise
    generator (the lockstep == sequential bitwise-equivalence contract is
    lost) or when sessions will silently fall back to scalar execution
    (the batched kernel's performance is lost with no other signal).
    """


@dataclass
class DeviceSpec:
    """One device of a simulated fleet.

    Exactly one of ``snippets`` / ``scenario`` provides the trace.  ``seed``
    derives the device's private measurement-noise generator (``rng``
    overrides it with an explicit generator); fleets whose devices share a
    generator lose the lockstep==sequential equivalence, so give every
    device its own.  ``space`` optionally restricts this device to a
    subset of the fleet's base configuration space (e.g. a permanently
    capped low-cost SKU).
    """

    name: str
    policy: DRMPolicy
    snippets: Sequence[Snippet] = field(default_factory=tuple)
    scenario: Optional[ScenarioTrace] = None
    seed: Optional[SeedLike] = None
    rng: Optional[np.random.Generator] = None
    space: Optional[ConfigurationSpace] = None
    oracle_table: Optional[OracleTable] = None
    initial_configuration: Optional[SoCConfiguration] = None
    reset_policy: bool = True

    def __post_init__(self) -> None:
        if self.scenario is not None and len(self.snippets) > 0:
            raise ValueError(
                f"device {self.name!r}: give either snippets or a scenario, "
                "not both"
            )
        if self.scenario is None and len(self.snippets) == 0:
            raise ValueError(f"device {self.name!r} has no trace to run")


def device_session(
    device: DeviceSpec,
    simulator: SoCSimulator,
    base_space: ConfigurationSpace,
) -> PolicySession:
    """Lower one :class:`DeviceSpec` onto a :class:`PolicySession`."""
    from repro.scenarios.runtime import make_space_schedule

    space = device.space if device.space is not None else base_space
    if device.scenario is not None:
        snippets: Sequence[Snippet] = device.scenario.snippets
        schedule = make_space_schedule(space, device.scenario)
    else:
        snippets = device.snippets
        schedule = None
    rng = device.rng
    if rng is None and device.seed is not None:
        rng = make_rng(device.seed)
    return PolicySession(
        simulator,
        space,
        device.policy,
        snippets,
        oracle_table=device.oracle_table,
        rng=rng,
        reset_policy=device.reset_policy,
        initial_configuration=device.initial_configuration,
        space_schedule=schedule,
        name=device.name,
    )


def _warn_fleet_hazards(
    devices: Sequence[DeviceSpec],
    sessions: Sequence[PolicySession],
    engine: FleetEngine,
    simulator: SoCSimulator,
) -> None:
    """Surface silent equivalence/performance degradations eagerly.

    Two hazards used to pass without any signal:

    * Sessions sharing one noise generator (an explicit shared ``rng``, or
      no generator at all — both then draw from the simulator's stream).
      Interleaved lockstep draws no longer match sequential runs, so the
      fleet loses its bitwise-equivalence contract, and those sessions
      also lose the batched execution kernel.
    * Sessions classified onto the scalar-execute fallback by
      ``FleetEngine._execute_batchable`` (exotic simulator, aliased policy
      generator, ...) — correctness is preserved but throughput silently
      drops to per-device stepping.
    """
    # Object-keyed maps (identity hash, strong refs) — id() keys are
    # process-local and reusable after GC, so they are banned from every
    # fleet map (the lint test greps for them).
    name_of = {session: device.name
               for device, session in zip(devices, sessions)}
    shared: Dict[np.random.Generator, List[str]] = {}
    unseeded: List[str] = []
    for device, session in zip(devices, sessions):
        if session.rng is None:
            unseeded.append(device.name)
        else:
            shared.setdefault(session.rng, []).append(device.name)
    for names in shared.values():
        if len(names) > 1:
            warnings.warn(
                f"fleet devices {names} share one measurement-noise "
                "generator: lockstep results will not be bitwise identical "
                "to sequential runs, and their executions fall back to "
                "scalar — give each device its own seed/rng",
                FleetBuildWarning, stacklevel=3,
            )
    aliased = [device.name for device, session in zip(devices, sessions)
               if session.rng is not None and session.rng is simulator.rng]
    if aliased:
        warnings.warn(
            f"fleet devices {aliased} use the simulator's own noise "
            "generator: sequential equivalence is lost — give each "
            "device a private seed/rng",
            FleetBuildWarning, stacklevel=3,
        )
    if unseeded:
        warnings.warn(
            f"fleet devices {unseeded} have no private noise generator "
            "(no seed/rng): they draw measurement noise from the "
            "simulator's shared stream and execute scalar — give each "
            "device its own seed",
            FleetBuildWarning, stacklevel=3,
        )
    if engine.batch_execute:
        fallback = [name_of[session]
                    for session in engine.execute_fallback_sessions()]
        if fallback:
            warnings.warn(
                f"fleet devices {fallback} fall back to scalar (unbatched) "
                "execution — see FleetEngine._execute_batchable for the "
                "eligibility rules",
                FleetBuildWarning, stacklevel=3,
            )


def build_fleet(
    devices: Sequence[DeviceSpec],
    simulator: SoCSimulator,
    base_space: ConfigurationSpace,
    batch_decide: bool = True,
    batch_execute: bool = True,
    validate: bool = True,
) -> FleetEngine:
    """Lower a device list onto a ready-to-run :class:`FleetEngine`.

    ``validate`` (default on) eagerly checks RNG independence across the
    devices and emits a :class:`FleetBuildWarning` naming the devices
    whenever the lockstep equivalence contract is compromised or sessions
    will silently execute scalar.
    """
    sessions: List[PolicySession] = [
        device_session(device, simulator, base_space) for device in devices
    ]
    engine = FleetEngine(sessions, batch_decide=batch_decide,
                         batch_execute=batch_execute)
    if validate:
        _warn_fleet_hazards(devices, sessions, engine, simulator)
    return engine
