"""Process-sharded fleet engine: lockstep fleets across a worker pool.

:class:`ShardedFleetEngine` partitions a fleet's :class:`~repro.fleet
.device.DeviceSpec` list into contiguous shards and drives each shard's
:class:`~repro.fleet.engine.FleetEngine` inside a persistent worker
process.  The design goals, in order:

* **Bitwise equivalence** — every per-device log/summary value is
  identical to the single-process :class:`~repro.fleet.engine
  .FleetEngine`, and therefore invariant to the shard count.  This falls
  out of the per-device equivalence contract: the engine already proves
  a lockstep fleet equals ``N`` sequential runs, sessions share no
  mutable state across shard boundaries (the fleet grouping layer keys
  on *content*, never on process-local ``id()`` values), and each
  device's noise stream is a pure function of its own generator state.
* **No per-step pickling traffic** — the padded per-shard char/noise
  step tensors are built once in the parent (noise drawn from a *clone*
  of each device's generator state, exactly the draws the worker-side
  pre-draw would produce) and shipped through
  ``multiprocessing.shared_memory``; the pipe carries only the one-time
  device bundle and the final aggregates.
* **O(devices) fleet memory** — ``collect="summaries"`` replaces each
  worker session's :class:`~repro.utils.records.RunLog` with a
  streaming accumulator (:class:`_StreamingRunLog`) holding a constant
  number of scalars per device, and discards the per-step
  ``SnippetResult`` objects, so shard memory never grows with the trace
  length.  ``collect="logs"`` returns full column-oriented log dicts for
  the equivalence suites.

Worker pool protocol (two-phase, so benchmarks can time pure stepping):
the parent sends ``("run", payload)`` to one idle worker per shard, each
worker builds its engine (adopting the shared-memory step tensors) and
answers ``("ready",)``; the parent then broadcasts ``("go",)`` and
gathers ``("done", results)``.  Workers are daemon processes reused
across engines and shut down atexit (or via :func:`shutdown_workers`).
"""

from __future__ import annotations

import atexit
import gc
import traceback
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import multiprocessing
import numpy as np

from repro.fleet.device import DeviceSpec, FleetBuildWarning, build_fleet
from repro.fleet.kernels import TRACE_COLUMNS, TraceArrays
from repro.soc.configuration import ConfigurationSpace
from repro.soc.simulator import SoCSimulator
from repro.utils.rng import make_rng

try:  # pragma: no cover - platform capability probe
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]

#: Accuracy smoothing window mirrored from ``PolicyRunResult.final_accuracy``.
_ACCURACY_WINDOW = 10

# Fork keeps worker start cheap and inherits the imported modules; fall
# back to the platform default where fork is unavailable (the payload is
# fully picklable either way).
if "fork" in multiprocessing.get_all_start_methods():
    _MP = multiprocessing.get_context("fork")
else:  # pragma: no cover - non-fork platforms
    _MP = multiprocessing.get_context()


# --------------------------------------------------------------------- #
# Streaming per-session accumulators (collect="summaries")
# --------------------------------------------------------------------- #
class _DiscardList(list):
    """List stand-in that drops appends (bounds live objects per step)."""

    __slots__ = ()

    def append(self, item: Any) -> None:
        pass

    def extend(self, items: Any) -> None:
        pass


class _StreamingRunLog:
    """O(1)-memory ``RunLog`` stand-in for summary-mode shard workers.

    Implements exactly the surface :meth:`~repro.core.session
    .PolicySession.observe` touches (``append_record``/``len``) while
    accumulating the three log-derived summary statistics:

    * ``len(log)`` — a running count.
    * ``throttled_steps`` — a running sum of the 0/1 ``throttled``
      column; 0/1 sums are exact integers in float64, so the total is
      bitwise equal to ``np.nansum`` over the materialised column.
    * ``final_accuracy`` — the last element of ``trailing_nanmean(
      oracle_match, window) * 100``.  The trailing window only ever needs
      the last ``window`` values; for a 0/1 indicator series the window
      sum and count are exact integers, so summing the retained tail
      reproduces the cumsum-difference arithmetic bitwise.
    """

    __slots__ = ("count", "throttled_sum", "window", "tail", "any_match")

    def __init__(self, window: int = _ACCURACY_WINDOW) -> None:
        self.count = 0
        self.throttled_sum = 0.0
        self.window = window
        self.tail: List[float] = []
        self.any_match = False

    def append_record(self, record: Any) -> Any:
        self.count += 1
        values = record.values
        throttled = values.get("throttled")
        if throttled is not None and throttled == throttled:
            self.throttled_sum += throttled
        match = values.get("oracle_match", float("nan"))
        if match == match:
            self.any_match = True
        tail = self.tail
        tail.append(match)
        if len(tail) > self.window:
            del tail[0]
        return record

    def __len__(self) -> int:
        return self.count

    def final_accuracy(self) -> float:
        """Mirror of ``trailing_nanmean(matches, window)[-1] * 100``."""
        total = 0.0
        count = 0
        for value in self.tail:
            if value == value:
                total += value
                count += 1
        if count == 0:
            return float("nan")
        return (total / count) * 100.0


# --------------------------------------------------------------------- #
# Per-device summaries streamed back from the shards
# --------------------------------------------------------------------- #
@dataclass
class ShardDeviceSummary:
    """One device's aggregate outcome, streamed back from its shard.

    Every field is bitwise identical to what the single-process engine's
    :class:`~repro.core.framework.PolicyRunResult` would yield: the
    totals come from the same :class:`~repro.soc.energy.EnergyAccount`
    accumulation, ``final_accuracy`` from the streaming twin of the
    trailing-window smoothing, and :attr:`normalized_energy` applies the
    same guard/arithmetic.  ``log`` carries the full column-oriented log
    dict under ``collect="logs"`` (``None`` in summary mode).
    """

    name: str
    policy_name: str
    steps: int
    throttled_steps: int
    total_energy_j: float
    total_time_s: float
    oracle_energy_j: Optional[float]
    final_accuracy: float
    log: Optional[Dict[str, List[float]]] = None

    @property
    def normalized_energy(self) -> float:
        if self.oracle_energy_j is None or self.oracle_energy_j <= 0:
            raise ValueError("Oracle energy not available for normalisation")
        return self.total_energy_j / self.oracle_energy_j


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #
def _attach_shared_memory(name: str):
    """Attach a shared-memory block without resource-tracker ownership.

    The parent owns the block's lifetime (it calls ``unlink``); the
    worker only attaches, copies and closes.  Before Python 3.13 (no
    ``track=False``) attaching still registers the block with a resource
    tracker, which needs undoing — but only when the worker has its *own*
    tracker: forked workers share the parent's tracker process, where the
    attach-register is a no-op (same set entry) and an unregister here
    would strip the parent's registration before its ``unlink``.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        shm = shared_memory.SharedMemory(name=name)
        if _MP.get_start_method() != "fork":  # pragma: no cover - spawn
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return shm


def _prepare_shard(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Build one shard's engine inside the worker (the ``ready`` phase)."""
    base_space, simulator, devices = payload["bundle"]
    collect = payload["collect"]
    engine = build_fleet(
        devices, simulator, base_space,
        batch_decide=payload["batch_decide"],
        batch_execute=payload["batch_execute"],
        validate=False,
    )
    sessions = engine.sessions
    if payload["shm"] is not None:
        name, m, t_max, has_noise = payload["shm"]
        shm = _attach_shared_memory(name)
        try:
            chars_view = np.ndarray(
                (m, t_max, len(TRACE_COLUMNS)), dtype=np.float64,
                buffer=shm.buf,
            )
            chars = chars_view.copy()
            noise = None
            if has_noise:
                noise_view = np.ndarray(
                    (m, t_max, 2), dtype=np.float64, buffer=shm.buf,
                    offset=chars_view.nbytes,
                )
                noise = noise_view.copy()
        finally:
            shm.close()
        # The preset only activates when one exec group adopts exactly
        # every session in order (the common all-batchable shard); any
        # other grouping misses the key and the engine rebuilds its own
        # tensors from the live sessions — bitwise identical, just
        # without the shared-memory shortcut.
        engine._exec_presets[tuple(range(len(sessions)))] = (chars, noise)
    streams: List[Optional[_StreamingRunLog]] = [None] * len(sessions)
    if collect == "summaries":
        for row, session in enumerate(sessions):
            stream = _StreamingRunLog()
            session.log = stream
            session.results = _DiscardList()
            # total_energy_j / total_time_s / per-application sums stay
            # eagerly accumulated; only the per-component decomposition
            # (unused by summaries) loses its retained results.
            session.account._results = _DiscardList()
            streams[row] = stream
    engine.prepare()
    return {"engine": engine, "collect": collect, "streams": streams}


def _run_shard(pending: Dict[str, Any]) -> Dict[str, Any]:
    """Drive one prepared shard to completion (the ``go`` phase)."""
    engine = pending["engine"]
    collect = pending["collect"]
    summaries: List[Dict[str, Any]] = []
    if collect == "summaries":
        # Live objects per step are bounded (results discarded, log
        # streamed), so reference counting alone reclaims everything and
        # the cycle collector's periodic scans are pure overhead.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            while not engine.done:
                engine.step()
        finally:
            if gc_was_enabled:
                gc.enable()
        for session, stream in zip(engine.sessions, pending["streams"]):
            summaries.append({
                "name": session.name,
                "policy_name": session.policy.name,
                "steps": len(stream),
                "throttled_steps": int(stream.throttled_sum),
                "total_energy_j": session.account.total_energy_j,
                "total_time_s": session.account.total_time_s,
                "oracle_energy_j": (session.oracle_energy
                                    if session.oracle_table is not None
                                    else None),
                "final_accuracy": stream.final_accuracy(),
                "log": None,
            })
    else:
        runs = engine.run()
        for session, run in zip(engine.sessions, runs):
            matches = run.log.column("oracle_match")
            has_matches = bool(np.any(~np.isnan(matches)))
            throttled = run.log.column("throttled", default=0.0)
            summaries.append({
                "name": session.name,
                "policy_name": run.policy_name,
                "steps": len(run.log),
                "throttled_steps": int(np.nansum(throttled)),
                "total_energy_j": run.total_energy_j,
                "total_time_s": run.total_time_s,
                "oracle_energy_j": run.oracle_energy_j,
                "final_accuracy": (run.final_accuracy()
                                   if has_matches else float("nan")),
                "log": run.log.to_dict(),
            })
    return {
        "devices": summaries,
        "steps_executed": engine.steps_executed,
        "batched_decisions": engine.batched_decisions,
        "batched_executions": engine.batched_executions,
        "batched_observes": engine.batched_observes,
    }


def _worker_main(conn) -> None:
    """Persistent worker loop: run shards until told to exit."""
    while True:
        try:
            message = conn.recv()
        except EOFError:  # parent went away
            return
        if message[0] == "exit":
            conn.close()
            return
        if message[0] != "run":  # pragma: no cover - protocol guard
            conn.send(("error", f"unexpected command {message[0]!r}"))
            continue
        try:
            pending = _prepare_shard(message[1])
        except Exception:
            conn.send(("error", traceback.format_exc()))
            continue
        conn.send(("ready",))
        go = conn.recv()
        if go[0] == "exit":
            conn.close()
            return
        try:
            conn.send(("done", _run_shard(pending)))
        except Exception:
            conn.send(("error", traceback.format_exc()))
        del pending


# --------------------------------------------------------------------- #
# Parent side: the persistent worker pool
# --------------------------------------------------------------------- #
class _Worker:
    __slots__ = ("process", "conn")

    def __init__(self) -> None:
        # Start the parent's resource tracker BEFORE forking: a worker
        # forked earlier would lazily spawn its own private tracker on
        # its first shared-memory attach, which then "owns" every name
        # the worker ever attaches and warns about phantom leaks when
        # the worker dies.  With the tracker pre-started, forked workers
        # inherit its fd: their attach-registers are set no-ops and the
        # parent's unlink unregisters cleanly.
        try:  # pragma: no branch
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        parent_conn, child_conn = _MP.Pipe()
        self.process = _MP.Process(
            target=_worker_main, args=(child_conn,),
            daemon=True, name="fleet-shard-worker",
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self) -> None:
        try:
            if self.alive:
                self.conn.send(("exit",))
                self.process.join(timeout=2.0)
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=2.0)
        self.conn.close()


_POOL: List[_Worker] = []

#: Every parent-created shared-memory block still mapped, process-wide.
#: Engines register blocks here so the atexit sweep can unlink anything a
#: failed/interrupted engine left behind — no stale ``/dev/shm`` segment
#: survives a normal interpreter exit, however abnormal the control flow.
_LIVE_SHARED: List[Any] = []


def _acquire_workers(n: int) -> List[_Worker]:
    """Return ``n`` live pool workers, replacing any that died."""
    for i, worker in enumerate(_POOL):
        if not worker.alive:  # pragma: no cover - crashed worker
            _POOL[i] = _Worker()
    while len(_POOL) < n:
        _POOL.append(_Worker())
    return _POOL[:n]


def _retire_workers(workers: Sequence["_Worker"]) -> None:
    """Stop ``workers`` and drop them from the pool.

    Used on every error path: a worker whose pipe may hold an undrained
    reply (or that is blocked waiting for a ``go`` that will never come)
    must not be handed to the next engine — its next ``recv`` would
    return a stale message from the aborted run.  Fresh workers are
    re-spawned on demand.
    """
    for worker in workers:
        worker.stop()
        try:
            _POOL.remove(worker)
        except ValueError:  # pragma: no cover - already gone
            pass


def _release_leaked_shared() -> None:
    """Unlink any shared-memory block an aborted engine left mapped."""
    while _LIVE_SHARED:
        block = _LIVE_SHARED.pop()
        try:
            block.close()
            block.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


def shutdown_workers() -> None:
    """Stop every pooled shard worker (idempotent; re-spawned on demand)."""
    while _POOL:
        _POOL.pop().stop()


def _atexit_teardown() -> None:  # pragma: no cover - exercised in subprocess
    shutdown_workers()
    _release_leaked_shared()


atexit.register(_atexit_teardown)


class ShardExecutionError(RuntimeError):
    """A shard worker failed; carries the worker-side traceback."""


def _device_trace(device: DeviceSpec) -> Sequence:
    return (device.scenario.snippets if device.scenario is not None
            else device.snippets)


def _build_shard_preset(
    devices: Sequence[DeviceSpec],
    simulator: SoCSimulator,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Padded (chars, noise) step tensors of one shard, parent-side.

    ``chars`` is exactly what the shard engine's ``_ExecGroup`` would
    build from its sessions; ``noise`` rows are drawn from a *clone* of
    each device's generator state — the same two normals per step, in
    the same order, exponentiated the same way — so the worker can adopt
    the tensors and advance the real generators past the identical
    draws.  Devices without a private generator keep all-ones noise
    rows; they can never be adopted for batched execution, so those rows
    are never gathered.
    """
    traces = [TraceArrays(_device_trace(device)) for device in devices]
    t_max = max(len(trace) for trace in traces)
    chars = np.zeros((len(devices), t_max, len(TRACE_COLUMNS)))
    for row, trace in enumerate(traces):
        chars[row, :len(trace)] = trace.matrix
    noise_scale = simulator.noise_scale
    if noise_scale == 0.0:
        return chars, None
    noise = np.ones((len(devices), t_max, 2))
    for row, (device, trace) in enumerate(zip(devices, traces)):
        rng = device.rng
        if rng is None:
            if device.seed is None:
                continue
            rng = make_rng(device.seed)
        bit_generator = type(rng.bit_generator)()
        bit_generator.state = rng.bit_generator.state
        clone = np.random.Generator(bit_generator)
        noise[row, :len(trace)] = np.exp(
            clone.normal(0.0, noise_scale, size=(len(trace), 2))
        )
    return chars, noise


def _warn_shard_hazards(devices: Sequence[DeviceSpec],
                        simulator: SoCSimulator) -> None:
    """Parent-side twin of the RNG-independence checks in build_fleet.

    Worker-process warnings never reach the caller, so the generator
    hazards are re-checked on the specs before dispatch.  (The
    scalar-execution-fallback warning needs live sessions and stays a
    worker-side concern.)
    """
    shared: Dict[Any, List[str]] = {}
    unseeded: List[str] = []
    aliased: List[str] = []
    for device in devices:
        if device.rng is None and device.seed is None:
            unseeded.append(device.name)
        elif device.rng is not None:
            shared.setdefault(device.rng, []).append(device.name)
            if device.rng is simulator.rng:
                aliased.append(device.name)
    for names in shared.values():
        if len(names) > 1:
            warnings.warn(
                f"fleet devices {names} share one measurement-noise "
                "generator: sharded results will not be bitwise identical "
                "to sequential runs — give each device its own seed/rng",
                FleetBuildWarning, stacklevel=3,
            )
    if aliased:
        warnings.warn(
            f"fleet devices {aliased} use the simulator's own noise "
            "generator: sequential equivalence is lost — give each "
            "device a private seed/rng",
            FleetBuildWarning, stacklevel=3,
        )
    if unseeded:
        warnings.warn(
            f"fleet devices {unseeded} have no private noise generator "
            "(no seed/rng): they draw measurement noise from the "
            "simulator's shared stream and execute scalar — give each "
            "device its own seed",
            FleetBuildWarning, stacklevel=3,
        )


class ShardedFleetEngine:
    """Drive a device fleet as contiguous shards on a worker pool.

    The device list is split into ``n_shards`` contiguous blocks
    (``numpy.array_split`` semantics: sizes differ by at most one) and
    each block runs a full :class:`~repro.fleet.engine.FleetEngine`
    inside a pooled worker process.  Results come back in device order
    and are bitwise identical to the single-process engine for any shard
    count — see the module docstring for why.

    Two-phase driving: :meth:`prepare` ships the shards and waits until
    every worker has built its engine (shared-memory step tensors
    adopted, noise streams positioned); :meth:`execute` then broadcasts
    the start signal and gathers the results, so a benchmark can time
    pure lockstep stepping.  :meth:`run` is simply both.

    ``collect="summaries"`` (default) streams back one
    :class:`ShardDeviceSummary` per device — O(devices) memory
    fleet-wide.  ``collect="logs"`` additionally materialises each
    device's full log columns (equivalence suites only; memory grows
    with trace length again).
    """

    def __init__(
        self,
        devices: Sequence[DeviceSpec],
        simulator: SoCSimulator,
        base_space: ConfigurationSpace,
        n_shards: int = 2,
        collect: str = "summaries",
        batch_decide: bool = True,
        batch_execute: bool = True,
        validate: bool = True,
    ) -> None:
        if shared_memory is None:  # pragma: no cover - exotic platform
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable on this "
                "platform; use the single-process FleetEngine"
            )
        if collect not in ("summaries", "logs"):
            raise ValueError(
                f"collect must be 'summaries' or 'logs', got {collect!r}"
            )
        self.devices = list(devices)
        if not self.devices:
            raise ValueError("ShardedFleetEngine needs at least one device")
        n_shards = int(n_shards)
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = min(n_shards, len(self.devices))
        self.simulator = simulator
        self.base_space = base_space
        self.collect = collect
        self.batch_decide = bool(batch_decide)
        self.batch_execute = bool(batch_execute)
        if validate:
            _warn_shard_hazards(self.devices, simulator)
        # Contiguous partition (device order preserved, numpy.array_split
        # sizing: the first n % k shards get one extra device), so
        # concatenating shard outputs restores fleet order.
        n, k = len(self.devices), self.n_shards
        self.shard_bounds: List[Tuple[int, int]] = []
        lo = 0
        for shard in range(k):
            hi = lo + n // k + (1 if shard < n % k else 0)
            self.shard_bounds.append((lo, hi))
            lo = hi
        self._workers: Optional[List[_Worker]] = None
        self._shared: List[Any] = []
        # Fleet-wide aggregates, populated by execute().
        self.steps_executed = 0
        self.batched_decisions = 0
        self.batched_executions = 0
        self.batched_observes = 0

    # ------------------------------------------------------------------ #
    def _ship_shard(self, worker: _Worker, lo: int, hi: int) -> None:
        shard_devices = self.devices[lo:hi]
        chars, noise = _build_shard_preset(shard_devices, self.simulator)
        size = chars.nbytes + (noise.nbytes if noise is not None else 0)
        block = shared_memory.SharedMemory(create=True, size=size)
        self._shared.append(block)
        _LIVE_SHARED.append(block)
        chars_view = np.ndarray(chars.shape, dtype=np.float64,
                                buffer=block.buf)
        chars_view[:] = chars
        if noise is not None:
            noise_view = np.ndarray(noise.shape, dtype=np.float64,
                                    buffer=block.buf, offset=chars.nbytes)
            noise_view[:] = noise
        worker.conn.send(("run", {
            # One bundle tuple so pickling preserves the shared object
            # graph (policy.space is base_space, shared oracle spaces...)
            # inside the worker exactly as it holds in this process.
            "bundle": (self.base_space, self.simulator, shard_devices),
            "batch_decide": self.batch_decide,
            "batch_execute": self.batch_execute,
            "collect": self.collect,
            "shm": (block.name, len(shard_devices), chars.shape[1],
                    noise is not None),
        }))

    def _release_shared(self) -> None:
        while self._shared:
            block = self._shared.pop()
            try:
                _LIVE_SHARED.remove(block)
            except ValueError:  # pragma: no cover - atexit sweep got it
                pass
            try:
                block.close()
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def prepare(self) -> None:
        """Dispatch every shard and wait until all engines stand ready."""
        if self._workers is not None:
            return
        workers = _acquire_workers(self.n_shards)
        try:
            for worker, (lo, hi) in zip(workers, self.shard_bounds):
                self._ship_shard(worker, lo, hi)
            for worker in workers:
                reply = worker.conn.recv()
                if reply[0] == "error":
                    raise ShardExecutionError(
                        f"shard preparation failed:\n{reply[1]}"
                    )
        except BaseException:
            # Any failure (a shard error, KeyboardInterrupt mid-recv, a
            # broken pipe) leaves unknown state in the workers' pipes —
            # undrained "ready" replies, half-shipped bundles.  Retire
            # them all so the pool never hands poisoned pipes to the
            # next engine.
            _retire_workers(workers)
            raise
        finally:
            # Workers copied their tensors before answering ready (and on
            # error nobody will): the parent mapping can go either way.
            self._release_shared()
        self._workers = workers

    def execute(self) -> List[ShardDeviceSummary]:
        """Start every prepared shard and gather per-device summaries."""
        if self._workers is None:
            raise RuntimeError("call prepare() before execute()")
        workers, self._workers = self._workers, None
        summaries: List[ShardDeviceSummary] = []
        try:
            for worker in workers:
                worker.conn.send(("go",))
            for worker in workers:
                reply = worker.conn.recv()
                if reply[0] == "error":
                    raise ShardExecutionError(
                        f"shard execution failed:\n{reply[1]}"
                    )
                shard = reply[1]
                self.steps_executed += shard["steps_executed"]
                self.batched_decisions += shard["batched_decisions"]
                self.batched_executions += shard["batched_executions"]
                self.batched_observes += shard["batched_observes"]
                summaries.extend(
                    ShardDeviceSummary(**device)
                    for device in shard["devices"]
                )
        except BaseException:
            # Mid-run workers and undrained "done" replies: same poisoned
            # -pipe hazard as in prepare().
            _retire_workers(workers)
            raise
        return summaries

    def run(self) -> List[ShardDeviceSummary]:
        """Prepare and execute every shard; results in device order."""
        self.prepare()
        return self.execute()

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release a prepared-but-never-executed engine's resources.

        Workers of a prepared engine sit blocked waiting for the ``go``
        broadcast; reusing them for a new engine would corrupt the pool
        protocol (the next ``run`` message would be read as their ``go``).
        ``close()`` retires them instead.  Idempotent; a no-op after
        :meth:`execute`.
        """
        if self._workers is not None:
            workers, self._workers = self._workers, None
            _retire_workers(workers)
        self._release_shared()

    def __enter__(self) -> "ShardedFleetEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
