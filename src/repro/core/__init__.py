"""Core online-adaptive-learning framework (the paper's primary contribution).

The core package implements the model-guided online imitation-learning DRM
methodology of Section IV-A together with the offline Oracle and offline IL
policies it builds on, and the :class:`OnlineLearningFramework` runner that
ties the analytical models, the policies and the SoC simulator together
(paper Figure 1).
"""

from repro.core.engine import SimulationEngine, available_engines, engine_class
from repro.core.objectives import Objective, ENERGY, EDP, PERFORMANCE, PPW
from repro.core.oracle import OracleCache, OraclePolicy, OracleTable, build_oracle
from repro.core.oracle_store import (
    OracleStore,
    get_default_oracle_store,
    set_default_oracle_store,
)
from repro.core.offline_il import OfflineILPolicy, ILDataset, collect_il_dataset
from repro.core.buffer import AggregationBuffer
from repro.core.runtime_oracle import CandidateBatch, RuntimeOracle
from repro.core.online_il import OnlineILPolicy
from repro.core.framework import (
    OnlineLearningFramework,
    PolicyRunResult,
    run_policy_on_snippets,
)

__all__ = [
    "SimulationEngine",
    "available_engines",
    "engine_class",
    "OracleCache",
    "OracleStore",
    "get_default_oracle_store",
    "set_default_oracle_store",
    "Objective",
    "ENERGY",
    "EDP",
    "PERFORMANCE",
    "PPW",
    "OraclePolicy",
    "OracleTable",
    "build_oracle",
    "OfflineILPolicy",
    "ILDataset",
    "collect_il_dataset",
    "AggregationBuffer",
    "RuntimeOracle",
    "CandidateBatch",
    "OnlineILPolicy",
    "OnlineLearningFramework",
    "PolicyRunResult",
    "run_policy_on_snippets",
]
