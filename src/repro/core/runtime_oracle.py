"""Runtime approximation of the Oracle (Sec. IV-A3).

"Before each control decision, these models and the state data are used to
estimate the energy consumption of candidate configurations in a local
neighborhood of the current configuration ... the configuration with the
minimum energy consumption is marked as the optimal configuration and added
to the runtime approximation of the Oracle."

The :class:`RuntimeOracle` asks the online power and performance models (not
the simulator!) for the predicted power and execution time of each candidate
configuration, reusing the counters observed at the current configuration as
the paper prescribes, and returns the candidate minimising the predicted
energy (or energy-delay product).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.models.performance import CpuPerformanceModel
from repro.models.power import CpuPowerModel
from repro.soc.configuration import ConfigurationSpace, SoCConfiguration
from repro.soc.counters import PerformanceCounters


@dataclass
class CandidateEstimate:
    """Predicted metrics of one candidate configuration."""

    configuration: SoCConfiguration
    predicted_power_w: float
    predicted_time_s: float

    @property
    def predicted_energy_j(self) -> float:
        return self.predicted_power_w * self.predicted_time_s

    @property
    def predicted_edp(self) -> float:
        return self.predicted_energy_j * self.predicted_time_s


class RuntimeOracle:
    """Model-driven selection of the best candidate configuration."""

    def __init__(
        self,
        space: ConfigurationSpace,
        power_model: CpuPowerModel,
        performance_model: CpuPerformanceModel,
        neighborhood_radius: int = 2,
        metric: str = "energy",
    ) -> None:
        if neighborhood_radius < 1:
            raise ValueError("neighborhood_radius must be >= 1")
        if metric not in ("energy", "edp"):
            raise ValueError("metric must be 'energy' or 'edp'")
        self.space = space
        self.power_model = power_model
        self.performance_model = performance_model
        self.neighborhood_radius = int(neighborhood_radius)
        self.metric = metric

    def candidate_estimates(
        self, counters: PerformanceCounters, current: SoCConfiguration
    ) -> List[CandidateEstimate]:
        """Predicted power/time/energy for every candidate configuration."""
        candidates = self.space.neighbors(
            current, radius=self.neighborhood_radius, include_self=True
        )
        estimates: List[CandidateEstimate] = []
        for candidate in candidates:
            power = self.power_model.predict(counters, candidate,
                                             reference_config=current)
            time_s = self.performance_model.predict_time_s(
                counters, candidate, reference_config=current
            )
            estimates.append(
                CandidateEstimate(
                    configuration=candidate,
                    predicted_power_w=power,
                    predicted_time_s=time_s,
                )
            )
        return estimates

    def best_configuration(
        self, counters: PerformanceCounters, current: SoCConfiguration
    ) -> Tuple[SoCConfiguration, CandidateEstimate]:
        """The candidate with the minimum predicted objective."""
        estimates = self.candidate_estimates(counters, current)
        if self.metric == "energy":
            key = lambda est: est.predicted_energy_j  # noqa: E731
        else:
            key = lambda est: est.predicted_edp  # noqa: E731
        best = min(estimates, key=key)
        return best.configuration, best

    def update_models(self, counters: PerformanceCounters,
                      config: SoCConfiguration) -> Dict[str, float]:
        """Feed one observation to both online models; returns their errors."""
        power_error = self.power_model.update(counters, config)
        time_error = self.performance_model.update(counters, config)
        return {"power_error_w": power_error, "time_error_s": time_error}

    @property
    def n_model_updates(self) -> int:
        return min(self.power_model.n_updates, self.performance_model.n_updates)
