"""Runtime approximation of the Oracle (Sec. IV-A3).

"Before each control decision, these models and the state data are used to
estimate the energy consumption of candidate configurations in a local
neighborhood of the current configuration ... the configuration with the
minimum energy consumption is marked as the optimal configuration and added
to the runtime approximation of the Oracle."

The :class:`RuntimeOracle` asks the online power and performance models (not
the simulator!) for the predicted power and execution time of each candidate
configuration, reusing the counters observed at the current configuration as
the paper prescribes, and returns the candidate minimising the predicted
energy (or energy-delay product).

The candidate sweep is vectorized end to end (``mode="batch"``, the
default): the neighbourhood comes from the configuration space's memoised
index tables, the candidate features form one ``(n_candidates, n_features)``
matrix, and both model predictions are single array operations.  The
original per-candidate loop is retained as the equivalence reference
(``mode="scalar"``), mirroring the scalar/vectorized dual-path pattern of
the engine sweep and the ML tree kernels: both modes pick the same argmin
with the same first-minimum tie-breaking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.models.performance import CpuPerformanceModel
from repro.models.power import CpuPowerModel
from repro.soc.configuration import ConfigurationSpace, SoCConfiguration
from repro.soc.counters import PerformanceCounters


@dataclass
class CandidateEstimate:
    """Predicted metrics of one candidate configuration."""

    configuration: SoCConfiguration
    predicted_power_w: float
    predicted_time_s: float

    @property
    def predicted_energy_j(self) -> float:
        return self.predicted_power_w * self.predicted_time_s

    @property
    def predicted_edp(self) -> float:
        return self.predicted_energy_j * self.predicted_time_s


@dataclass
class CandidateBatch:
    """Struct-of-arrays estimates for a whole candidate neighbourhood.

    Produced by :meth:`RuntimeOracle.candidate_batch`; arrays are aligned
    with ``candidate_indices`` (indices into the configuration space).
    """

    candidate_indices: np.ndarray
    predicted_power_w: np.ndarray
    predicted_time_s: np.ndarray

    def __len__(self) -> int:
        return len(self.candidate_indices)

    @property
    def predicted_energy_j(self) -> np.ndarray:
        return self.predicted_power_w * self.predicted_time_s

    @property
    def predicted_edp(self) -> np.ndarray:
        return self.predicted_energy_j * self.predicted_time_s

    def estimate_at(self, position: int,
                    space: ConfigurationSpace) -> CandidateEstimate:
        """Materialise the scalar :class:`CandidateEstimate` at one position."""
        i = int(position)
        return CandidateEstimate(
            configuration=space[int(self.candidate_indices[i])],
            predicted_power_w=float(self.predicted_power_w[i]),
            predicted_time_s=float(self.predicted_time_s[i]),
        )


class RuntimeOracle:
    """Model-driven selection of the best candidate configuration."""

    def __init__(
        self,
        space: ConfigurationSpace,
        power_model: CpuPowerModel,
        performance_model: CpuPerformanceModel,
        neighborhood_radius: int = 2,
        metric: str = "energy",
        mode: str = "batch",
    ) -> None:
        if neighborhood_radius < 1:
            raise ValueError("neighborhood_radius must be >= 1")
        if metric not in ("energy", "edp"):
            raise ValueError("metric must be 'energy' or 'edp'")
        if mode not in ("batch", "scalar"):
            raise ValueError("mode must be 'batch' or 'scalar'")
        self.space = space
        self.power_model = power_model
        self.performance_model = performance_model
        self.neighborhood_radius = int(neighborhood_radius)
        self.metric = metric
        self.mode = mode

    def candidate_estimates(
        self, counters: PerformanceCounters, current: SoCConfiguration
    ) -> List[CandidateEstimate]:
        """Predicted power/time/energy for every candidate configuration.

        This is the scalar reference path: one model query per candidate.
        """
        candidates = self.space.neighbors(
            current, radius=self.neighborhood_radius, include_self=True
        )
        estimates: List[CandidateEstimate] = []
        for candidate in candidates:
            power = self.power_model.predict(counters, candidate,
                                             reference_config=current)
            time_s = self.performance_model.predict_time_s(
                counters, candidate, reference_config=current
            )
            estimates.append(
                CandidateEstimate(
                    configuration=candidate,
                    predicted_power_w=power,
                    predicted_time_s=time_s,
                )
            )
        return estimates

    def candidate_batch(
        self, counters: PerformanceCounters, current: SoCConfiguration
    ) -> CandidateBatch:
        """Vectorized candidate sweep over the current neighbourhood.

        The neighbourhood is a memoised view of the space (index table plus
        pre-gathered struct-of-arrays rows), the power prediction is one
        matmul over the candidate feature matrix, and the time prediction
        is pure elementwise array arithmetic (bitwise equal to
        :meth:`~repro.models.performance.CpuPerformanceModel
        .predict_time_s` per candidate).
        """
        view = self.space.neighborhood_view(
            self.space.index_of(current), radius=self.neighborhood_radius,
            include_self=True,
        )
        power = self.power_model.predict_batch(
            counters, view.arrays, reference_config=current
        )
        time_s = self.performance_model.predict_time_s_batch(
            counters, view.arrays, reference_config=current
        )
        return CandidateBatch(
            candidate_indices=view.indices,
            predicted_power_w=power,
            predicted_time_s=time_s,
        )

    def best_configuration(
        self, counters: PerformanceCounters, current: SoCConfiguration
    ) -> Tuple[SoCConfiguration, CandidateEstimate]:
        """The candidate with the minimum predicted objective.

        Both modes break ties identically: the first candidate (in
        neighbourhood enumeration order) achieving the minimum wins —
        ``np.argmin`` returns the first minimum exactly like the scalar
        ``min`` over the estimate list.
        """
        if self.mode == "batch" and self.space.contains(current):
            batch = self.candidate_batch(counters, current)
            if self.metric == "energy":
                costs = batch.predicted_energy_j
            else:
                costs = batch.predicted_edp
            best_position = int(np.argmin(costs))
            best = batch.estimate_at(best_position, self.space)
            return best.configuration, best
        estimates = self.candidate_estimates(counters, current)
        if self.metric == "energy":
            key = lambda est: est.predicted_energy_j  # noqa: E731
        else:
            key = lambda est: est.predicted_edp  # noqa: E731
        best = min(estimates, key=key)
        return best.configuration, best

    @staticmethod
    def fleet_best_indices(
        oracles: Sequence["RuntimeOracle"],
        counters_list: Sequence[PerformanceCounters],
        current_indices: np.ndarray,
    ) -> np.ndarray:
        """Fleet-wide candidate sweep: one best index per device.

        Stacks every device's neighbourhood sweep into padded
        ``(devices, max_candidates)`` tensors — candidate rows come from
        the space's memoised :meth:`~repro.soc.configuration
        .ConfigurationSpace.neighborhood_table`, candidate columns from
        its struct-of-arrays view — and computes all power/time
        predictions with the scalar batch path's arithmetic: the power
        prediction is one stacked matmul against the per-device RLS
        weights (per-slice BLAS — bitwise equal to each device's gemv)
        and the time prediction is pure elementwise broadcasting in
        :meth:`~repro.models.performance.CpuPerformanceModel
        .predict_time_s_batch`'s operation order.  Padding is masked to
        ``+inf`` before the segmented argmin
        (:func:`~repro.fleet.kernels.masked_first_argmin`), preserving
        the scalar first-minimum tie-break.  Returns each device's best
        configuration index in its space, bitwise identical to per-device
        :meth:`best_configuration` calls.

        Preconditions (the fleet adoption check guarantees them): every
        oracle shares the same space object, radius and metric, uses
        ``mode="batch"`` semantics with plain
        :class:`~repro.ml.rls.RecursiveLeastSquares` models
        (``fit_intercept=True``), and every model platform carries the
        same OPP values as the space's platform.  ``current_indices[d]``
        must be device ``d``'s current configuration index (so
        ``space.contains(current)`` holds for every device).
        """
        # Imported here (not at module scope) because the fleet package
        # init pulls in scenario/session modules that import this one.
        from repro.fleet.kernels import ARGMIN_EMPTY, masked_first_argmin

        first = oracles[0]
        space = first.space
        table, lengths = space.neighborhood_table(
            radius=first.neighborhood_radius, include_self=True
        )
        current = np.asarray(current_indices, dtype=np.intp)
        candidates = table[current]
        valid = (np.arange(candidates.shape[1])[None, :]
                 < lengths[current][:, None])

        soa = space.soa_view()
        big = soa.cluster("big")
        little = soa.cluster("little")
        big_opp = big.opp_index[candidates]
        little_opp = little.opp_index[candidates]
        big_cores = big.cores_f[candidates]
        little_cores = little.cores_f[candidates]
        big_ref_cores = big.cores_f[current]
        little_ref_cores = little.cores_f[current]

        util_big = np.array(
            [c.big_cluster_utilization for c in counters_list])
        util_little = np.array(
            [c.little_cluster_utilization for c in counters_list])
        exec_time = np.array([c.execution_time_s for c in counters_list])
        l2_misses = np.array([c.l2_cache_misses for c in counters_list])
        external = np.array(
            [c.noncache_external_memory_requests for c in counters_list])

        # --- power features (PowerModelFeatures.build_batch, reference =
        # the device's current configuration) -------------------------- #
        features_map = first.power_model.features
        time_clamped = np.maximum(exec_time, 1e-9)
        external_rate_per_us = external / time_clamped / 1e6
        big_busy = np.minimum((util_big * big_ref_cores)[:, None], big_cores)
        little_busy = np.minimum(
            (util_little * little_ref_cores)[:, None], little_cores)
        n_devices, max_candidates = candidates.shape
        features = np.empty((n_devices, max_candidates,
                             len(features_map.FEATURE_NAMES)))
        features[:, :, 0] = features_map._v2f_over_1e9("big")[big_opp] * big_busy
        features[:, :, 1] = (
            features_map._v2f_over_1e9("little")[little_opp] * little_busy
        )
        features[:, :, 2] = big.voltage_v[candidates] * big_cores
        features[:, :, 3] = little.voltage_v[candidates] * little_cores
        features[:, :, 4] = external_rate_per_us[:, None]
        power_weights = np.stack(
            [oracle.power_model.rls.weights for oracle in oracles])
        power = np.maximum(
            0.0,
            np.matmul(features, power_weights[:, :-1, None])[:, :, 0]
            + power_weights[:, -1][:, None],
        )

        # --- time prediction (CpuPerformanceModel.predict_time_s_batch,
        # per-device scalars broadcast as (devices, 1) columns) --------- #
        perf_weights = np.stack(
            [oracle.performance_model.rls.weights for oracle in oracles])
        latency_ns = np.maximum(perf_weights[:, 0], 0.0)
        ref_big_freq = big.frequency_ghz[current]
        cand_big_freq = big.frequency_ghz[candidates]
        big_busy_core_seconds = util_big * big_ref_cores * exec_time
        big_cycles_ref = big_busy_core_seconds * ref_big_freq * 1e9
        delta_freq = cand_big_freq - ref_big_freq[:, None]
        latency_misses = latency_ns * l2_misses
        big_cycles_cand = np.maximum(
            big_cycles_ref[:, None] + latency_misses[:, None] * delta_freq,
            0.1 * big_cycles_ref[:, None],
        )
        big_busy_eff = np.maximum(util_big * big_ref_cores, 1e-3)
        effective = np.maximum(
            0.25, np.minimum(big_busy_eff[:, None], big_cores))
        big_time = big_cycles_cand / (cand_big_freq * 1e9 * effective)

        ref_little_freq = little.frequency_ghz[current]
        little_busy_core_seconds = util_little * little_ref_cores * exec_time
        little_cycles = little_busy_core_seconds * ref_little_freq * 1e9
        little_busy_cores = np.maximum(util_little * little_ref_cores, 1e-3)
        little_eff = np.minimum(little_busy_cores[:, None], little_cores)
        cand_little_freq = little.frequency_ghz[candidates]
        little_time = little_cycles[:, None] / (
            cand_little_freq * 1e9 * np.maximum(little_eff, 0.25)
        )

        time_s = np.maximum(np.maximum(big_time, little_time), 1e-9)

        cost = power * time_s
        if first.metric == "edp":
            cost = cost * time_s
        best_positions = masked_first_argmin(cost, valid, on_empty="sentinel")
        best = candidates[np.arange(n_devices),
                          np.maximum(best_positions, 0)]
        empty_rows = np.flatnonzero(best_positions == ARGMIN_EMPTY)
        for d in empty_rows.tolist():
            # A device with zero eligible candidates (an empty
            # neighbourhood row) cannot take the batched argmin — degrade
            # that row to the scalar sweep, which carries its own
            # out-of-space/empty handling, and keep every other row on
            # the batched path.
            config, _ = oracles[d].best_configuration(
                counters_list[d], space[int(current[d])]
            )
            best[d] = space.index_of(config)
        return best

    def update_models(self, counters: PerformanceCounters,
                      config: SoCConfiguration) -> Dict[str, float]:
        """Feed one observation to both online models; returns their errors."""
        power_error = self.power_model.update(counters, config)
        time_error = self.performance_model.update(counters, config)
        return {"power_error_w": power_error, "time_error_s": time_error}

    @property
    def n_model_updates(self) -> int:
        return min(self.power_model.n_updates, self.performance_model.n_updates)
