"""Runtime approximation of the Oracle (Sec. IV-A3).

"Before each control decision, these models and the state data are used to
estimate the energy consumption of candidate configurations in a local
neighborhood of the current configuration ... the configuration with the
minimum energy consumption is marked as the optimal configuration and added
to the runtime approximation of the Oracle."

The :class:`RuntimeOracle` asks the online power and performance models (not
the simulator!) for the predicted power and execution time of each candidate
configuration, reusing the counters observed at the current configuration as
the paper prescribes, and returns the candidate minimising the predicted
energy (or energy-delay product).

The candidate sweep is vectorized end to end (``mode="batch"``, the
default): the neighbourhood comes from the configuration space's memoised
index tables, the candidate features form one ``(n_candidates, n_features)``
matrix, and both model predictions are single array operations.  The
original per-candidate loop is retained as the equivalence reference
(``mode="scalar"``), mirroring the scalar/vectorized dual-path pattern of
the engine sweep and the ML tree kernels: both modes pick the same argmin
with the same first-minimum tie-breaking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.models.performance import CpuPerformanceModel
from repro.models.power import CpuPowerModel
from repro.soc.configuration import ConfigurationSpace, SoCConfiguration
from repro.soc.counters import PerformanceCounters


@dataclass
class CandidateEstimate:
    """Predicted metrics of one candidate configuration."""

    configuration: SoCConfiguration
    predicted_power_w: float
    predicted_time_s: float

    @property
    def predicted_energy_j(self) -> float:
        return self.predicted_power_w * self.predicted_time_s

    @property
    def predicted_edp(self) -> float:
        return self.predicted_energy_j * self.predicted_time_s


@dataclass
class CandidateBatch:
    """Struct-of-arrays estimates for a whole candidate neighbourhood.

    Produced by :meth:`RuntimeOracle.candidate_batch`; arrays are aligned
    with ``candidate_indices`` (indices into the configuration space).
    """

    candidate_indices: np.ndarray
    predicted_power_w: np.ndarray
    predicted_time_s: np.ndarray

    def __len__(self) -> int:
        return len(self.candidate_indices)

    @property
    def predicted_energy_j(self) -> np.ndarray:
        return self.predicted_power_w * self.predicted_time_s

    @property
    def predicted_edp(self) -> np.ndarray:
        return self.predicted_energy_j * self.predicted_time_s

    def estimate_at(self, position: int,
                    space: ConfigurationSpace) -> CandidateEstimate:
        """Materialise the scalar :class:`CandidateEstimate` at one position."""
        i = int(position)
        return CandidateEstimate(
            configuration=space[int(self.candidate_indices[i])],
            predicted_power_w=float(self.predicted_power_w[i]),
            predicted_time_s=float(self.predicted_time_s[i]),
        )


class RuntimeOracle:
    """Model-driven selection of the best candidate configuration."""

    def __init__(
        self,
        space: ConfigurationSpace,
        power_model: CpuPowerModel,
        performance_model: CpuPerformanceModel,
        neighborhood_radius: int = 2,
        metric: str = "energy",
        mode: str = "batch",
    ) -> None:
        if neighborhood_radius < 1:
            raise ValueError("neighborhood_radius must be >= 1")
        if metric not in ("energy", "edp"):
            raise ValueError("metric must be 'energy' or 'edp'")
        if mode not in ("batch", "scalar"):
            raise ValueError("mode must be 'batch' or 'scalar'")
        self.space = space
        self.power_model = power_model
        self.performance_model = performance_model
        self.neighborhood_radius = int(neighborhood_radius)
        self.metric = metric
        self.mode = mode

    def candidate_estimates(
        self, counters: PerformanceCounters, current: SoCConfiguration
    ) -> List[CandidateEstimate]:
        """Predicted power/time/energy for every candidate configuration.

        This is the scalar reference path: one model query per candidate.
        """
        candidates = self.space.neighbors(
            current, radius=self.neighborhood_radius, include_self=True
        )
        estimates: List[CandidateEstimate] = []
        for candidate in candidates:
            power = self.power_model.predict(counters, candidate,
                                             reference_config=current)
            time_s = self.performance_model.predict_time_s(
                counters, candidate, reference_config=current
            )
            estimates.append(
                CandidateEstimate(
                    configuration=candidate,
                    predicted_power_w=power,
                    predicted_time_s=time_s,
                )
            )
        return estimates

    def candidate_batch(
        self, counters: PerformanceCounters, current: SoCConfiguration
    ) -> CandidateBatch:
        """Vectorized candidate sweep over the current neighbourhood.

        The neighbourhood is a memoised view of the space (index table plus
        pre-gathered struct-of-arrays rows), the power prediction is one
        matmul over the candidate feature matrix, and the time prediction
        is pure elementwise array arithmetic (bitwise equal to
        :meth:`~repro.models.performance.CpuPerformanceModel
        .predict_time_s` per candidate).
        """
        view = self.space.neighborhood_view(
            self.space.index_of(current), radius=self.neighborhood_radius,
            include_self=True,
        )
        power = self.power_model.predict_batch(
            counters, view.arrays, reference_config=current
        )
        time_s = self.performance_model.predict_time_s_batch(
            counters, view.arrays, reference_config=current
        )
        return CandidateBatch(
            candidate_indices=view.indices,
            predicted_power_w=power,
            predicted_time_s=time_s,
        )

    def best_configuration(
        self, counters: PerformanceCounters, current: SoCConfiguration
    ) -> Tuple[SoCConfiguration, CandidateEstimate]:
        """The candidate with the minimum predicted objective.

        Both modes break ties identically: the first candidate (in
        neighbourhood enumeration order) achieving the minimum wins —
        ``np.argmin`` returns the first minimum exactly like the scalar
        ``min`` over the estimate list.
        """
        if self.mode == "batch" and self.space.contains(current):
            batch = self.candidate_batch(counters, current)
            if self.metric == "energy":
                costs = batch.predicted_energy_j
            else:
                costs = batch.predicted_edp
            best_position = int(np.argmin(costs))
            best = batch.estimate_at(best_position, self.space)
            return best.configuration, best
        estimates = self.candidate_estimates(counters, current)
        if self.metric == "energy":
            key = lambda est: est.predicted_energy_j  # noqa: E731
        else:
            key = lambda est: est.predicted_edp  # noqa: E731
        best = min(estimates, key=key)
        return best.configuration, best

    def update_models(self, counters: PerformanceCounters,
                      config: SoCConfiguration) -> Dict[str, float]:
        """Feed one observation to both online models; returns their errors."""
        power_error = self.power_model.update(counters, config)
        time_error = self.performance_model.update(counters, config)
        return {"power_error_w": power_error, "time_error_s": time_error}

    @property
    def n_model_updates(self) -> int:
        return min(self.power_model.n_updates, self.performance_model.n_updates)
