"""Optimisation objectives for DRM policies.

The Oracle policies of the offline-IL works "optimize different objectives
(e.g., energy consumption, performance-per-watt)".  An :class:`Objective`
assigns a scalar cost to a snippet execution result; lower is better, so the
Oracle picks the configuration minimising the cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.soc.simulator import SnippetResult, SoCBatchResult


@dataclass(frozen=True)
class Objective:
    """A named, lower-is-better cost over snippet execution results.

    ``vector_cost``, when provided, evaluates the cost over a whole
    :class:`~repro.soc.simulator.SoCBatchResult` in one array operation; the
    built-in objectives all define it, which is what lets the Oracle sweep
    run vectorized.  Objectives without a vector form still work everywhere —
    :meth:`batch_cost` falls back to materialising per-configuration results.
    """

    name: str
    cost: Callable[[SnippetResult], float]
    description: str = ""
    vector_cost: Optional[Callable[[SoCBatchResult], np.ndarray]] = None

    def __call__(self, result: SnippetResult) -> float:
        return float(self.cost(result))

    def batch_cost(self, batch: SoCBatchResult) -> np.ndarray:
        """Cost of every configuration in a batch sweep (lower is better)."""
        if self.vector_cost is not None:
            return np.asarray(self.vector_cost(batch), dtype=float)
        return np.array([self(batch.result_at(i)) for i in range(len(batch))],
                        dtype=float)


def _energy(result: SnippetResult) -> float:
    return result.energy_j


def _energy_vec(batch: SoCBatchResult) -> np.ndarray:
    return batch.energy_j


def _edp(result: SnippetResult) -> float:
    return result.energy_delay_product


def _edp_vec(batch: SoCBatchResult) -> np.ndarray:
    return batch.energy_delay_product


def _performance(result: SnippetResult) -> float:
    # Lower cost = faster execution.
    return result.execution_time_s


def _performance_vec(batch: SoCBatchResult) -> np.ndarray:
    return batch.execution_time_s


def _negative_ppw(result: SnippetResult) -> float:
    return -result.performance_per_watt


def _negative_ppw_vec(batch: SoCBatchResult) -> np.ndarray:
    return -(batch.performance_ips / np.maximum(batch.average_power_w, 1e-9))


#: Minimise total energy consumption (the objective of Table II / Figs. 3-4).
ENERGY = Objective("energy", _energy, "Total energy consumption (J)", _energy_vec)

#: Minimise the energy-delay product.
EDP = Objective("edp", _edp, "Energy-delay product (J*s)", _edp_vec)

#: Minimise execution time (maximise performance).
PERFORMANCE = Objective("performance", _performance, "Execution time (s)",
                        _performance_vec)

#: Maximise performance-per-watt (instructions per second per watt).
PPW = Objective("ppw", _negative_ppw, "Negative performance-per-watt",
                _negative_ppw_vec)

ALL_OBJECTIVES = {obj.name: obj for obj in (ENERGY, EDP, PERFORMANCE, PPW)}


def get_objective(name: str) -> Objective:
    """Look up a predefined objective by name."""
    key = name.lower()
    if key not in ALL_OBJECTIVES:
        raise KeyError(f"unknown objective {name!r}; available: {sorted(ALL_OBJECTIVES)}")
    return ALL_OBJECTIVES[key]
