"""Optimisation objectives for DRM policies.

The Oracle policies of the offline-IL works "optimize different objectives
(e.g., energy consumption, performance-per-watt)".  An :class:`Objective`
assigns a scalar cost to a snippet execution result; lower is better, so the
Oracle picks the configuration minimising the cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.soc.simulator import SnippetResult


@dataclass(frozen=True)
class Objective:
    """A named, lower-is-better cost over snippet execution results."""

    name: str
    cost: Callable[[SnippetResult], float]
    description: str = ""

    def __call__(self, result: SnippetResult) -> float:
        return float(self.cost(result))


def _energy(result: SnippetResult) -> float:
    return result.energy_j


def _edp(result: SnippetResult) -> float:
    return result.energy_delay_product


def _performance(result: SnippetResult) -> float:
    # Lower cost = faster execution.
    return result.execution_time_s


def _negative_ppw(result: SnippetResult) -> float:
    return -result.performance_per_watt


#: Minimise total energy consumption (the objective of Table II / Figs. 3-4).
ENERGY = Objective("energy", _energy, "Total energy consumption (J)")

#: Minimise the energy-delay product.
EDP = Objective("edp", _edp, "Energy-delay product (J*s)")

#: Minimise execution time (maximise performance).
PERFORMANCE = Objective("performance", _performance, "Execution time (s)")

#: Maximise performance-per-watt (instructions per second per watt).
PPW = Objective("ppw", _negative_ppw, "Negative performance-per-watt")

ALL_OBJECTIVES = {obj.name: obj for obj in (ENERGY, EDP, PERFORMANCE, PPW)}


def get_objective(name: str) -> Objective:
    """Look up a predefined objective by name."""
    key = name.lower()
    if key not in ALL_OBJECTIVES:
        raise KeyError(f"unknown objective {name!r}; available: {sorted(ALL_OBJECTIVES)}")
    return ALL_OBJECTIVES[key]
