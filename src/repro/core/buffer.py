"""Experience aggregation buffer for online imitation learning (Sec. IV-A3).

"The best configuration found by the analytical models ... and performance
counters in Table I are inserted in a buffer after each policy decision.
This training data is aggregated until the buffer is full.  Subsequently, the
policy is updated using the training data and the buffer is reset.  The size
of this buffer determines the training accuracy and implementation overhead."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class BufferedSample:
    """One (state features, oracle label) pair awaiting a policy update."""

    features: np.ndarray
    label: int


class AggregationBuffer:
    """Fixed-capacity training buffer that signals when it is full."""

    def __init__(self, capacity: int = 100) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._samples: List[BufferedSample] = []
        self.total_inserted = 0
        self.flush_count = 0

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def is_full(self) -> bool:
        return len(self._samples) >= self.capacity

    def insert(self, features: np.ndarray, label: int) -> bool:
        """Insert one sample; returns True when the buffer became full."""
        vector = np.asarray(features, dtype=float).ravel()
        self._samples.append(BufferedSample(features=vector, label=int(label)))
        self.total_inserted += 1
        return self.is_full

    def drain(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return all samples as (features matrix, label vector) and reset."""
        if not self._samples:
            raise RuntimeError("cannot drain an empty buffer")
        features = np.vstack([s.features for s in self._samples])
        labels = np.array([s.label for s in self._samples], dtype=int)
        self._samples.clear()
        self.flush_count += 1
        return features, labels

    def peek(self) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Return the buffered samples without resetting (for inspection)."""
        if not self._samples:
            return None, None
        features = np.vstack([s.features for s in self._samples])
        labels = np.array([s.label for s in self._samples], dtype=int)
        return features, labels

    def storage_bytes(self) -> int:
        """Approximate storage footprint of a full buffer.

        The paper reports that a buffer of 100 input/output control states
        requires less than 20 KB; this helper lets the benchmarks verify the
        reproduction stays in the same ballpark.
        """
        if self._samples:
            per_sample = self._samples[0].features.nbytes + 8
        else:
            per_sample = 8 * 9 + 8
        return self.capacity * per_sample
